//! VF2-style baseline: classic backtracking with a statistics-free order.
//!
//! The third baseline slot of Fig. 11 (standing in for BoostISO, whose
//! dynamic candidate relationships are out of scope — see DESIGN.md §3).
//! VF2 matches in simple connectivity order and derives candidates from the
//! frontier only, so it typically explores more of the search space than
//! QuickSI's statistics-guided order.

use crate::engine::backtrack_embeddings;
use crate::order::connectivity_order;
use crate::pattern::PatternInfo;
use crate::Matcher;
use mgp_graph::{Graph, NodeId};

/// The VF2-style matcher. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vf2;

impl Matcher for Vf2 {
    fn name(&self) -> &'static str {
        "VF2"
    }

    fn enumerate(&self, g: &Graph, p: &PatternInfo, visit: &mut dyn FnMut(&[NodeId]) -> bool) {
        let order = connectivity_order(p);
        backtrack_embeddings(g, p, &order, None, visit);
    }

    fn multiplicity(&self, p: &PatternInfo) -> u64 {
        p.aut_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    #[test]
    fn agrees_with_expected_count() {
        // Star: one school with 3 users; pattern user-school-user.
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let s = b.add_node(school, "s");
        for i in 0..3 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
        }
        let g = b.build();
        let m =
            Metagraph::from_edges(&[TypeId(0), TypeId(1), TypeId(0)], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, TypeId(0));
        let mut n = 0u64;
        Vf2.enumerate(&g, &p, &mut |_| {
            n += 1;
            true
        });
        // 3 users choose ordered pairs: 3 × 2 = 6 embeddings = 3 instances × 2.
        assert_eq!(n, 6);
    }
}

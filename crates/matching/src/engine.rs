//! The shared backtracking framework (Sect. IV-A).
//!
//! All node-at-a-time matchers are instances of one engine: given a matching
//! order `u₁, u₂, …` over pattern nodes, extend a partial assignment `D_k`
//! one node at a time, generating the candidate set `C(u_{k+1} | D_k)` from
//! the already-matched pattern neighbour with the smallest image degree, and
//! backtracking when a candidate set is empty. Matchers differ only in the
//! order they use and in optional per-node candidate pre-filters.

use crate::pattern::PatternInfo;
use mgp_graph::{Graph, NodeId};

/// Visitor invoked per enumerated assignment; return `false` to abort the
/// whole enumeration.
pub type Visitor<'a> = dyn FnMut(&[NodeId]) -> bool + 'a;

/// Node-at-a-time backtracking over the pattern in the given `order`.
///
/// `prefilter`, when provided, restricts the candidates of pattern node `u`
/// to graph nodes for which `prefilter(u, v)` is true (used by TurboISO-lite
/// for typed-degree filtering). Returns `false` if the visitor aborted.
pub fn backtrack_embeddings(
    g: &Graph,
    p: &PatternInfo,
    order: &[usize],
    prefilter: Option<&dyn Fn(usize, NodeId) -> bool>,
    visit: &mut dyn FnMut(&[NodeId]) -> bool,
) -> bool {
    let n = p.n_nodes();
    if n == 0 {
        return true;
    }
    debug_assert_eq!(order.len(), n);
    let mut assign: Vec<NodeId> = vec![NodeId(0); n];
    let mut used = vec![false; g.n_nodes()];
    descend(g, p, order, prefilter, 0, &mut assign, &mut used, visit)
}

/// [`backtrack_embeddings`] with the first `seeds.len()` order positions
/// pre-assigned (`order[i] ↦ seeds[i]`), skipping candidate generation for
/// them entirely — the entry point of the delta matcher, which pins a new
/// graph edge onto a pattern edge and must not pay a type-scan to do so.
///
/// Seeds are validated here (type match, injectivity, pattern edges among
/// seeded positions present in `g`); an inconsistent seeding enumerates
/// nothing. Returns `false` if the visitor aborted.
pub fn backtrack_embeddings_seeded(
    g: &Graph,
    p: &PatternInfo,
    order: &[usize],
    seeds: &[NodeId],
    prefilter: Option<&dyn Fn(usize, NodeId) -> bool>,
    visit: &mut dyn FnMut(&[NodeId]) -> bool,
) -> bool {
    let n = p.n_nodes();
    if n == 0 {
        return true;
    }
    debug_assert_eq!(order.len(), n);
    debug_assert!(seeds.len() <= n);
    let m = &p.metagraph;
    let mut assign: Vec<NodeId> = vec![NodeId(0); n];
    let mut used = vec![false; g.n_nodes()];
    for (i, &s) in seeds.iter().enumerate() {
        let u = order[i];
        let consistent = g.node_type(s) == m.node_type(u)
            && !used[s.index()]
            && order[..i]
                .iter()
                .all(|&w| !m.has_edge(u, w) || g.has_edge(s, assign[w]));
        if !consistent {
            return true;
        }
        assign[u] = s;
        used[s.index()] = true;
    }
    descend(
        g,
        p,
        order,
        prefilter,
        seeds.len(),
        &mut assign,
        &mut used,
        visit,
    )
}

#[allow(clippy::too_many_arguments)]
fn descend(
    g: &Graph,
    p: &PatternInfo,
    order: &[usize],
    prefilter: Option<&dyn Fn(usize, NodeId) -> bool>,
    depth: usize,
    assign: &mut Vec<NodeId>,
    used: &mut Vec<bool>,
    visit: &mut dyn FnMut(&[NodeId]) -> bool,
) -> bool {
    let m = &p.metagraph;
    if depth == order.len() {
        return visit(assign);
    }
    let u = order[depth];
    let ty = m.node_type(u);

    // Matched pattern neighbours of u.
    let matched_neighbors: Vec<usize> = order[..depth]
        .iter()
        .copied()
        .filter(|&w| m.has_edge(u, w))
        .collect();

    // Candidate source: the typed neighbours of the matched image with the
    // smallest degree, or all nodes of the type when u is a fresh root.
    let candidates: &[NodeId] = if let Some(&pivot) = matched_neighbors
        .iter()
        .min_by_key(|&&w| g.degree(assign[w]))
    {
        g.neighbors_of_type(assign[pivot], ty)
    } else {
        g.nodes_of_type(ty)
    };

    for &v in candidates {
        if used[v.index()] {
            continue;
        }
        if let Some(f) = prefilter {
            if !f(u, v) {
                continue;
            }
        }
        // All pattern edges into the matched part must exist in G.
        if !matched_neighbors.iter().all(|&w| g.has_edge(v, assign[w])) {
            continue;
        }
        assign[u] = v;
        used[v.index()] = true;
        let keep_going = descend(g, p, order, prefilter, depth + 1, assign, used, visit);
        used[v.index()] = false;
        if !keep_going {
            return false;
        }
    }
    true
}

/// Builds the typed-degree requirement table of a pattern: `req[u]` lists
/// `(type, minimum count)` pairs — a graph node can match pattern node `u`
/// only if it has at least `count` neighbours of each `type`.
pub fn typed_degree_requirements(p: &PatternInfo) -> Vec<Vec<(mgp_graph::TypeId, usize)>> {
    let m = &p.metagraph;
    (0..m.n_nodes())
        .map(|u| {
            let mut counts: Vec<(mgp_graph::TypeId, usize)> = Vec::new();
            for v in m.neighbors(u) {
                let ty = m.node_type(v);
                match counts.iter_mut().find(|(t, _)| *t == ty) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((ty, 1)),
                }
            }
            counts
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const A: TypeId = TypeId(1);

    /// Two users sharing one address; one loner user with its own address.
    fn toy() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let addr = b.add_type("address");
        let u1 = b.add_node(user, "u1");
        let u2 = b.add_node(user, "u2");
        let u3 = b.add_node(user, "u3");
        let a1 = b.add_node(addr, "a1");
        let a2 = b.add_node(addr, "a2");
        b.add_edge(u1, a1).unwrap();
        b.add_edge(u2, a1).unwrap();
        b.add_edge(u3, a2).unwrap();
        b.build()
    }

    #[test]
    fn enumerates_all_embeddings_of_shared_address() {
        let g = toy();
        let m = Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let mut found = Vec::new();
        backtrack_embeddings(&g, &p, &[0, 1, 2], None, &mut |a| {
            found.push(a.to_vec());
            true
        });
        // Embeddings: (u1,a1,u2) and (u2,a1,u1). u3/a2 has no partner.
        assert_eq!(found.len(), 2);
        for a in &found {
            assert!(g.has_edge(a[0], a[1]));
            assert!(g.has_edge(a[1], a[2]));
            assert_ne!(a[0], a[2]);
        }
    }

    #[test]
    fn early_abort() {
        let g = toy();
        let m = Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let mut count = 0;
        let completed = backtrack_embeddings(&g, &p, &[0, 1, 2], None, &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 1);
        assert!(!completed);
    }

    #[test]
    fn prefilter_restricts() {
        let g = toy();
        let m = Metagraph::from_edges(&[U, A], &[(0, 1)]).unwrap();
        let p = PatternInfo::new(m, U);
        let mut n_all = 0;
        backtrack_embeddings(&g, &p, &[0, 1], None, &mut |_| {
            n_all += 1;
            true
        });
        assert_eq!(n_all, 3); // three user-address edges
        let only_u1 = |u: usize, v: NodeId| u != 0 || v == NodeId(0);
        let mut n_filtered = 0;
        backtrack_embeddings(&g, &p, &[0, 1], Some(&only_u1), &mut |_| {
            n_filtered += 1;
            true
        });
        assert_eq!(n_filtered, 1);
    }

    #[test]
    fn injectivity_enforced() {
        // Pattern user-addr-user on a graph where one address has one user:
        // no embedding may reuse the same user twice.
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let addr = b.add_type("address");
        let u1 = b.add_node(user, "u1");
        let a1 = b.add_node(addr, "a1");
        b.add_edge(u1, a1).unwrap();
        let g = b.build();
        let m = Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let mut found = 0;
        backtrack_embeddings(&g, &p, &[0, 1, 2], None, &mut |_| {
            found += 1;
            true
        });
        assert_eq!(found, 0);
    }

    #[test]
    fn seeded_backtracking_equals_filtered_full_enumeration() {
        let g = toy();
        let m = Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let order = [0usize, 1, 2];
        // Pin pattern edge (0,1) onto graph edge (u1, a1).
        let seeds = [NodeId(0), NodeId(3)];
        let mut seeded = Vec::new();
        backtrack_embeddings_seeded(&g, &p, &order, &seeds, None, &mut |a| {
            seeded.push(a.to_vec());
            true
        });
        let mut filtered = Vec::new();
        backtrack_embeddings(&g, &p, &order, None, &mut |a| {
            if a[0] == seeds[0] && a[1] == seeds[1] {
                filtered.push(a.to_vec());
            }
            true
        });
        assert_eq!(seeded, filtered);
        assert_eq!(seeded.len(), 1); // (u1, a1, u2)

        // Inconsistent seeds enumerate nothing: wrong type, non-edge,
        // duplicate node.
        for bad in [
            vec![NodeId(3), NodeId(0)], // types flipped
            vec![NodeId(0), NodeId(4)], // u1–a2 is not an edge
            vec![NodeId(0), NodeId(0)], // not injective
        ] {
            let mut n = 0;
            backtrack_embeddings_seeded(&g, &p, &order, &bad, None, &mut |_| {
                n += 1;
                true
            });
            assert_eq!(n, 0, "seeds {bad:?} should yield nothing");
        }
    }

    #[test]
    fn typed_degree_requirement_table() {
        // M1: users adjacent to one school and one major each.
        let s = TypeId(1);
        let mj = TypeId(2);
        let m = Metagraph::from_edges(&[U, U, s, mj], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap();
        let p = PatternInfo::new(m, U);
        let req = typed_degree_requirements(&p);
        assert_eq!(req[0], vec![(s, 1), (mj, 1)]);
        assert_eq!(req[2], vec![(U, 2)]);
    }

    #[test]
    fn empty_pattern_no_visits() {
        let g = toy();
        let m = Metagraph::new(&[]).unwrap();
        let p = PatternInfo::new(m, U);
        let mut visited = false;
        backtrack_embeddings(&g, &p, &[], None, &mut |_| {
            visited = true;
            true
        });
        assert!(!visited);
    }
}

//! Matching-order heuristics (Sect. IV-C).
//!
//! The search space of backtracking matching depends heavily on the order
//! pattern nodes are matched in. The paper (following \[19\], \[23\]) grows the
//! order greedily, always picking the extension minimising the *estimated*
//! intermediate instance count: extending a partial pattern `M⁽ⁱ⁾` with an
//! edge `⟨u, u′⟩` (where `u` is already ordered) multiplies the estimate by
//! `|I(⟨u, u′⟩)| / |I(u)|` — both available from the graph's edge- and
//! node-type statistics.

use crate::pattern::PatternInfo;
use mgp_graph::Graph;

/// Greedy estimated-instance node order (paper's heuristic).
///
/// Starts at the node whose type has the fewest graph nodes (ties: larger
/// pattern degree); then repeatedly appends the unordered node connected to
/// the ordered prefix with the smallest expansion ratio. Disconnected
/// patterns restart the greedy choice on each remaining component.
pub fn estimated_instance_order(g: &Graph, p: &PatternInfo) -> Vec<usize> {
    let m = &p.metagraph;
    let n = m.n_nodes();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];

    while order.len() < n {
        // Is any unplaced node adjacent to the prefix?
        let mut best: Option<(f64, usize)> = None;
        for u in 0..n {
            if placed[u] {
                continue;
            }
            // Expansion ratio over edges into the prefix; +∞ when detached.
            let mut ratio: Option<f64> = None;
            for w in m.neighbors(u) {
                if placed[w] {
                    let r = expansion_ratio(g, p, w, u);
                    ratio = Some(ratio.map_or(r, |cur: f64| cur.min(r)));
                }
            }
            if let Some(r) = ratio {
                if best.is_none_or(|(b, _)| r < b) {
                    best = Some((r, u));
                }
            }
        }
        let next = match best {
            Some((_, u)) => u,
            // Fresh root (start, or next connected component): rarest type.
            None => (0..n)
                .filter(|&u| !placed[u])
                .min_by(|&a, &b| {
                    let ka = (
                        g.n_nodes_of_type(m.node_type(a)),
                        std::cmp::Reverse(m.degree(a)),
                    );
                    let kb = (
                        g.n_nodes_of_type(m.node_type(b)),
                        std::cmp::Reverse(m.degree(b)),
                    );
                    ka.cmp(&kb)
                })
                .expect("some node remains"),
        };
        placed[next] = true;
        order.push(next);
    }
    order
}

/// Estimated growth factor of matching pattern node `u` from its already
/// ordered neighbour `w`: `|I(⟨w, u⟩)| / |I(w)|`.
fn expansion_ratio(g: &Graph, p: &PatternInfo, w: usize, u: usize) -> f64 {
    let m = &p.metagraph;
    let edge_instances = g.edge_type_count(m.node_type(w), m.node_type(u)) as f64;
    let node_instances = g.n_nodes_of_type(m.node_type(w)).max(1) as f64;
    edge_instances / node_instances
}

/// Simple connectivity (BFS-from-0) order, as used by the VF2-style
/// baseline: no graph statistics involved.
pub fn connectivity_order(p: &PatternInfo) -> Vec<usize> {
    let m = &p.metagraph;
    let n = m.n_nodes();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for v in m.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order
}

/// Orders SymISO's blocks by the estimated-instance node order: a block is
/// scheduled at the position its first node appears in the node order.
pub fn block_order(g: &Graph, p: &PatternInfo) -> Vec<usize> {
    let node_order = estimated_instance_order(g, p);
    rank_blocks_by_node_order(p, &node_order)
}

/// Orders blocks by an arbitrary (e.g. random) node order — the SymISO-R
/// ablation of Fig. 11.
pub fn random_block_order(p: &PatternInfo, seed: u64) -> Vec<usize> {
    let n = p.n_nodes();
    let mut node_order: Vec<usize> = (0..n).collect();
    // xorshift* shuffle; deterministic for a given seed.
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        node_order.swap(i, j);
    }
    rank_blocks_by_node_order(p, &node_order)
}

fn rank_blocks_by_node_order(p: &PatternInfo, node_order: &[usize]) -> Vec<usize> {
    let blocks = &p.decomposition.blocks;
    let mut first_pos = vec![usize::MAX; blocks.len()];
    for (pos, &u) in node_order.iter().enumerate() {
        for (bi, b) in blocks.iter().enumerate() {
            if b.mask() & (1 << u) != 0 {
                first_pos[bi] = first_pos[bi].min(pos);
            }
        }
    }
    let mut idx: Vec<usize> = (0..blocks.len()).collect();
    idx.sort_by_key(|&bi| first_pos[bi]);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);

    /// Graph with many users, few schools.
    fn skewed() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let s = b.add_node(school, "s");
        for i in 0..20 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
        }
        b.build()
    }

    #[test]
    fn order_is_a_permutation() {
        let g = skewed();
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        for order in [estimated_instance_order(&g, &p), connectivity_order(&p)] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
    }

    #[test]
    fn starts_with_rare_type() {
        let g = skewed();
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let order = estimated_instance_order(&g, &p);
        // school (1 node) is rarer than user (20): matching starts there.
        assert_eq!(order[0], 1);
    }

    #[test]
    fn prefix_stays_connected_when_possible() {
        let g = skewed();
        let m = Metagraph::from_edges(&[U, S, U, S], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = PatternInfo::new(m, U);
        let order = estimated_instance_order(&g, &p);
        for k in 1..order.len() {
            let u = order[k];
            let attached = order[..k].iter().any(|&w| p.metagraph.has_edge(u, w));
            assert!(attached, "node {u} detached from prefix in {order:?}");
        }
    }

    #[test]
    fn block_order_covers_all_blocks() {
        let g = skewed();
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let bo = block_order(&g, &p);
        let mut sorted = bo.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..p.decomposition.blocks.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_block_order_is_deterministic_per_seed() {
        let m = Metagraph::from_edges(&[U, S, U, S], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = PatternInfo::new(m, U);
        let a = random_block_order(&p, 7);
        let b = random_block_order(&p, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..p.decomposition.blocks.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn connectivity_order_bfs_shape() {
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        assert_eq!(connectivity_order(&p), vec![0, 1, 2]);
    }
}

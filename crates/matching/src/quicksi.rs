//! QuickSI-style baseline: selectivity-ordered backtracking.
//!
//! Following Shang et al. \[19\], the pattern is matched node-at-a-time in an
//! order chosen from graph statistics (infrequent structures first), with no
//! other filtering and no symmetry awareness — each *embedding* is
//! enumerated, so an instance is visited `|Aut(M)|` times.

use crate::engine::backtrack_embeddings;
use crate::order::estimated_instance_order;
use crate::pattern::PatternInfo;
use crate::Matcher;
use mgp_graph::{Graph, NodeId};

/// The QuickSI-style matcher. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuickSi;

impl Matcher for QuickSi {
    fn name(&self) -> &'static str {
        "QuickSI"
    }

    fn enumerate(&self, g: &Graph, p: &PatternInfo, visit: &mut dyn FnMut(&[NodeId]) -> bool) {
        let order = estimated_instance_order(g, p);
        backtrack_embeddings(g, p, &order, None, visit);
    }

    fn multiplicity(&self, p: &PatternInfo) -> u64 {
        p.aut_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    #[test]
    fn counts_embeddings_with_aut_multiplicity() {
        // One shared school between two users: pattern user-school-user has
        // 1 instance, 2 embeddings.
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let u1 = b.add_node(user, "u1");
        let u2 = b.add_node(user, "u2");
        let s = b.add_node(school, "s");
        b.add_edge(u1, s).unwrap();
        b.add_edge(u2, s).unwrap();
        let g = b.build();
        let m =
            Metagraph::from_edges(&[TypeId(0), TypeId(1), TypeId(0)], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, TypeId(0));
        let mut n = 0u64;
        QuickSi.enumerate(&g, &p, &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 2);
        assert_eq!(QuickSi.multiplicity(&p), 2);
    }
}

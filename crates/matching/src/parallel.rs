//! Parallel matching of a metagraph set.
//!
//! The offline phase matches every mined metagraph independently — an
//! embarrassingly parallel workload. Metagraphs are handed to worker threads
//! through an atomic cursor (cheap dynamic load balancing: instance counts
//! vary by orders of magnitude across patterns), and results land in their
//! pattern's slot, keeping output deterministic regardless of scheduling.

use crate::anchor::{anchor_counts, AnchorCounts};
use crate::pattern::PatternInfo;
use crate::Matcher;
use mgp_graph::Graph;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Matches every pattern with `matcher` using `threads` worker threads
/// (`0` = available parallelism), returning per-pattern anchor counts and
/// wall-clock matching time, indexed like `patterns`.
pub fn match_all_timed(
    g: &Graph,
    patterns: &[PatternInfo],
    matcher: &dyn Matcher,
    threads: usize,
) -> Vec<(AnchorCounts, Duration)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
    .min(patterns.len().max(1));

    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(AnchorCounts, Duration)>>> =
        Mutex::new(vec![None; patterns.len()]);

    if threads <= 1 {
        let mut out = Vec::with_capacity(patterns.len());
        for p in patterns {
            let t0 = Instant::now();
            let counts = anchor_counts(matcher, g, p);
            out.push((counts, t0.elapsed()));
        }
        return out;
    }

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= patterns.len() {
                    break;
                }
                let t0 = Instant::now();
                let counts = anchor_counts(matcher, g, &patterns[i]);
                let dt = t0.elapsed();
                results.lock()[i] = Some((counts, dt));
            });
        }
    })
    .expect("matching worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every pattern processed"))
        .collect()
}

/// Like [`match_all_timed`] but discards timings.
pub fn match_all(
    g: &Graph,
    patterns: &[PatternInfo],
    matcher: &dyn Matcher,
    threads: usize,
) -> Vec<AnchorCounts> {
    match_all_timed(g, patterns, matcher, threads)
        .into_iter()
        .map(|(c, _)| c)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymIso;
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);
    const M: TypeId = TypeId(2);

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s = b.add_node(school, "s");
        let mj = b.add_node(major, "m");
        for i in 0..8 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
            if i % 2 == 0 {
                b.add_edge(u, mj).unwrap();
            }
        }
        b.build()
    }

    fn patterns() -> Vec<PatternInfo> {
        vec![
            PatternInfo::new(
                Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, M, U], &[(0, 1), (1, 2)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, U, S, M], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap(),
                U,
            ),
        ]
    }

    #[test]
    fn parallel_matches_serial() {
        let g = graph();
        let pats = patterns();
        let serial = match_all(&g, &pats, &SymIso::new(), 1);
        let parallel = match_all(&g, &pats, &SymIso::new(), 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 3);
        assert_eq!(serial[0].n_instances, 28); // C(8,2)
        assert_eq!(serial[1].n_instances, 6); // C(4,2)
        assert_eq!(serial[2].n_instances, 6); // users sharing both
    }

    #[test]
    fn timed_variant_reports_durations() {
        let g = graph();
        let pats = patterns();
        let timed = match_all_timed(&g, &pats, &SymIso::new(), 2);
        assert_eq!(timed.len(), 3);
        // Durations exist (may be ~0 on a fast machine but must be set).
        for (c, _dt) in &timed {
            assert!(c.n_instances > 0);
        }
    }

    #[test]
    fn empty_pattern_list() {
        let g = graph();
        let out = match_all(&g, &[], &SymIso::new(), 4);
        assert!(out.is_empty());
    }
}

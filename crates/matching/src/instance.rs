//! Instance semantics: from enumerated assignments to the instance set
//! `I(M)` of Def. 2.
//!
//! An instance is the *image subgraph* of an embedding; two embeddings have
//! the same image iff they differ by an automorphism of the pattern. The
//! canonical representative of an instance is therefore the
//! lexicographically smallest assignment vector over the automorphism group,
//! which gives a total identity usable for deduplication and cross-matcher
//! agreement tests.

use crate::pattern::PatternInfo;
use crate::Matcher;
use mgp_graph::{Graph, NodeId};

/// A canonicalised instance of a metagraph: the lexicographically smallest
/// embedding among all embeddings with the same image subgraph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instance {
    /// Canonical assignment, indexed by pattern node.
    pub assignment: Vec<NodeId>,
}

impl Instance {
    /// Canonicalises an assignment with respect to the pattern's
    /// automorphism group.
    pub fn canonical(assignment: &[NodeId], p: &PatternInfo) -> Self {
        let mut best: Option<Vec<NodeId>> = None;
        for perm in p.automorphisms.iter() {
            let cand: Vec<NodeId> = perm.iter().map(|&s| assignment[s as usize]).collect();
            match &mut best {
                None => best = Some(cand),
                Some(b) => {
                    if cand < *b {
                        *b = cand;
                    }
                }
            }
        }
        Instance {
            assignment: best.unwrap_or_default(),
        }
    }

    /// The instance's node set, sorted ascending.
    pub fn nodes_sorted(&self) -> Vec<NodeId> {
        let mut v = self.assignment.clone();
        v.sort_unstable();
        v
    }
}

/// Counts enumerated assignments (embeddings for the baselines, canonical
/// representatives for SymISO).
pub fn count_embeddings(matcher: &dyn Matcher, g: &Graph, p: &PatternInfo) -> u64 {
    let mut n = 0u64;
    matcher.enumerate(g, p, &mut |_| {
        n += 1;
        true
    });
    n
}

/// Counts instances `|I(M)|` exactly: enumerated assignments divided by the
/// matcher's per-instance multiplicity.
pub fn count_instances(matcher: &dyn Matcher, g: &Graph, p: &PatternInfo) -> u64 {
    let total = count_embeddings(matcher, g, p);
    let mult = matcher.multiplicity(p).max(1);
    debug_assert_eq!(
        total % mult,
        0,
        "{}: enumerated {total} not divisible by multiplicity {mult}",
        matcher.name()
    );
    total / mult
}

/// Materialises the instance set, canonicalised and deduplicated. Intended
/// for tests and small workloads; production counting paths stay streaming.
pub fn collect_instances(matcher: &dyn Matcher, g: &Graph, p: &PatternInfo) -> Vec<Instance> {
    let mut out: Vec<Instance> = Vec::new();
    matcher.enumerate(g, p, &mut |a| {
        out.push(Instance::canonical(a, p));
        true
    });
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuickSi, SymIso, TurboLite, Vf2};
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);
    const M: TypeId = TypeId(2);

    fn campus() -> Graph {
        // 2 schools, 2 majors, 6 users with mixed affiliations.
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s1 = b.add_node(school, "s1");
        let s2 = b.add_node(school, "s2");
        let m1 = b.add_node(major, "m1");
        let m2 = b.add_node(major, "m2");
        let schools = [s1, s1, s1, s2, s2, s2];
        let majors = [m1, m1, m2, m2, m1, m2];
        for i in 0..6 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, schools[i]).unwrap();
            b.add_edge(u, majors[i]).unwrap();
        }
        b.build()
    }

    fn patterns() -> Vec<Metagraph> {
        vec![
            // user-school-user
            Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap(),
            // user-major-user
            Metagraph::from_edges(&[U, M, U], &[(0, 1), (1, 2)]).unwrap(),
            // M1: users sharing school AND major
            Metagraph::from_edges(&[U, U, S, M], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap(),
            // 5-node chain user-school-user-major-user
            Metagraph::from_edges(&[U, S, U, M, U], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap(),
            // asymmetric: user-school
            Metagraph::from_edges(&[U, S], &[(0, 1)]).unwrap(),
        ]
    }

    #[test]
    fn all_matchers_agree_on_instance_sets() {
        let g = campus();
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(QuickSi),
            Box::new(Vf2),
            Box::new(TurboLite),
            Box::new(SymIso::new()),
            Box::new(SymIso::random_order(3)),
        ];
        for m in patterns() {
            let p = PatternInfo::new(m.clone(), U);
            let reference = collect_instances(&QuickSi, &g, &p);
            for matcher in &matchers {
                let got = collect_instances(matcher.as_ref(), &g, &p);
                assert_eq!(
                    got,
                    reference,
                    "matcher {} disagrees on {}",
                    matcher.name(),
                    m.brief()
                );
                assert_eq!(
                    count_instances(matcher.as_ref(), &g, &p),
                    reference.len() as u64,
                    "count mismatch for {} on {}",
                    matcher.name(),
                    m.brief()
                );
            }
        }
    }

    #[test]
    fn canonical_is_automorphism_invariant() {
        let g = campus();
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let mut seen: Vec<(Vec<NodeId>, Instance)> = Vec::new();
        QuickSi.enumerate(&g, &p, &mut |a| {
            seen.push((a.to_vec(), Instance::canonical(a, &p)));
            true
        });
        // The two embeddings (x,s,y) and (y,s,x) must canonicalise equally.
        for (a, inst) in &seen {
            let flipped = vec![a[2], a[1], a[0]];
            let inst2 = Instance::canonical(&flipped, &p);
            assert_eq!(*inst, inst2);
        }
    }

    #[test]
    fn instance_node_set_sorted() {
        let inst = Instance {
            assignment: vec![NodeId(9), NodeId(2), NodeId(5)],
        };
        assert_eq!(inst.nodes_sorted(), vec![NodeId(2), NodeId(5), NodeId(9)]);
    }

    #[test]
    fn known_counts_on_campus() {
        let g = campus();
        // user-school-user: school1 {u0,u1,u2} → 3 pairs; school2 → 3. Total 6.
        let p = PatternInfo::new(
            Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap(),
            U,
        );
        assert_eq!(count_instances(&SymIso::new(), &g, &p), 6);
        // M1 shared school+major: pairs sharing both: (u0,u1) via s1/m1,
        // (u3,u5) via s2/m2. Total 2.
        let p = PatternInfo::new(
            Metagraph::from_edges(&[U, U, S, M], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap(),
            U,
        );
        assert_eq!(count_instances(&SymIso::new(), &g, &p), 2);
    }
}

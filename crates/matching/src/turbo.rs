//! TurboISO-lite baseline: typed-degree candidate filtering.
//!
//! TurboISO \[21\] prunes the search space by building candidate regions and
//! merging equivalent pattern nodes. This lite reconstruction keeps the
//! filtering idea that does most of the work at this scale: a graph node can
//! match pattern node `u` only if, for every neighbour type `t` of `u` in
//! the pattern, it has at least as many `t`-typed graph neighbours. The
//! matching order is the estimated-instance heuristic, as in QuickSI.
//! It enumerates embeddings (no symmetry awareness).

use crate::engine::{backtrack_embeddings, typed_degree_requirements};
use crate::order::estimated_instance_order;
use crate::pattern::PatternInfo;
use crate::Matcher;
use mgp_graph::{Graph, NodeId};

/// The TurboISO-lite matcher. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct TurboLite;

impl Matcher for TurboLite {
    fn name(&self) -> &'static str {
        "TurboISO-lite"
    }

    fn enumerate(&self, g: &Graph, p: &PatternInfo, visit: &mut dyn FnMut(&[NodeId]) -> bool) {
        let order = estimated_instance_order(g, p);
        let req = typed_degree_requirements(p);
        let filter = |u: usize, v: NodeId| {
            req[u]
                .iter()
                .all(|&(ty, need)| g.degree_of_type(v, ty) >= need)
        };
        backtrack_embeddings(g, p, &order, Some(&filter), visit);
    }

    fn multiplicity(&self, p: &PatternInfo) -> u64 {
        p.aut_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);
    const M: TypeId = TypeId(2);

    #[test]
    fn filtering_does_not_change_results() {
        // Users with school+major; pattern M1 (users sharing both).
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s = b.add_node(school, "s");
        let mj = b.add_node(major, "m");
        let mut users = Vec::new();
        for i in 0..4 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
            if i < 3 {
                b.add_edge(u, mj).unwrap();
            }
            users.push(u);
        }
        // A distractor user connected to nothing relevant.
        b.add_node(user, "loner");
        let g = b.build();

        let m1 = Metagraph::from_edges(&[U, U, S, M], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap();
        let p = PatternInfo::new(m1, U);

        let mut turbo_count = 0u64;
        TurboLite.enumerate(&g, &p, &mut |_| {
            turbo_count += 1;
            true
        });
        let mut plain_count = 0u64;
        crate::QuickSi.enumerate(&g, &p, &mut |_| {
            plain_count += 1;
            true
        });
        assert_eq!(turbo_count, plain_count);
        // 3 users share both s and m: ordered pairs = 6 embeddings.
        assert_eq!(turbo_count, 6);
    }
}

//! Precomputed per-pattern matching data.

use mgp_graph::TypeId;
use mgp_metagraph::{Automorphisms, Decomposition, Metagraph, SymmetryInfo};

/// A metagraph bundled with everything matchers need to know about it:
/// its automorphism count, symmetry relation, symmetric-component
/// decomposition, and the anchor position pairs at which proximity is
/// measured.
///
/// Building a `PatternInfo` is cheap (patterns are ≤ 5 nodes) and done once
/// per metagraph, then shared read-only across matcher invocations and
/// threads.
#[derive(Debug, Clone)]
pub struct PatternInfo {
    /// The pattern itself.
    pub metagraph: Metagraph,
    /// The full automorphism group (needed to canonicalise embeddings).
    pub automorphisms: Automorphisms,
    /// Symmetric-pair relation and orbits.
    pub symmetry: SymmetryInfo,
    /// Block decomposition for SymISO.
    pub decomposition: Decomposition,
    /// Symmetric position pairs `(u, v)`, `u < v`, of the anchor type.
    pub anchor_pairs: Vec<(usize, usize)>,
    /// The anchor type proximity is measured between (e.g. `user`).
    pub anchor_type: TypeId,
}

impl PatternInfo {
    /// Analyses a metagraph for matching with the given anchor type.
    pub fn new(metagraph: Metagraph, anchor_type: TypeId) -> Self {
        let automorphisms = Automorphisms::compute(&metagraph);
        let symmetry = SymmetryInfo::from_automorphisms(&metagraph, &automorphisms);
        let decomposition = Decomposition::from_parts(&metagraph, &automorphisms, &symmetry);
        let anchor_pairs = symmetry.anchor_pairs(&metagraph, anchor_type);
        PatternInfo {
            metagraph,
            automorphisms,
            symmetry,
            decomposition,
            anchor_pairs,
            anchor_type,
        }
    }

    /// `|Aut(M)|`.
    pub fn aut_count(&self) -> u64 {
        self.decomposition.aut_count as u64
    }

    /// SymISO's residual enumeration multiplicity `r`.
    pub fn residual_factor(&self) -> u64 {
        self.decomposition.residual_factor as u64
    }

    /// Number of pattern nodes.
    pub fn n_nodes(&self) -> usize {
        self.metagraph.n_nodes()
    }

    /// True iff the pattern is symmetric per Def. 1 and has at least one
    /// anchor pair — i.e. it can contribute to anchor proximity at all.
    pub fn is_useful_for_proximity(&self) -> bool {
        !self.anchor_pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: TypeId = TypeId(0);
    const A: TypeId = TypeId(1);

    #[test]
    fn bundles_are_consistent() {
        let m = Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        assert_eq!(p.aut_count(), 2);
        assert_eq!(p.residual_factor(), 1);
        assert_eq!(p.anchor_pairs, vec![(0, 2)]);
        assert!(p.is_useful_for_proximity());
        assert_eq!(p.n_nodes(), 3);
    }

    #[test]
    fn asymmetric_pattern_not_useful() {
        let m = Metagraph::from_edges(&[U, A], &[(0, 1)]).unwrap();
        let p = PatternInfo::new(m, U);
        assert!(!p.is_useful_for_proximity());
        assert_eq!(p.aut_count(), 1);
    }
}

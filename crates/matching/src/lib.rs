//! # mgp-matching — metagraph matching algorithms
//!
//! Computing the instance set `I(M)` of a metagraph `M` on an object graph
//! `G` — *matching* `M` — is the dominant offline cost of semantic proximity
//! search (Table III of the paper: 9 870 s on LinkedIn vs 11.6 s of
//! training). This crate implements the paper's matching stack (Sect. IV):
//!
//! * a shared backtracking [`engine`] (Sect. IV-A) with pluggable node
//!   orderings and candidate filters,
//! * three baselines in the style of the paper's comparison set:
//!   [`QuickSi`] (selectivity-ordered backtracking, after Shang et al.),
//!   [`Vf2`] (classic frontier-candidate propagation), and [`TurboLite`]
//!   (typed-degree candidate filtering, after Han et al.) — all enumerate
//!   *embeddings*,
//! * [`SymIso`] (Sect. IV-C, Alg. 2–3): decomposes the pattern into blocks
//!   of symmetric components, matches one component per block and reuses its
//!   candidate matchings for the mirrors, choosing unordered *combinations*
//!   — enumerating each instance once (up to the pattern's residual
//!   symmetry factor, which is divided out),
//! * [`order`]: the estimated-instance matching-order heuristic of
//!   Sect. IV-C, plus the random order used by the SymISO-R ablation,
//! * [`instance`]: instance semantics (Def. 2) — canonicalisation of
//!   embeddings into instances and exact instance counting for any matcher,
//! * [`anchor`]: accumulation of the anchor-pair co-occurrence counts that
//!   become the metagraph vectors `m_x`, `m_xy` (Eq. 1–2),
//! * [`delta`]: delta-rule incremental matching — after a churn batch
//!   (edge insertions *and* removals), enumerate only the *new* instances
//!   (each inserted edge pinned at every compatible pattern edge, over the
//!   updated graph) and the *doomed* instances (each removed edge pinned
//!   the same way, over the pre-delete graph), and emit signed
//!   [`CountDelta`] increments for the index layer,
//! * [`wcoj`]: the worst-case-optimal delta matcher — cached
//!   propose/intersect extension plans with anchor-ownership dedup,
//!   producing bit-identical [`CountDelta`]s to [`delta`] (which stays
//!   as the differential oracle) without per-embedding canonicalisation,
//! * [`parallel`]: fan a metagraph set across threads with crossbeam.
//!
//! ## Embeddings vs instances
//!
//! An *embedding* is a type- and edge-preserving injection `V_M → V`. An
//! *instance* (Def. 2) is the image subgraph; `|Aut(M)|` embeddings share
//! one instance. Baseline matchers enumerate embeddings; instance counts
//! divide by `|Aut(M)|` (the group acts freely). SymISO enumerates one
//! assignment per instance directly (up to the residual factor `r`, usually
//! 1 — see [`mgp_metagraph::Decomposition`]).

#![warn(missing_docs)]

pub mod anchor;
pub mod delta;
pub mod engine;
pub mod instance;
pub mod order;
pub mod parallel;
pub mod pattern;
pub mod quicksi;
pub mod symiso;
pub mod turbo;
pub mod vf2;
pub mod wcoj;

pub use anchor::AnchorCounts;
pub use delta::{
    delta_anchor_counts, delta_count_changes, doomed_anchor_counts, edge_seeded_instances,
    merge_counts, CountDelta, CountUnderflow, MatchDelta,
};
pub use instance::{collect_instances, count_embeddings, count_instances, Instance};
pub use pattern::PatternInfo;
pub use quicksi::QuickSi;
pub use symiso::SymIso;
pub use turbo::TurboLite;
pub use vf2::Vf2;
pub use wcoj::{
    wcoj_count_changes, wcoj_delta_anchor_counts, wcoj_doomed_anchor_counts, ExtensionPlan,
    MatchStats,
};

use mgp_graph::{Graph, NodeId};

/// A metagraph-matching algorithm.
///
/// Implementations enumerate assignments `pattern node → graph node`
/// through a visitor; [`Matcher::multiplicity`] says how many enumerated
/// assignments correspond to one instance, letting callers convert counts.
pub trait Matcher: Sync {
    /// Short stable name, e.g. `"SymISO"`, used in benchmark output.
    fn name(&self) -> &'static str;

    /// Enumerates assignments. The visitor receives the assignment indexed
    /// by pattern node and returns `true` to continue, `false` to abort.
    fn enumerate(&self, g: &Graph, p: &PatternInfo, visit: &mut dyn FnMut(&[NodeId]) -> bool);

    /// Number of enumerated assignments per instance of the pattern.
    fn multiplicity(&self, p: &PatternInfo) -> u64;
}

//! Delta-rule incremental matching: enumerate only the instances created
//! by a batch of edge insertions or destroyed by a batch of edge
//! removals.
//!
//! Subgraph matching is monotone, so after a churn batch lands (via
//! `mgp_graph::Graph::apply_delta`):
//!
//! * every *new* instance of a pattern must map at least one pattern edge
//!   onto an inserted graph edge — an instance whose image uses only old
//!   edges existed before the update;
//! * every *doomed* instance must map at least one pattern edge onto a
//!   removed graph edge — an instance avoiding all removed edges
//!   survives.
//!
//! Following the delta-query decomposition of dataflow joins, both sides
//! therefore anchor the same way ([`edge_seeded_instances`]): for each
//! changed edge `(a, b)` and each type-compatible pattern edge `⟨u, v⟩`
//! (both orientations), run the shared backtracking engine with
//! `u ↦ a, v ↦ b` pinned and complete the embedding. The only asymmetry
//! is *which graph* is searched: insertions complete over the *updated*
//! graph (new instances exist only there), removals complete over the
//! ***pre*-delete** graph (doomed instances exist only there — the
//! removed edges are still present in it). Instances reachable through
//! several anchors (several changed edges, or symmetric pattern edges)
//! are deduplicated by canonical instance (`Instance::canonical`), so
//! each contributes exactly once — the same per-instance semantics as
//! [`crate::anchor::anchor_counts`].
//!
//! The two sides meet in [`CountDelta`], a *signed* per-coordinate count
//! change (`+1` per new instance contribution, `−1` per doomed one).
//! Applying a [`CountDelta`] onto the pre-update counts reproduces,
//! exactly, a from-scratch rematch on the updated graph — including the
//! disappearance of zeroed entries (asserted by tests here and by the
//! workspace-level incremental-equivalence and churn-soak tests).
//!
//! A [`CountDelta`] is a property of the *pattern*, not of any class:
//! every class whose coordinates use the pattern consumes the same
//! change. The engine therefore delta-matches each pattern **once per
//! ingest** and fans the resulting deltas out to all class indexes
//! through `mgp_index::IndexDeltaBatch` — class count multiplies only
//! the cheap fan-out, never the enumeration.

use crate::anchor::{accumulate_contribution, AnchorCounts};
use crate::engine::backtrack_embeddings_seeded;
use crate::instance::Instance;
use crate::pattern::PatternInfo;
use mgp_graph::{FxHashMap, FxHashSet, Graph, NodeId};

/// A *signed* change to one metagraph coordinate's anchor counts: the
/// symmetric meeting point of the insertion and deletion delta rules.
/// Produced by [`delta_count_changes`], consumed by
/// `mgp_index::VectorIndex::apply_delta` (via `IndexDelta`) and by
/// [`CountDelta::apply_to`] for the matcher-side count caches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountDelta {
    /// `x → Δm_x[i]` (entries never zero).
    pub per_node: FxHashMap<u32, i64>,
    /// `pack_pair(x, y) → Δm_xy[i]` (entries never zero).
    pub per_pair: FxHashMap<u64, i64>,
    /// Signed change to `|I(Mᵢ)|`.
    pub n_instances: i64,
}

impl CountDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty() && self.per_pair.is_empty() && self.n_instances == 0
    }

    /// Folds `counts` in with the given sign (`+1` for insertions, `−1`
    /// for removals), dropping entries that cancel to zero so the touch
    /// set downstream stays minimal.
    pub fn accumulate(&mut self, counts: &AnchorCounts, sign: i64) {
        for (&x, &c) in &counts.per_node {
            let e = self.per_node.entry(x).or_insert(0);
            *e += sign * c as i64;
            if *e == 0 {
                self.per_node.remove(&x);
            }
        }
        for (&key, &c) in &counts.per_pair {
            let e = self.per_pair.entry(key).or_insert(0);
            *e += sign * c as i64;
            if *e == 0 {
                self.per_pair.remove(&key);
            }
        }
        self.n_instances += sign * counts.n_instances as i64;
    }

    /// Applies the signed delta onto absolute counts in place (the merge
    /// step of an ingest). Entries that reach zero are *removed*, so the
    /// result is bit-identical to a fresh rematch (which never emits
    /// zero-count entries).
    ///
    /// # Panics
    /// Panics if a count would go negative — that means the delta was not
    /// produced against these counts' graph and the pipeline is corrupt.
    pub fn apply_to(&self, base: &mut AnchorCounts) {
        for (&x, &d) in &self.per_node {
            let e = base.per_node.entry(x).or_insert(0);
            let total = *e as i64 + d;
            assert!(total >= 0, "node {x}: count {e} + delta {d} is negative");
            if total == 0 {
                base.per_node.remove(&x);
            } else {
                *e = total as u64;
            }
        }
        for (&key, &d) in &self.per_pair {
            let e = base.per_pair.entry(key).or_insert(0);
            let total = *e as i64 + d;
            assert!(total >= 0, "pair {key}: count {e} + delta {d} is negative");
            if total == 0 {
                base.per_pair.remove(&key);
            } else {
                *e = total as u64;
            }
        }
        let n = base.n_instances as i64 + self.n_instances;
        assert!(n >= 0, "instance count went negative");
        base.n_instances = n as u64;
    }

    /// Verifies that [`CountDelta::apply_to`] on `base` would not drive
    /// any count negative, **without mutating anything** — the
    /// validation gate the engine runs before committing an ingest, so a
    /// malformed delta (one produced against a different graph, e.g. via
    /// a stale model import) is rejected as a typed error instead of
    /// panicking a long-lived serving process mid-mutation. Returns the
    /// first offending entry.
    pub fn check_against(&self, base: &AnchorCounts) -> Result<(), CountUnderflow> {
        for (&x, &d) in &self.per_node {
            let have = base.per_node.get(&x).copied().unwrap_or(0);
            if (have as i128) + (d as i128) < 0 {
                return Err(CountUnderflow {
                    node: Some(x),
                    pair: None,
                    have,
                    change: d,
                });
            }
        }
        for (&key, &d) in &self.per_pair {
            let have = base.per_pair.get(&key).copied().unwrap_or(0);
            if (have as i128) + (d as i128) < 0 {
                return Err(CountUnderflow {
                    node: None,
                    pair: Some(key),
                    have,
                    change: d,
                });
            }
        }
        if (base.n_instances as i128) + (self.n_instances as i128) < 0 {
            return Err(CountUnderflow {
                node: None,
                pair: None,
                have: base.n_instances,
                change: self.n_instances,
            });
        }
        Ok(())
    }
}

/// The first count underflow [`CountDelta::check_against`] found: the
/// entry (a node, a pair, or — with both `None` — the instance total)
/// whose current count plus the signed change would go negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountUnderflow {
    /// Offending per-node key, if a node count underflows.
    pub node: Option<u32>,
    /// Offending packed per-pair key, if a pair count underflows.
    pub pair: Option<u64>,
    /// The count currently present.
    pub have: u64,
    /// The signed change that would push it below zero.
    pub change: i64,
}

impl std::fmt::Display for CountUnderflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.node, self.pair) {
            (Some(x), _) => write!(f, "node {x}"),
            (None, Some(key)) => {
                let (a, b) = mgp_graph::ids::unpack_pair(key);
                write!(f, "pair ({a}, {b})")
            }
            (None, None) => write!(f, "instance total"),
        }?;
        write!(
            f,
            ": count {} + change {} would go negative",
            self.have, self.change
        )
    }
}

impl From<&AnchorCounts> for CountDelta {
    /// A pure-insertion delta (every count positive).
    fn from(counts: &AnchorCounts) -> Self {
        let mut d = CountDelta::default();
        d.accumulate(counts, 1);
        d
    }
}

/// Enumerates, deduplicated by canonical instance, every instance of `p`
/// in `g` whose image uses at least one of `seed_edges` — the shared core
/// of both delta-rule directions. Each seed edge is pinned (both
/// orientations) onto every pattern edge and the embedding is completed
/// by the shared seeded backtracking engine, so the per-edge cost depends
/// on the neighbourhood of the seed edge, not on graph size.
pub fn edge_seeded_instances(
    g: &Graph,
    p: &PatternInfo,
    seed_edges: &[(NodeId, NodeId)],
) -> FxHashSet<Instance> {
    let mut seen: FxHashSet<Instance> = FxHashSet::default();
    for &(u, v) in &p.metagraph.edges() {
        let order = pinned_order(p, u, v);
        for &(a, b) in seed_edges {
            for (x, y) in [(a, b), (b, a)] {
                backtrack_embeddings_seeded(g, p, &order, &[x, y], None, &mut |assign| {
                    seen.insert(Instance::canonical(assign, p));
                    true
                });
            }
        }
    }
    seen
}

/// Accumulates per-instance contributions exactly like `anchor_counts`
/// does per visit (same shared helper: pairs and nodes deduplicated
/// within an instance).
fn counts_of_instances(instances: &FxHashSet<Instance>, p: &PatternInfo) -> AnchorCounts {
    let mut counts = AnchorCounts {
        n_instances: instances.len() as u64,
        ..Default::default()
    };
    let mut pair_buf: Vec<u64> = Vec::with_capacity(p.anchor_pairs.len());
    let mut node_buf: Vec<u32> = Vec::with_capacity(2 * p.anchor_pairs.len());
    for inst in instances {
        accumulate_contribution(
            &inst.assignment,
            p,
            &mut pair_buf,
            &mut node_buf,
            &mut counts.per_node,
            &mut counts.per_pair,
        );
    }
    counts
}

/// Enumerates the instances of `p` created by inserting `new_edges` into
/// `g` (`g` is the graph *after* the insertion) and returns their anchor
/// counts as increments over the pre-insertion counts.
///
/// `new_nodes` lists delta-added nodes; it only matters for edgeless
/// single-node patterns, whose instance count grows with matching nodes.
pub fn delta_anchor_counts(
    g: &Graph,
    p: &PatternInfo,
    new_edges: &[(NodeId, NodeId)],
    new_nodes: &[NodeId],
) -> AnchorCounts {
    let m = &p.metagraph;
    if m.edges().is_empty() {
        // No edges to anchor on: a (necessarily single-node) pattern gains
        // one instance per new node of its type. Larger edgeless patterns
        // do not occur in mined sets (mining emits connected patterns).
        let mut counts = AnchorCounts::default();
        if m.n_nodes() == 1 {
            counts.n_instances = new_nodes
                .iter()
                .filter(|&&x| g.node_type(x) == m.node_type(0))
                .count() as u64;
        }
        return counts;
    }
    counts_of_instances(&edge_seeded_instances(g, p, new_edges), p)
}

/// Enumerates the instances of `p` destroyed by removing `removed_edges`
/// and returns their anchor counts (to be *subtracted* from the
/// pre-removal counts).
///
/// `g_pre` is the graph **before** the removal — doomed instances exist
/// only there, and the removed edges are still present in it, so the same
/// seeded backtracking entry point the insertion side uses applies
/// unchanged. Node removals are tombstone detaches (the id survives), so
/// edgeless single-node patterns never lose instances.
pub fn doomed_anchor_counts(
    g_pre: &Graph,
    p: &PatternInfo,
    removed_edges: &[(NodeId, NodeId)],
) -> AnchorCounts {
    if p.metagraph.edges().is_empty() {
        return AnchorCounts::default();
    }
    counts_of_instances(&edge_seeded_instances(g_pre, p, removed_edges), p)
}

/// The outcome of one symmetric delta-match ([`delta_count_changes`]):
/// the net signed count changes plus the gross per-side instance tallies
/// (which cancel inside [`MatchDelta::changes`] and would otherwise be
/// lost — ingest reporting wants both).
#[derive(Debug, Clone, Default)]
pub struct MatchDelta {
    /// Net signed count changes (new minus doomed).
    pub changes: CountDelta,
    /// Instances created by the inserted edges / nodes.
    pub new_instances: u64,
    /// Instances destroyed by the removed edges.
    pub doomed_instances: u64,
}

impl MatchDelta {
    /// Whether the batch changed nothing for this pattern — neither side
    /// enumerated an instance (or they cancelled exactly). Ingest uses
    /// this to skip the pattern in the multi-class fan-out.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty() && self.new_instances == 0 && self.doomed_instances == 0
    }
}

/// The symmetric delta rule in one call: signed count changes for a mixed
/// insert+delete batch. Doomed instances are enumerated against `g_pre`
/// (seeded at `removed_edges`), new instances against `g_post` (seeded at
/// `new_edges`); the two sides cancel where they overlap.
///
/// Applying [`MatchDelta::changes`] onto the pre-batch counts (via
/// [`CountDelta::apply_to`]) equals a from-scratch rematch on `g_post`.
pub fn delta_count_changes(
    g_pre: &Graph,
    g_post: &Graph,
    p: &PatternInfo,
    removed_edges: &[(NodeId, NodeId)],
    new_edges: &[(NodeId, NodeId)],
    new_nodes: &[NodeId],
) -> MatchDelta {
    let mut out = MatchDelta::default();
    if !removed_edges.is_empty() {
        let doomed = doomed_anchor_counts(g_pre, p, removed_edges);
        out.doomed_instances = doomed.n_instances;
        out.changes.accumulate(&doomed, -1);
    }
    let fresh = delta_anchor_counts(g_post, p, new_edges, new_nodes);
    out.new_instances = fresh.n_instances;
    out.changes.accumulate(&fresh, 1);
    out
}

/// Adds `delta` counts onto `base` in place (the merge step of a pure
/// insertion ingest; the signed equivalent is [`CountDelta::apply_to`]).
pub fn merge_counts(base: &mut AnchorCounts, delta: &AnchorCounts) {
    for (&x, &c) in &delta.per_node {
        *base.per_node.entry(x).or_insert(0) += c;
    }
    for (&key, &c) in &delta.per_pair {
        *base.per_pair.entry(key).or_insert(0) += c;
    }
    base.n_instances += delta.n_instances;
}

/// A valid matching order that starts with the anchored pattern edge
/// `u, v` and grows connected where possible (detached components are
/// appended in BFS order, mirroring `order::connectivity_order`).
fn pinned_order(p: &PatternInfo, u: usize, v: usize) -> Vec<usize> {
    let m = &p.metagraph;
    let n = m.n_nodes();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    order.push(u);
    placed[u] = true;
    if v != u {
        order.push(v);
        placed[v] = true;
    }
    while order.len() < n {
        // Prefer a node adjacent to the placed prefix.
        let next = (0..n)
            .filter(|&w| !placed[w])
            .find(|&w| m.neighbors(w).any(|nb| placed[nb]))
            .or_else(|| (0..n).find(|&w| !placed[w]))
            .expect("some node remains");
        placed[next] = true;
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::anchor_counts;
    use crate::SymIso;
    use mgp_graph::ids::pack_pair;
    use mgp_graph::{GraphBuilder, GraphDelta, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);
    const M: TypeId = TypeId(2);

    fn campus() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s1 = b.add_node(school, "s1");
        let s2 = b.add_node(school, "s2");
        let m1 = b.add_node(major, "m1");
        for i in 0..6 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, if i < 3 { s1 } else { s2 }).unwrap();
            if i % 2 == 0 {
                b.add_edge(u, m1).unwrap();
            }
        }
        b.build()
    }

    fn patterns() -> Vec<PatternInfo> {
        vec![
            PatternInfo::new(
                Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, M, U], &[(0, 1), (1, 2)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, U, S, M], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, S, U, M, U], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap(),
                U,
            ),
        ]
    }

    /// Signed delta applied to old counts must equal a fresh full rematch
    /// on the updated graph — the symmetric churn contract.
    fn assert_incremental_equals_rematch(g_old: &Graph, delta: &GraphDelta) {
        let ext = g_old.apply_delta(delta).unwrap();
        for p in patterns() {
            let mut old = anchor_counts(&SymIso::new(), g_old, &p);
            let d = delta_count_changes(
                g_old,
                &ext.graph,
                &p,
                &ext.removed_edges,
                &ext.new_edges,
                &ext.new_nodes,
            );
            d.changes.apply_to(&mut old);
            let full = anchor_counts(&SymIso::new(), &ext.graph, &p);
            assert_eq!(old, full, "pattern {}", p.metagraph.brief());
        }
    }

    #[test]
    fn single_edge_insertion() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // u5 (node 8) joins major m1 (node 2).
        d.add_edge(NodeId(8), NodeId(2)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn multi_edge_batch_with_overlap() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // Two edges that jointly create instances using BOTH new edges
        // (u1 and u3 both join school s2): dedup must not double count.
        d.add_edge(NodeId(4), NodeId(1)).unwrap();
        d.add_edge(NodeId(1), NodeId(5)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn new_node_with_edges() {
        let g = campus();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let nu = d.add_node(user, "u-new");
        d.add_edge(nu, NodeId(0)).unwrap();
        d.add_edge(nu, NodeId(2)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn single_edge_removal() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 3) leaves major m1 (node 2): shared-major instances
        // through u0 die, counts drop to a fresh rematch exactly.
        d.remove_edge(NodeId(3), NodeId(2)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn multi_edge_removal_with_overlap() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // u0 and u2 both leave school s1: instances using both removed
        // edges must be subtracted exactly once (canonical dedup).
        d.remove_edge(NodeId(3), NodeId(0)).unwrap();
        d.remove_edge(NodeId(5), NodeId(0)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn node_removal_dooms_all_incident_instances() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 3) is detached entirely (school + major edges).
        d.remove_node(NodeId(3)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn mixed_insert_and_delete_batch() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // u5 joins m1 while u0 leaves s1 and a fresh user joins s2 — both
        // delta-rule directions in one batch.
        d.add_edge(NodeId(8), NodeId(2)).unwrap();
        d.remove_edge(NodeId(3), NodeId(0)).unwrap();
        let user = g.types().id("user").unwrap();
        let nu = d.add_node(user, "u-new");
        d.add_edge(nu, NodeId(1)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn remove_then_reinsert_nets_to_zero_changes() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_edge(NodeId(3), NodeId(0)).unwrap();
        d.add_edge(NodeId(3), NodeId(0)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        for p in patterns() {
            let inc = delta_count_changes(
                &g,
                &ext.graph,
                &p,
                &ext.removed_edges,
                &ext.new_edges,
                &ext.new_nodes,
            );
            assert!(inc.changes.is_empty(), "pattern {}", p.metagraph.brief());
            assert_eq!((inc.new_instances, inc.doomed_instances), (0, 0));
        }
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn removal_then_full_detach_leaves_no_zero_entries() {
        // After removing every instance a node participates in, the node
        // must vanish from the count maps entirely (not linger at zero).
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_node(NodeId(3)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        for p in patterns() {
            let mut counts = anchor_counts(&SymIso::new(), &g, &p);
            let inc = delta_count_changes(
                &g,
                &ext.graph,
                &p,
                &ext.removed_edges,
                &ext.new_edges,
                &ext.new_nodes,
            );
            inc.changes.apply_to(&mut counts);
            assert!(
                counts.per_node.values().all(|&c| c > 0),
                "zero node count leaked"
            );
            assert!(
                counts.per_pair.values().all(|&c| c > 0),
                "zero pair count leaked"
            );
            assert!(!counts.per_node.contains_key(&3));
        }
    }

    #[test]
    fn no_new_instances_when_edge_is_irrelevant() {
        let g = campus();
        let school = g.types().id("school").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        // A fresh school with a single user attached creates shared-school
        // pairs only if ≥ 2 users attach; one edge → u-s-u gains nothing,
        // but the asymmetric u-s edge patterns aren't in our set anyway.
        let ns = d.add_node(school, "s-new");
        d.add_edge(NodeId(3), ns).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        let p = &patterns()[0];
        let inc = delta_anchor_counts(&ext.graph, p, &ext.new_edges, &ext.new_nodes);
        assert_eq!(inc.n_instances, 0);
        assert!(inc.per_pair.is_empty());
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn edgeless_single_node_pattern_counts_new_nodes() {
        let g = campus();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        d.add_node(user, "a");
        d.add_node(TypeId(1), "b");
        let ext = g.apply_delta(&d).unwrap();
        let p = PatternInfo::new(Metagraph::new(&[U]).unwrap(), U);
        let inc = delta_anchor_counts(&ext.graph, &p, &ext.new_edges, &ext.new_nodes);
        assert_eq!(inc.n_instances, 1);
        // Tombstone node removals never subtract single-node instances.
        assert_eq!(doomed_anchor_counts(&g, &p, &[]), AnchorCounts::default());
    }

    #[test]
    fn empty_delta_yields_empty_counts() {
        let g = campus();
        for p in patterns() {
            let inc = delta_anchor_counts(&g, &p, &[], &[]);
            assert_eq!(inc, AnchorCounts::default());
            let doomed = doomed_anchor_counts(&g, &p, &[]);
            assert_eq!(doomed, AnchorCounts::default());
            assert!(delta_count_changes(&g, &g, &p, &[], &[], &[])
                .changes
                .is_empty());
        }
    }

    #[test]
    fn merge_counts_adds_pointwise() {
        let mut a = AnchorCounts::default();
        a.per_node.insert(1, 2);
        a.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 1);
        a.n_instances = 3;
        let mut b = AnchorCounts::default();
        b.per_node.insert(1, 1);
        b.per_node.insert(7, 4);
        b.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 2);
        b.n_instances = 2;
        merge_counts(&mut a, &b);
        assert_eq!(a.node_count(NodeId(1)), 3);
        assert_eq!(a.node_count(NodeId(7)), 4);
        assert_eq!(a.pair_count(NodeId(1), NodeId(2)), 3);
        assert_eq!(a.n_instances, 5);
    }

    #[test]
    fn count_delta_accumulate_and_apply() {
        let mut add = AnchorCounts::default();
        add.per_node.insert(1, 2);
        add.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 1);
        add.n_instances = 2;
        let mut sub = AnchorCounts::default();
        sub.per_node.insert(1, 2);
        sub.per_node.insert(5, 1);
        sub.per_pair.insert(pack_pair(NodeId(1), NodeId(5)), 1);
        sub.n_instances = 1;

        let mut d = CountDelta::from(&add);
        d.accumulate(&sub, -1);
        // Node 1 cancels exactly → dropped from the delta.
        assert!(!d.per_node.contains_key(&1));
        assert_eq!(d.per_node[&5], -1);
        assert_eq!(d.n_instances, 1);

        let mut base = AnchorCounts::default();
        base.per_node.insert(5, 1);
        base.per_pair.insert(pack_pair(NodeId(1), NodeId(5)), 1);
        base.n_instances = 1;
        d.apply_to(&mut base);
        // Node 5 and pair (1,5) hit zero → removed, not kept at 0.
        assert!(!base.per_node.contains_key(&5));
        assert!(!base.per_pair.contains_key(&pack_pair(NodeId(1), NodeId(5))));
        assert_eq!(base.pair_count(NodeId(1), NodeId(2)), 1);
        assert_eq!(base.n_instances, 2);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn apply_to_panics_on_underflow() {
        let mut sub = AnchorCounts::default();
        sub.per_node.insert(9, 3);
        let mut d = CountDelta::default();
        d.accumulate(&sub, -1);
        let mut base = AnchorCounts::default();
        base.per_node.insert(9, 1);
        d.apply_to(&mut base);
    }

    #[test]
    fn check_against_flags_underflow_without_mutating() {
        let mut sub = AnchorCounts::default();
        sub.per_node.insert(9, 3);
        let mut d = CountDelta::default();
        d.accumulate(&sub, -1);
        let mut base = AnchorCounts::default();
        base.per_node.insert(9, 1);

        let err = d.check_against(&base).unwrap_err();
        assert_eq!(err.node, Some(9));
        assert_eq!((err.have, err.change), (1, -3));
        assert!(err.to_string().contains("node 9"));
        // The probe must leave `base` untouched.
        assert_eq!(base.per_node[&9], 1);

        // With enough headroom the same delta validates and applies.
        base.per_node.insert(9, 3);
        assert!(d.check_against(&base).is_ok());
        d.apply_to(&mut base);
        assert!(!base.per_node.contains_key(&9));
    }

    #[test]
    fn check_against_catches_pair_and_instance_underflow() {
        let mut sub = AnchorCounts::default();
        sub.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 2);
        sub.n_instances = 2;
        let mut d = CountDelta::default();
        d.accumulate(&sub, -1);

        let mut base = AnchorCounts::default();
        base.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 1);
        base.n_instances = 5;
        let err = d.check_against(&base).unwrap_err();
        assert_eq!(err.node, None);
        assert!(err.pair.is_some());
        assert!(err.to_string().contains("pair (n1, n2)"));

        base.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 2);
        base.n_instances = 1;
        let err = d.check_against(&base).unwrap_err();
        assert_eq!((err.node, err.pair), (None, None));
        assert!(err.to_string().contains("instance total"));
    }
}

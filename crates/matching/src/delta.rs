//! Delta-rule incremental matching: enumerate only the instances created
//! by a batch of edge insertions.
//!
//! After an edge batch `ΔE` lands (via `mgp_graph::Graph::apply_delta`),
//! every *new* instance of a pattern must map at least one pattern edge
//! onto a new graph edge — subgraph matching is monotone, so an instance
//! whose image uses only old edges existed before the update. Following
//! the delta-query decomposition of dataflow joins, we therefore anchor:
//! for each new edge `(a, b)` and each type-compatible pattern edge
//! `⟨u, v⟩` (both orientations), run the shared backtracking engine with
//! `u ↦ a, v ↦ b` pinned and complete the embedding over the *updated*
//! graph. Instances reachable through several anchors (several new edges,
//! or symmetric pattern edges) are deduplicated by canonical instance
//! (`Instance::canonical`), so each new instance contributes exactly once
//! — the same per-instance semantics as [`crate::anchor::anchor_counts`].
//!
//! The emitted [`AnchorCounts`] are *increments*: adding them onto the
//! pre-update counts reproduces, exactly, a from-scratch rematch on the
//! updated graph (asserted by tests here and by the workspace-level
//! incremental-equivalence property test).

use crate::anchor::{accumulate_contribution, AnchorCounts};
use crate::engine::backtrack_embeddings_seeded;
use crate::instance::Instance;
use crate::pattern::PatternInfo;
use mgp_graph::{FxHashSet, Graph, NodeId};

/// Enumerates the instances of `p` created by inserting `new_edges` into
/// `g` (`g` is the graph *after* the insertion) and returns their anchor
/// counts as increments over the pre-insertion counts.
///
/// `new_nodes` lists delta-added nodes; it only matters for edgeless
/// single-node patterns, whose instance count grows with matching nodes.
pub fn delta_anchor_counts(
    g: &Graph,
    p: &PatternInfo,
    new_edges: &[(NodeId, NodeId)],
    new_nodes: &[NodeId],
) -> AnchorCounts {
    let m = &p.metagraph;
    let pattern_edges = m.edges();
    if pattern_edges.is_empty() {
        // No edges to anchor on: a (necessarily single-node) pattern gains
        // one instance per new node of its type. Larger edgeless patterns
        // do not occur in mined sets (mining emits connected patterns).
        let mut counts = AnchorCounts::default();
        if m.n_nodes() == 1 {
            counts.n_instances = new_nodes
                .iter()
                .filter(|&&x| g.node_type(x) == m.node_type(0))
                .count() as u64;
        }
        return counts;
    }

    // Collect each new instance once, keyed by canonical assignment. The
    // anchored edge is *seeded* into the backtracking (no candidate
    // generation for the pinned positions), so the per-edge cost depends
    // on the neighbourhood of the new edge, not on graph size; a
    // type-incompatible anchoring is rejected inside the seeded engine.
    let mut seen: FxHashSet<Instance> = FxHashSet::default();
    for &(u, v) in &pattern_edges {
        let order = pinned_order(p, u, v);
        for &(a, b) in new_edges {
            for (x, y) in [(a, b), (b, a)] {
                backtrack_embeddings_seeded(g, p, &order, &[x, y], None, &mut |assign| {
                    seen.insert(Instance::canonical(assign, p));
                    true
                });
            }
        }
    }

    // Accumulate per-instance contributions exactly like `anchor_counts`
    // does per visit (same shared helper: pairs and nodes deduplicated
    // within an instance).
    let mut counts = AnchorCounts {
        n_instances: seen.len() as u64,
        ..Default::default()
    };
    let mut pair_buf: Vec<u64> = Vec::with_capacity(p.anchor_pairs.len());
    let mut node_buf: Vec<u32> = Vec::with_capacity(2 * p.anchor_pairs.len());
    for inst in &seen {
        accumulate_contribution(
            &inst.assignment,
            p,
            &mut pair_buf,
            &mut node_buf,
            &mut counts.per_node,
            &mut counts.per_pair,
        );
    }
    counts
}

/// Adds `delta` counts onto `base` in place (the merge step of an ingest).
pub fn merge_counts(base: &mut AnchorCounts, delta: &AnchorCounts) {
    for (&x, &c) in &delta.per_node {
        *base.per_node.entry(x).or_insert(0) += c;
    }
    for (&key, &c) in &delta.per_pair {
        *base.per_pair.entry(key).or_insert(0) += c;
    }
    base.n_instances += delta.n_instances;
}

/// A valid matching order that starts with the anchored pattern edge
/// `u, v` and grows connected where possible (detached components are
/// appended in BFS order, mirroring `order::connectivity_order`).
fn pinned_order(p: &PatternInfo, u: usize, v: usize) -> Vec<usize> {
    let m = &p.metagraph;
    let n = m.n_nodes();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    order.push(u);
    placed[u] = true;
    if v != u {
        order.push(v);
        placed[v] = true;
    }
    while order.len() < n {
        // Prefer a node adjacent to the placed prefix.
        let next = (0..n)
            .filter(|&w| !placed[w])
            .find(|&w| m.neighbors(w).any(|nb| placed[nb]))
            .or_else(|| (0..n).find(|&w| !placed[w]))
            .expect("some node remains");
        placed[next] = true;
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::anchor_counts;
    use crate::SymIso;
    use mgp_graph::ids::pack_pair;
    use mgp_graph::{GraphBuilder, GraphDelta, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);
    const M: TypeId = TypeId(2);

    fn campus() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s1 = b.add_node(school, "s1");
        let s2 = b.add_node(school, "s2");
        let m1 = b.add_node(major, "m1");
        for i in 0..6 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, if i < 3 { s1 } else { s2 }).unwrap();
            if i % 2 == 0 {
                b.add_edge(u, m1).unwrap();
            }
        }
        b.build()
    }

    fn patterns() -> Vec<PatternInfo> {
        vec![
            PatternInfo::new(
                Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, M, U], &[(0, 1), (1, 2)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, U, S, M], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, S, U, M, U], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap(),
                U,
            ),
        ]
    }

    /// Delta counts added to old counts must equal a fresh full rematch.
    fn assert_incremental_equals_rematch(g_old: &Graph, delta: &GraphDelta) {
        let ext = g_old.apply_delta(delta).unwrap();
        for p in patterns() {
            let mut old = anchor_counts(&SymIso::new(), g_old, &p);
            let inc = delta_anchor_counts(&ext.graph, &p, &ext.new_edges, &ext.new_nodes);
            merge_counts(&mut old, &inc);
            let full = anchor_counts(&SymIso::new(), &ext.graph, &p);
            assert_eq!(old, full, "pattern {}", p.metagraph.brief());
        }
    }

    #[test]
    fn single_edge_insertion() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // u5 (node 8) joins major m1 (node 2).
        d.add_edge(NodeId(8), NodeId(2)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn multi_edge_batch_with_overlap() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // Two edges that jointly create instances using BOTH new edges
        // (u1 and u3 both join school s2): dedup must not double count.
        d.add_edge(NodeId(4), NodeId(1)).unwrap();
        d.add_edge(NodeId(1), NodeId(5)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn new_node_with_edges() {
        let g = campus();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let nu = d.add_node(user, "u-new");
        d.add_edge(nu, NodeId(0)).unwrap();
        d.add_edge(nu, NodeId(2)).unwrap();
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn no_new_instances_when_edge_is_irrelevant() {
        let g = campus();
        let school = g.types().id("school").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        // A fresh school with a single user attached creates shared-school
        // pairs only if ≥ 2 users attach; one edge → u-s-u gains nothing,
        // but the asymmetric u-s edge patterns aren't in our set anyway.
        let ns = d.add_node(school, "s-new");
        d.add_edge(NodeId(3), ns).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        let p = &patterns()[0];
        let inc = delta_anchor_counts(&ext.graph, p, &ext.new_edges, &ext.new_nodes);
        assert_eq!(inc.n_instances, 0);
        assert!(inc.per_pair.is_empty());
        assert_incremental_equals_rematch(&g, &d);
    }

    #[test]
    fn edgeless_single_node_pattern_counts_new_nodes() {
        let g = campus();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        d.add_node(user, "a");
        d.add_node(TypeId(1), "b");
        let ext = g.apply_delta(&d).unwrap();
        let p = PatternInfo::new(Metagraph::new(&[U]).unwrap(), U);
        let inc = delta_anchor_counts(&ext.graph, &p, &ext.new_edges, &ext.new_nodes);
        assert_eq!(inc.n_instances, 1);
    }

    #[test]
    fn empty_delta_yields_empty_counts() {
        let g = campus();
        for p in patterns() {
            let inc = delta_anchor_counts(&g, &p, &[], &[]);
            assert_eq!(inc, AnchorCounts::default());
        }
    }

    #[test]
    fn merge_counts_adds_pointwise() {
        let mut a = AnchorCounts::default();
        a.per_node.insert(1, 2);
        a.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 1);
        a.n_instances = 3;
        let mut b = AnchorCounts::default();
        b.per_node.insert(1, 1);
        b.per_node.insert(7, 4);
        b.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 2);
        b.n_instances = 2;
        merge_counts(&mut a, &b);
        assert_eq!(a.node_count(NodeId(1)), 3);
        assert_eq!(a.node_count(NodeId(7)), 4);
        assert_eq!(a.pair_count(NodeId(1), NodeId(2)), 3);
        assert_eq!(a.n_instances, 5);
    }
}

//! Worst-case-optimal delta matching: propose/intersect prefix
//! extension over cached per-pattern plans.
//!
//! This module replaces the per-edge seeded backtracking of
//! [`crate::delta`] on the engine's hot ingest path. It computes the
//! *same* [`AnchorCounts`] / [`CountDelta`]s, bit for bit — the seeded
//! matcher stays around as the differential oracle — but organises the
//! work in the count/propose/intersect discipline of GenericJoin
//! (Ngo et al.'s worst-case-optimal join, maintained incrementally in
//! the dataflow-join style):
//!
//! * **Plan once.** [`ExtensionPlan::compile`] turns a [`PatternInfo`]
//!   into one [`AnchoredPlan`] per pattern edge: a pattern-vertex order
//!   that starts at the pinned edge, and, per later level, the list of
//!   already-bound pattern neighbours. Plans are cached by the engine
//!   and reused across every ingest.
//! * **Propose/intersect per level.** At each level every bound pattern
//!   edge contributes a candidate set — a sorted CSR adjacency slice
//!   ([`mgp_graph::Graph::neighbors_of_type`]). The smallest slice
//!   *proposes*; the rest *intersect* it via the merge/galloping kernels
//!   of [`mgp_graph::intersect`]. The old backtracker instead scanned
//!   one pivot slice and probed every other bound edge with a per-
//!   candidate `has_edge` binary search.
//! * **Batch per anchored edge.** All changed edges that anchor the same
//!   pattern edge run through one prefix-extension pass sharing a single
//!   assignment/visited/candidate scratch — not one backtracking set-up
//!   (with its `O(|V|)` visited allocation) per changed edge per pattern
//!   edge per orientation.
//! * **Anchor ownership replaces canonical dedup.** An instance whose
//!   image contains several changed edges used to be enumerated once per
//!   anchor and deduplicated through a per-batch `HashSet` of canonical
//!   instances. Here an instance is *owned* by its numerically least
//!   changed edge (by [`pack_pair`] key, i.e. lexicographic `(min, max)`
//!   order): while extending from anchor `e`, any candidate that would
//!   form a changed image edge `< e` is pruned on the spot
//!   ([`MatchStats::dedup_suppressed`]), so the hash set — and the
//!   canonicalisation of every embedding — disappears from the hot path.
//!
//! ## Why the counts come out bit-identical
//!
//! Fix an instance `I` whose image contains at least one changed edge,
//! and let `e*` be its least changed edge. The embeddings with image `I`
//! form a torsor over `Aut(M)` (the group acts freely on embeddings), so
//! there are exactly `|Aut(M)|` of them; each maps exactly one directed
//! pattern edge onto directed `e*` and therefore survives the ownership
//! rule under exactly one `(pattern edge, orientation)` anchor run. Net:
//! every owned instance is visited exactly `|Aut(M)|` times, with
//! per-visit contributions identical across automorphic assignments
//! (the invariance [`crate::anchor`] documents). Deriving each visit's
//! contribution keys through the *same* `visit_keys` helper the oracle
//! uses, summing the raw keys, and dividing by `|Aut(M)|` once
//! therefore reproduces
//! `counts_of_instances(edge_seeded_instances(..))` exactly — the same
//! division-by-multiplicity step `anchor_counts` performs for the full
//! matchers.

use crate::anchor::{visit_keys, AnchorCounts};
use crate::delta::MatchDelta;
use crate::pattern::PatternInfo;
use mgp_graph::ids::pack_pair;
use mgp_graph::intersect::intersect_into;
use mgp_graph::{FxHashMap, FxHashSet, Graph, NodeId, TypeId};

/// Observability counters for one delta-match (or an ingest's worth of
/// them — the type is additive). Exposed on `IngestReport` so the
/// propose/intersect win is measurable in perf-trajectory runs, not just
/// asserted in CI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Candidate sets proposed (one per extension level entered).
    pub proposals: u64,
    /// Sorted-slice intersection kernel invocations.
    pub intersections: u64,
    /// Candidate bindings that passed every check and extended the
    /// prefix (including completed embeddings' last levels).
    pub extensions: u64,
    /// Instances attributed by the delta rule (new + doomed, after the
    /// `|Aut|` division).
    pub instances: u64,
    /// Candidates pruned by the anchor-ownership rule — each one a
    /// subtree the old matcher enumerated and then hashed away.
    pub dedup_suppressed: u64,
}

impl std::ops::AddAssign for MatchStats {
    fn add_assign(&mut self, rhs: MatchStats) {
        self.proposals += rhs.proposals;
        self.intersections += rhs.intersections;
        self.extensions += rhs.extensions;
        self.instances += rhs.instances;
        self.dedup_suppressed += rhs.dedup_suppressed;
    }
}

impl std::fmt::Display for MatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "proposals {}, intersections {}, extensions {}, instances {}, dedup-suppressed {}",
            self.proposals,
            self.intersections,
            self.extensions,
            self.instances,
            self.dedup_suppressed
        )
    }
}

/// One extension level of an [`AnchoredPlan`]: the pattern node bound at
/// this level, its type, and the already-bound pattern neighbours whose
/// image adjacency slices constrain the candidates.
#[derive(Debug, Clone)]
struct LevelPlan {
    /// Pattern node assigned at this level.
    node: usize,
    /// Its type (candidates come from typed adjacency slices).
    ty: TypeId,
    /// Already-bound pattern neighbours of `node` (earlier in the
    /// order). Empty only for the detached-component fallback.
    bound: Vec<usize>,
}

/// The prefix-extension program for one pinned pattern edge `(u, v)`:
/// bind `u ↦ x, v ↦ y`, then run the levels in order.
#[derive(Debug, Clone)]
struct AnchoredPlan {
    /// The pinned pattern edge's endpoints.
    u: usize,
    v: usize,
    /// Types of `u` and `v`, for O(1) seed-orientation filtering.
    tu: TypeId,
    tv: TypeId,
    /// Extension levels for the remaining pattern nodes, in the
    /// statistics-informed order chosen at compile time (smallest
    /// estimated candidate frontier first).
    levels: Vec<LevelPlan>,
}

/// A compiled, pattern-wide extension plan: one [`AnchoredPlan`] per
/// pattern edge, plus the cached `|Aut(M)|`. Compile once per pattern
/// (the engine keeps them in a per-pattern cache), reuse for every
/// delta batch.
#[derive(Debug, Clone)]
pub struct ExtensionPlan {
    anchored: Vec<AnchoredPlan>,
    aut: u64,
}

impl ExtensionPlan {
    /// Compiles the propose/intersect plan for a pattern over `g`'s
    /// type statistics.
    ///
    /// Each anchored order is chosen greedily: starting from the pinned
    /// edge's endpoints, repeatedly bind the pattern node with the
    /// smallest *estimated* candidate set — for a node constrained by
    /// bound neighbours, the cheapest proposing slice by average typed
    /// degree (`edge_type_count / |nodes of the bound type|`); for a
    /// detached node, the whole per-type node list. Estimates use
    /// whole-graph averages, so a local hot spot (a hub) can't degrade
    /// the order's correctness — only its luck — and the counts are
    /// order-independent either way. The plan is cached across ingests;
    /// type-level averages drift slowly enough that staleness is a
    /// non-issue.
    pub fn compile(p: &PatternInfo, g: &Graph) -> Self {
        let m = &p.metagraph;
        let avg_deg = |from: TypeId, to: TypeId| -> f64 {
            let sources = g.nodes_of_type(from).len().max(1) as f64;
            g.edge_type_count(from, to) as f64 / sources
        };
        let anchored = m
            .edges()
            .iter()
            .map(|&(u, v)| {
                let mut is_bound = vec![false; m.n_nodes()];
                is_bound[u] = true;
                is_bound[v] = true;
                let mut order = vec![u, v];
                let mut levels = Vec::with_capacity(m.n_nodes().saturating_sub(2));
                while order.len() < m.n_nodes() {
                    // Greedy: the unbound node with the cheapest
                    // estimated frontier goes next (ties to the lower
                    // node index, keeping plans deterministic).
                    let (mut best, mut best_est) = (usize::MAX, f64::INFINITY);
                    for q in 0..m.n_nodes() {
                        if is_bound[q] {
                            continue;
                        }
                        let est = m
                            .neighbors(q)
                            .filter(|&w| is_bound[w])
                            .map(|w| avg_deg(m.node_type(w), m.node_type(q)))
                            .fold(f64::INFINITY, f64::min);
                        let est = if est.is_finite() {
                            est
                        } else {
                            // Detached from the bound prefix: propose
                            // from the per-type node list.
                            g.nodes_of_type(m.node_type(q)).len() as f64
                        };
                        if est < best_est {
                            best = q;
                            best_est = est;
                        }
                    }
                    let q = best;
                    levels.push(LevelPlan {
                        node: q,
                        ty: m.node_type(q),
                        bound: order
                            .iter()
                            .copied()
                            .filter(|&w| m.has_edge(q, w))
                            .collect(),
                    });
                    is_bound[q] = true;
                    order.push(q);
                }
                AnchoredPlan {
                    u,
                    v,
                    tu: m.node_type(u),
                    tv: m.node_type(v),
                    levels,
                }
            })
            .collect();
        ExtensionPlan {
            anchored,
            aut: p.aut_count().max(1),
        }
    }
}

/// Raw (pre-division) accumulation state for one delta side. Visits
/// append their contribution keys to flat vectors; [`RawCounts::finish`]
/// merges them once per batch by sort + run-length. Keeping hash-map
/// probes out of the per-visit hot path is worth more than the final
/// sort on storm-sized deltas, and the sums are exact integers either
/// way — bit-identical to per-visit map updates.
#[derive(Default)]
struct RawCounts {
    node_keys: Vec<u32>,
    pair_keys: Vec<u64>,
    visits: u64,
    pair_buf: Vec<u64>,
    node_buf: Vec<u32>,
}

/// Sorts the raw key stream, run-length-counts it, and divides each
/// tally by `aut` while inserting into the result map.
fn merge_keys<K: Ord + Copy + std::hash::Hash>(keys: &mut [K], aut: u64) -> FxHashMap<K, u64> {
    keys.sort_unstable();
    // Each owned instance contributes every one of its keys exactly
    // `aut` times, so unique keys ≤ len / aut.
    let mut out = FxHashMap::default();
    out.reserve(keys.len() / aut.max(1) as usize);
    let mut i = 0;
    while i < keys.len() {
        let k = keys[i];
        let mut j = i + 1;
        while j < keys.len() && keys[j] == k {
            j += 1;
        }
        let tally = (j - i) as u64;
        debug_assert_eq!(tally % aut, 0, "raw tally not divisible by |Aut|");
        out.insert(k, tally / aut);
        i = j;
    }
    out
}

impl RawCounts {
    /// Divides every raw tally by `|Aut(M)|` — each owned instance was
    /// visited exactly that many times (see the module docs) — yielding
    /// per-instance counts identical to the canonical-dedup oracle.
    fn finish(mut self, aut: u64) -> AnchorCounts {
        let aut = aut.max(1);
        debug_assert_eq!(self.visits % aut, 0, "raw visits not divisible by |Aut|");
        AnchorCounts {
            per_node: merge_keys(&mut self.node_keys, aut),
            per_pair: merge_keys(&mut self.pair_keys, aut),
            n_instances: self.visits / aut,
        }
    }
}

/// Per-level candidate scratch (ping-pong buffers for the intersection
/// cascade). One pair per level so iteration at level `ℓ` survives the
/// recursion into `ℓ+1`.
#[derive(Default, Clone)]
struct LevelScratch {
    a: Vec<NodeId>,
    b: Vec<NodeId>,
}

/// Recursive prefix extension from `level`: generates this level's
/// candidate set by propose/intersect over the bound neighbours' typed
/// adjacency slices, applies injectivity and the anchor-ownership rule,
/// and descends. Completed embeddings accumulate raw contributions.
#[allow(clippy::too_many_arguments)]
fn extend(
    g: &Graph,
    p: &PatternInfo,
    levels: &[LevelPlan],
    level: usize,
    changed: &FxHashSet<u64>,
    anchor_key: u64,
    assign: &mut [NodeId],
    used: &mut [bool],
    scratch: &mut [LevelScratch],
    stats: &mut MatchStats,
    raw: &mut RawCounts,
) {
    if level == levels.len() {
        raw.visits += 1;
        visit_keys(assign, p, &mut raw.pair_buf, &mut raw.node_buf);
        raw.pair_keys.extend_from_slice(&raw.pair_buf);
        raw.node_keys.extend_from_slice(&raw.node_buf);
        return;
    }
    let lv = &levels[level];
    stats.proposals += 1;
    let (mine, deeper) = scratch.split_at_mut(1);
    let candidates: &[NodeId] = match lv.bound.len() {
        // Detached component: propose from the per-type node list.
        0 => g.nodes_of_type(lv.ty),
        // One bound edge: its typed slice *is* the candidate set.
        1 => g.neighbors_of_type(assign[lv.bound[0]], lv.ty),
        // Several bound edges: smallest slice proposes, the rest
        // intersect via the merge/galloping kernels.
        _ => {
            let mut smallest = 0usize;
            let mut smallest_len = usize::MAX;
            for (i, &w) in lv.bound.iter().enumerate() {
                let len = g.neighbors_of_type(assign[w], lv.ty).len();
                if len < smallest_len {
                    smallest = i;
                    smallest_len = len;
                }
            }
            if smallest_len == 0 {
                return;
            }
            let buf = &mut mine[0];
            buf.a.clear();
            buf.a
                .extend_from_slice(g.neighbors_of_type(assign[lv.bound[smallest]], lv.ty));
            for (i, &w) in lv.bound.iter().enumerate() {
                if i == smallest {
                    continue;
                }
                buf.b.clear();
                intersect_into(&buf.a, g.neighbors_of_type(assign[w], lv.ty), &mut buf.b);
                stats.intersections += 1;
                std::mem::swap(&mut buf.a, &mut buf.b);
                if buf.a.is_empty() {
                    return;
                }
            }
            &buf.a
        }
    };
    'cand: for &c in candidates {
        if used[c.index()] {
            continue;
        }
        // Anchor ownership: binding c forms one new image edge per bound
        // neighbour; if any is a changed edge numerically below the
        // anchor, the instance belongs to that edge's run — prune.
        for &w in &lv.bound {
            let key = pack_pair(c, assign[w]);
            if key < anchor_key && changed.contains(&key) {
                stats.dedup_suppressed += 1;
                continue 'cand;
            }
        }
        stats.extensions += 1;
        assign[lv.node] = c;
        used[c.index()] = true;
        extend(
            g,
            p,
            levels,
            level + 1,
            changed,
            anchor_key,
            assign,
            used,
            deeper,
            stats,
            raw,
        );
        used[c.index()] = false;
    }
}

/// One delta side — shared by the insertion and removal directions,
/// which differ only in which graph they extend over. Enumerates, via
/// the compiled plan, every instance of `p` in `g` owning at least one
/// of `seed_edges`, and returns per-instance anchor counts identical to
/// `counts_of_instances(edge_seeded_instances(g, p, seed_edges))`.
fn anchored_counts(
    g: &Graph,
    p: &PatternInfo,
    plan: &ExtensionPlan,
    seed_edges: &[(NodeId, NodeId)],
    stats: &mut MatchStats,
) -> AnchorCounts {
    if seed_edges.is_empty() || plan.anchored.is_empty() {
        return AnchorCounts::default();
    }
    let changed: FxHashSet<u64> = seed_edges.iter().map(|&(a, b)| pack_pair(a, b)).collect();
    let mut assign = vec![NodeId(0); p.n_nodes()];
    let mut used = vec![false; g.n_nodes()];
    let n_levels = p.n_nodes().saturating_sub(2);
    let mut scratch = vec![LevelScratch::default(); n_levels];
    let mut raw = RawCounts::default();
    for ap in &plan.anchored {
        // One batched prefix-extension run per anchored pattern edge:
        // every changed edge (both orientations) extends through the
        // same plan and scratch.
        for &(a, b) in seed_edges {
            for (x, y) in [(a, b), (b, a)] {
                if g.node_type(x) != ap.tu || g.node_type(y) != ap.tv {
                    continue;
                }
                debug_assert!(g.has_edge(x, y), "seed edge absent from its graph");
                let anchor_key = pack_pair(x, y);
                assign[ap.u] = x;
                assign[ap.v] = y;
                used[x.index()] = true;
                used[y.index()] = true;
                extend(
                    g,
                    p,
                    &ap.levels,
                    0,
                    &changed,
                    anchor_key,
                    &mut assign,
                    &mut used,
                    &mut scratch,
                    stats,
                    &mut raw,
                );
                used[x.index()] = false;
                used[y.index()] = false;
            }
        }
    }
    let counts = raw.finish(plan.aut);
    stats.instances += counts.n_instances;
    counts
}

/// wcoj equivalent of [`crate::delta::delta_anchor_counts`]: anchor
/// counts of the instances created by inserting `new_edges` (`g` is the
/// *post*-insertion graph). `new_nodes` matters only for edgeless
/// single-node patterns, exactly as in the oracle.
pub fn wcoj_delta_anchor_counts(
    g: &Graph,
    p: &PatternInfo,
    plan: &ExtensionPlan,
    new_edges: &[(NodeId, NodeId)],
    new_nodes: &[NodeId],
    stats: &mut MatchStats,
) -> AnchorCounts {
    let m = &p.metagraph;
    if m.edges().is_empty() {
        let mut counts = AnchorCounts::default();
        if m.n_nodes() == 1 {
            counts.n_instances = new_nodes
                .iter()
                .filter(|&&x| g.node_type(x) == m.node_type(0))
                .count() as u64;
        }
        stats.instances += counts.n_instances;
        return counts;
    }
    anchored_counts(g, p, plan, new_edges, stats)
}

/// wcoj equivalent of [`crate::delta::doomed_anchor_counts`]: anchor
/// counts of the instances destroyed by removing `removed_edges`,
/// extended over the **pre**-delete graph (where they still exist).
pub fn wcoj_doomed_anchor_counts(
    g_pre: &Graph,
    p: &PatternInfo,
    plan: &ExtensionPlan,
    removed_edges: &[(NodeId, NodeId)],
    stats: &mut MatchStats,
) -> AnchorCounts {
    if p.metagraph.edges().is_empty() {
        return AnchorCounts::default();
    }
    anchored_counts(g_pre, p, plan, removed_edges, stats)
}

/// The symmetric delta rule through the wcoj matcher — the drop-in
/// replacement for [`crate::delta::delta_count_changes`], returning the
/// same `MatchDelta` bit for bit plus the run's [`MatchStats`]. Doomed
/// instances extend over `g_pre` seeded at `removed_edges`; new
/// instances over `g_post` seeded at `new_edges`; accumulation order
/// (doomed −1, then fresh +1) matches the oracle exactly.
pub fn wcoj_count_changes(
    g_pre: &Graph,
    g_post: &Graph,
    p: &PatternInfo,
    plan: &ExtensionPlan,
    removed_edges: &[(NodeId, NodeId)],
    new_edges: &[(NodeId, NodeId)],
    new_nodes: &[NodeId],
) -> (MatchDelta, MatchStats) {
    let mut stats = MatchStats::default();
    let mut out = MatchDelta::default();
    if !removed_edges.is_empty() {
        let doomed = wcoj_doomed_anchor_counts(g_pre, p, plan, removed_edges, &mut stats);
        out.doomed_instances = doomed.n_instances;
        out.changes.accumulate(&doomed, -1);
    }
    let fresh = wcoj_delta_anchor_counts(g_post, p, plan, new_edges, new_nodes, &mut stats);
    out.new_instances = fresh.n_instances;
    out.changes.accumulate(&fresh, 1);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::anchor_counts;
    use crate::delta::{delta_anchor_counts, delta_count_changes, doomed_anchor_counts};
    use crate::SymIso;
    use mgp_graph::{GraphBuilder, GraphDelta, GraphExtension, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);
    const M: TypeId = TypeId(2);

    /// Same campus fixture as `crate::delta`'s tests — two schools, one
    /// major, six users.
    fn campus() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s1 = b.add_node(school, "s1");
        let s2 = b.add_node(school, "s2");
        let m1 = b.add_node(major, "m1");
        for i in 0..6 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, if i < 3 { s1 } else { s2 }).unwrap();
            if i % 2 == 0 {
                b.add_edge(u, m1).unwrap();
            }
        }
        b.build()
    }

    fn patterns() -> Vec<PatternInfo> {
        vec![
            PatternInfo::new(
                Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, M, U], &[(0, 1), (1, 2)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, U, S, M], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap(),
                U,
            ),
            PatternInfo::new(
                Metagraph::from_edges(&[U, S, U, M, U], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap(),
                U,
            ),
        ]
    }

    /// The central contract: wcoj produces bit-identical `MatchDelta`s
    /// to the seeded oracle on every pattern, and applying them to the
    /// old counts equals a fresh rematch.
    fn assert_matches_oracle(g_old: &Graph, delta: &GraphDelta) -> MatchStats {
        let ext: GraphExtension = g_old.apply_delta(delta).unwrap();
        let mut total = MatchStats::default();
        for p in patterns() {
            let plan = ExtensionPlan::compile(&p, g_old);
            let oracle = delta_count_changes(
                g_old,
                &ext.graph,
                &p,
                &ext.removed_edges,
                &ext.new_edges,
                &ext.new_nodes,
            );
            let (got, stats) = wcoj_count_changes(
                g_old,
                &ext.graph,
                &p,
                &plan,
                &ext.removed_edges,
                &ext.new_edges,
                &ext.new_nodes,
            );
            assert_eq!(
                got.changes,
                oracle.changes,
                "pattern {}",
                p.metagraph.brief()
            );
            assert_eq!(got.new_instances, oracle.new_instances);
            assert_eq!(got.doomed_instances, oracle.doomed_instances);
            assert_eq!(stats.instances, got.new_instances + got.doomed_instances);

            let mut old = anchor_counts(&SymIso::new(), g_old, &p);
            got.changes.apply_to(&mut old);
            let full = anchor_counts(&SymIso::new(), &ext.graph, &p);
            assert_eq!(old, full, "pattern {}", p.metagraph.brief());
            total += stats;
        }
        total
    }

    #[test]
    fn single_edge_insertion_matches_oracle() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        d.add_edge(NodeId(8), NodeId(2)).unwrap();
        assert_matches_oracle(&g, &d);
    }

    #[test]
    fn overlapping_insertions_use_ownership_not_hashing() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // u1 joins s2 and u2 joins s2: shared-school instances using BOTH
        // new edges exist, so the ownership rule must fire.
        d.add_edge(NodeId(4), NodeId(1)).unwrap();
        d.add_edge(NodeId(1), NodeId(5)).unwrap();
        let stats = assert_matches_oracle(&g, &d);
        assert!(
            stats.dedup_suppressed > 0,
            "overlapping batch must exercise the ownership rule"
        );
    }

    #[test]
    fn removal_storm_matches_oracle() {
        let g = campus();
        let mut d = GraphDelta::for_graph(&g);
        // Detach a whole hub-ish node: all of s1's user edges die at once.
        d.remove_node(NodeId(0)).unwrap();
        let stats = assert_matches_oracle(&g, &d);
        assert!(stats.dedup_suppressed > 0);
    }

    #[test]
    fn mixed_batch_matches_oracle() {
        let g = campus();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        d.add_edge(NodeId(8), NodeId(2)).unwrap();
        d.remove_edge(NodeId(3), NodeId(0)).unwrap();
        let nu = d.add_node(user, "u-new");
        d.add_edge(nu, NodeId(1)).unwrap();
        assert_matches_oracle(&g, &d);
    }

    #[test]
    fn dense_pattern_intersects() {
        // The double-joint pattern U-U-S-M has a level bound by two
        // pattern edges — the propose/intersect path proper.
        let g = campus();
        let p = PatternInfo::new(
            Metagraph::from_edges(&[U, U, S, M], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap(),
            U,
        );
        let plan = ExtensionPlan::compile(&p, &g);
        let mut d = GraphDelta::for_graph(&g);
        d.add_edge(NodeId(4), NodeId(2)).unwrap(); // u1 joins m1
        let ext = g.apply_delta(&d).unwrap();
        let mut stats = MatchStats::default();
        let got = wcoj_delta_anchor_counts(
            &ext.graph,
            &p,
            &plan,
            &ext.new_edges,
            &ext.new_nodes,
            &mut stats,
        );
        let oracle = delta_anchor_counts(&ext.graph, &p, &ext.new_edges, &ext.new_nodes);
        assert_eq!(got, oracle);
        assert!(stats.intersections > 0, "a 2-bound level must intersect");
        assert!(stats.proposals > 0);
    }

    #[test]
    fn doomed_side_extends_over_pre_delete_graph() {
        let g = campus();
        let p = &patterns()[0];
        let plan = ExtensionPlan::compile(p, &g);
        let mut d = GraphDelta::for_graph(&g);
        d.remove_edge(NodeId(3), NodeId(0)).unwrap();
        d.remove_edge(NodeId(5), NodeId(0)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        let mut stats = MatchStats::default();
        let got = wcoj_doomed_anchor_counts(&g, p, &plan, &ext.removed_edges, &mut stats);
        let oracle = doomed_anchor_counts(&g, p, &ext.removed_edges);
        assert_eq!(got, oracle);
        assert!(got.n_instances > 0);
    }

    #[test]
    fn edgeless_single_node_pattern_counts_new_nodes() {
        let g = campus();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        d.add_node(user, "a");
        d.add_node(S, "b");
        let ext = g.apply_delta(&d).unwrap();
        let p = PatternInfo::new(Metagraph::new(&[U]).unwrap(), U);
        let plan = ExtensionPlan::compile(&p, &g);
        let mut stats = MatchStats::default();
        let got = wcoj_delta_anchor_counts(
            &ext.graph,
            &p,
            &plan,
            &ext.new_edges,
            &ext.new_nodes,
            &mut stats,
        );
        assert_eq!(got.n_instances, 1);
        assert_eq!(stats.instances, 1);
        assert_eq!(
            wcoj_doomed_anchor_counts(&g, &p, &plan, &[], &mut stats),
            AnchorCounts::default()
        );
    }

    #[test]
    fn empty_batch_is_empty_and_cheap() {
        let g = campus();
        for p in patterns() {
            let plan = ExtensionPlan::compile(&p, &g);
            let (got, stats) = wcoj_count_changes(&g, &g, &p, &plan, &[], &[], &[]);
            assert!(got.is_empty());
            assert_eq!(stats, MatchStats::default());
        }
    }

    #[test]
    fn hub_star_storm_matches_oracle() {
        // Build a hub school with many users, then drop it in one delta
        // — the workload the prefix-extension batching targets. Counts
        // must match the oracle in both directions.
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        b.add_type("major");
        let hub = b.add_node(school, "hub");
        for i in 0..40 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, hub).unwrap();
        }
        let g = b.build();
        let mut d = GraphDelta::for_graph(&g);
        d.remove_node(hub).unwrap();
        let stats = assert_matches_oracle(&g, &d);
        // Every u-hub-u instance has two changed edges; ownership must
        // have suppressed roughly half the anchored extensions.
        assert!(stats.dedup_suppressed > 0);
    }

    #[test]
    fn stats_aggregate_and_display() {
        let mut a = MatchStats {
            proposals: 1,
            intersections: 2,
            extensions: 3,
            instances: 4,
            dedup_suppressed: 5,
        };
        a += a;
        assert_eq!(a.proposals, 2);
        assert_eq!(a.dedup_suppressed, 10);
        let shown = a.to_string();
        for needle in ["proposals 2", "intersections 4", "dedup-suppressed 10"] {
            assert!(shown.contains(needle), "{shown}");
        }
    }
}

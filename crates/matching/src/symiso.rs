//! SymISO: symmetry-based metagraph matching (Sect. IV-C, Alg. 2–3).
//!
//! SymISO exploits the symmetry of metagraphs in two ways that the
//! node-at-a-time baselines cannot:
//!
//! 1. **Candidate reuse.** The pattern is decomposed into *blocks* of
//!    mutually symmetric components ([`mgp_metagraph::Decomposition`]).
//!    Because every mirror component is the image of the block's
//!    representative under an automorphism that fixes the rest of the
//!    pattern, the candidate matchings `C(S|D)` computed for the
//!    representative are verbatim valid for every mirror — they are computed
//!    **once** per block instead of once per component.
//!
//! 2. **Combination enumeration.** Assigning an unordered *combination* of
//!    `|B|` distinct candidate matchings to a block's components (in
//!    canonical sorted order) enumerates one assignment per instance rather
//!    than one per embedding: the `|B|!` permutations that baselines grind
//!    through are never generated. A residual factor `r ≥ 1` remains for
//!    patterns whose symmetry is not block-local (see the decomposition
//!    docs); [`crate::Matcher::multiplicity`] reports it so counts stay
//!    exact.
//!
//! The block matching order uses the paper's estimated-instance heuristic;
//! the SymISO-R ablation (Fig. 11) replaces it with a seeded random order.

use crate::order::{block_order, random_block_order};
use crate::pattern::PatternInfo;
use crate::Matcher;
use mgp_graph::{Graph, NodeId};
use mgp_metagraph::Component;

/// Block ordering policy for SymISO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// The paper's estimated-instance heuristic (default).
    Estimated,
    /// Seeded random order — the SymISO-R ablation.
    Random(u64),
}

/// The symmetry-based matcher.
#[derive(Debug, Clone, Copy)]
pub struct SymIso {
    /// How to order blocks during matching.
    pub order: OrderPolicy,
}

impl Default for SymIso {
    fn default() -> Self {
        SymIso {
            order: OrderPolicy::Estimated,
        }
    }
}

impl SymIso {
    /// SymISO with the estimated-instance block order.
    pub fn new() -> Self {
        Self::default()
    }

    /// SymISO-R: random block order (ablation of the order heuristic).
    pub fn random_order(seed: u64) -> Self {
        SymIso {
            order: OrderPolicy::Random(seed),
        }
    }
}

impl Matcher for SymIso {
    fn name(&self) -> &'static str {
        match self.order {
            OrderPolicy::Estimated => "SymISO",
            OrderPolicy::Random(_) => "SymISO-R",
        }
    }

    fn enumerate(&self, g: &Graph, p: &PatternInfo, visit: &mut dyn FnMut(&[NodeId]) -> bool) {
        let n = p.n_nodes();
        if n == 0 {
            return;
        }
        let border = match self.order {
            OrderPolicy::Estimated => block_order(g, p),
            OrderPolicy::Random(seed) => random_block_order(p, seed),
        };
        let cross_edges: Vec<Vec<CrossEdge>> = p
            .decomposition
            .blocks
            .iter()
            .map(|b| block_cross_edges(p, &b.components))
            .collect();
        let mut st = State {
            g,
            p,
            border: &border,
            cross_edges: &cross_edges,
            assign: vec![NodeId(0); n],
            matched_mask: 0,
            used: vec![false; g.n_nodes()],
        };
        match_blocks(&mut st, 0, visit);
    }

    fn multiplicity(&self, p: &PatternInfo) -> u64 {
        p.residual_factor()
    }
}

/// A required pattern edge between two components of the same block:
/// `(component index a, position in a, component index b, position in b)`.
type CrossEdge = (usize, usize, usize, usize);

fn block_cross_edges(p: &PatternInfo, comps: &[Component]) -> Vec<CrossEdge> {
    let m = &p.metagraph;
    let mut out = Vec::new();
    for ci in 0..comps.len() {
        for cj in (ci + 1)..comps.len() {
            for (ai, &ua) in comps[ci].nodes.iter().enumerate() {
                for (bi, &ub) in comps[cj].nodes.iter().enumerate() {
                    if m.has_edge(ua as usize, ub as usize) {
                        out.push((ci, ai, cj, bi));
                    }
                }
            }
        }
    }
    out
}

struct State<'a> {
    g: &'a Graph,
    p: &'a PatternInfo,
    border: &'a [usize],
    cross_edges: &'a [Vec<CrossEdge>],
    assign: Vec<NodeId>,
    matched_mask: u16,
    used: Vec<bool>,
}

/// Recursive block-at-a-time matching (Alg. 3). Returns `false` when the
/// visitor aborted.
fn match_blocks(st: &mut State<'_>, k: usize, visit: &mut dyn FnMut(&[NodeId]) -> bool) -> bool {
    if k == st.border.len() {
        return visit(&st.assign);
    }
    let block_idx = st.border[k];
    let block = &st.p.decomposition.blocks[block_idx];
    let rep = &block.components[0];
    let width = block.width();

    if width == 1 {
        // No mirrors to reuse candidates for: descend node-at-a-time
        // without materialising C(S|D) (the common case — every
        // asymmetric node is a width-1 block).
        return inline_descend(st, block_idx, 0, k, visit);
    }

    // C(S|D) for the representative component — computed once per block
    // and reused for every mirror.
    let mut cands = component_matchings(st, rep);
    if cands.len() < width {
        return true; // dead end, backtrack
    }

    // Canonical order: combinations are assigned to components in sorted
    // order, enumerating one representative per block-symmetry coset.
    cands.sort_unstable();
    let mut chosen: Vec<usize> = Vec::with_capacity(width);
    choose(st, k, block_idx, &cands, 0, &mut chosen, visit)
}

/// Chooses `width` pairwise-disjoint candidate matchings (indices ascending)
/// and recurses.
#[allow(clippy::too_many_arguments)]
fn choose(
    st: &mut State<'_>,
    k: usize,
    block_idx: usize,
    cands: &[Vec<NodeId>],
    start: usize,
    chosen: &mut Vec<usize>,
    visit: &mut dyn FnMut(&[NodeId]) -> bool,
) -> bool {
    let block = &st.p.decomposition.blocks[block_idx];
    let width = block.width();
    if chosen.len() == width {
        // Cross-component edges within the block (Def. 2 connectivity).
        let ok = st.cross_edges[block_idx]
            .iter()
            .all(|&(ci, ai, cj, bi)| st.g.has_edge(cands[chosen[ci]][ai], cands[chosen[cj]][bi]));
        if !ok {
            return true;
        }
        for (c, &mi) in block.components.iter().zip(chosen.iter()) {
            apply_raw(
                &mut st.assign,
                &mut st.matched_mask,
                &mut st.used,
                c,
                &cands[mi],
            );
        }
        let keep = match_blocks(st, k + 1, visit);
        for (c, &mi) in block.components.iter().zip(chosen.iter()) {
            unapply_raw(&mut st.matched_mask, &mut st.used, c, &cands[mi]);
        }
        return keep;
    }
    let remaining = width - chosen.len();
    if start + remaining > cands.len() {
        return true;
    }
    for i in start..=(cands.len() - remaining) {
        // Disjointness with previously chosen matchings.
        let disjoint = chosen
            .iter()
            .all(|&j| cands[j].iter().all(|v| !cands[i].contains(v)));
        if !disjoint {
            continue;
        }
        chosen.push(i);
        let keep = choose(st, k, block_idx, cands, i + 1, chosen, visit);
        chosen.pop();
        if !keep {
            return false;
        }
    }
    true
}

/// Streams the matchings of a width-1 block's component directly into the
/// continuation, assigning node-at-a-time like the baseline engine —
/// avoiding the `Vec<Vec<NodeId>>` materialisation that candidate *reuse*
/// requires for wider blocks. Returns `false` when the visitor aborted.
fn inline_descend(
    st: &mut State<'_>,
    block_idx: usize,
    idx: usize,
    k: usize,
    visit: &mut dyn FnMut(&[NodeId]) -> bool,
) -> bool {
    let comp = &st.p.decomposition.blocks[block_idx].components[0];
    if idx == comp.nodes.len() {
        return match_blocks(st, k + 1, visit);
    }
    let g = st.g;
    let m = &st.p.metagraph;
    let u = comp.nodes[idx] as usize;
    let ty = m.node_type(u);

    // Earlier component nodes already carry their matched_mask bits, so a
    // single mask scan finds every constraining image.
    let mut pivot: Option<NodeId> = None;
    let mut constraints: Vec<NodeId> = Vec::new();
    for w in m.neighbors(u) {
        if st.matched_mask & (1 << w) != 0 {
            let img = st.assign[w];
            constraints.push(img);
            if pivot.is_none_or(|pv| g.degree(img) < g.degree(pv)) {
                pivot = Some(img);
            }
        }
    }
    let candidates: &[NodeId] = match pivot {
        Some(pv) => g.neighbors_of_type(pv, ty),
        None => g.nodes_of_type(ty),
    };

    'cand: for &v in candidates {
        if st.used[v.index()] {
            continue;
        }
        for &c in &constraints {
            if !g.has_edge(v, c) {
                continue 'cand;
            }
        }
        st.assign[u] = v;
        st.used[v.index()] = true;
        st.matched_mask |= 1 << u;
        let keep = inline_descend(st, block_idx, idx + 1, k, visit);
        st.matched_mask &= !(1 << u);
        st.used[v.index()] = false;
        if !keep {
            return false;
        }
    }
    true
}

/// Computes `C(S|D)`: every injective assignment of the component's nodes
/// consistent with the pattern's internal and D-incident edges.
fn component_matchings(st: &State<'_>, comp: &Component) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut partial: Vec<NodeId> = Vec::with_capacity(comp.nodes.len());
    component_descend(st, comp, 0, &mut partial, &mut out);
    out
}

fn component_descend(
    st: &State<'_>,
    comp: &Component,
    idx: usize,
    partial: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    if idx == comp.nodes.len() {
        out.push(partial.clone());
        return;
    }
    let g = st.g;
    let m = &st.p.metagraph;
    let u = comp.nodes[idx] as usize;
    let ty = m.node_type(u);

    // Pattern neighbours of u that already have images: matched blocks (D)
    // plus earlier nodes of this component.
    let mut pivot: Option<NodeId> = None;
    let mut constraints: Vec<NodeId> = Vec::new();
    for w in m.neighbors(u) {
        let img = if st.matched_mask & (1 << w) != 0 {
            Some(st.assign[w])
        } else {
            comp.nodes[..idx]
                .iter()
                .position(|&cw| cw as usize == w)
                .map(|pos| partial[pos])
        };
        if let Some(img) = img {
            constraints.push(img);
            if pivot.is_none_or(|pv| g.degree(img) < g.degree(pv)) {
                pivot = Some(img);
            }
        }
    }

    let candidates: &[NodeId] = match pivot {
        Some(pv) => g.neighbors_of_type(pv, ty),
        None => g.nodes_of_type(ty),
    };

    'cand: for &v in candidates {
        if st.used[v.index()] || partial.contains(&v) {
            continue;
        }
        for &c in &constraints {
            if !g.has_edge(v, c) {
                continue 'cand;
            }
        }
        partial.push(v);
        component_descend(st, comp, idx + 1, partial, out);
        partial.pop();
    }
}

fn apply_raw(
    assign: &mut [NodeId],
    matched_mask: &mut u16,
    used: &mut [bool],
    comp: &Component,
    matching: &[NodeId],
) {
    for (&u, &v) in comp.nodes.iter().zip(matching) {
        assign[u as usize] = v;
        used[v.index()] = true;
    }
    *matched_mask |= comp.mask;
}

fn unapply_raw(matched_mask: &mut u16, used: &mut [bool], comp: &Component, matching: &[NodeId]) {
    for &v in matching {
        used[v.index()] = false;
    }
    *matched_mask &= !comp.mask;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);
    const M: TypeId = TypeId(2);

    fn star_graph(n_users: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let s = b.add_node(school, "s");
        for i in 0..n_users {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
        }
        b.build()
    }

    #[test]
    fn enumerates_instances_not_embeddings() {
        let g = star_graph(4);
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let mut n = 0u64;
        SymIso::new().enumerate(&g, &p, &mut |a| {
            assert!(g.has_edge(a[0], a[1]) && g.has_edge(a[1], a[2]));
            n += 1;
            true
        });
        // C(4,2) = 6 instances (QuickSI would visit 12 embeddings).
        assert_eq!(n, 6);
        assert_eq!(SymIso::new().multiplicity(&p), 1);
    }

    #[test]
    fn matches_m1_pattern_with_paired_singletons() {
        // 3 users sharing school s and major m; 1 user sharing only school.
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s = b.add_node(school, "s");
        let mj = b.add_node(major, "m");
        for i in 0..4 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
            if i < 3 {
                b.add_edge(u, mj).unwrap();
            }
        }
        let g = b.build();
        let m1 = Metagraph::from_edges(&[U, U, S, M], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap();
        let p = PatternInfo::new(m1, U);
        let mut n = 0u64;
        SymIso::new().enumerate(&g, &p, &mut |_| {
            n += 1;
            true
        });
        // 3 users share both attrs: C(3,2) = 3 instances.
        assert_eq!(n, 3);
    }

    #[test]
    fn wing_components_reuse() {
        // Pattern: user-major wings around a school (M5-like, 6 nodes).
        // Graph: school with 3 (user,major) wings and a middle user.
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s = b.add_node(school, "s");
        let mid = b.add_node(user, "mid");
        b.add_edge(mid, s).unwrap();
        let mut wings = Vec::new();
        for i in 0..3 {
            let u = b.add_node(user, format!("wu{i}"));
            let mj = b.add_node(major, format!("wm{i}"));
            b.add_edge(u, s).unwrap();
            b.add_edge(u, mj).unwrap();
            b.add_edge(mj, mid).unwrap();
            wings.push((u, mj));
        }
        let g = b.build();
        // Pattern from the decompose tests: users 0/4 + majors 1/5 wings,
        // school 2, middle user 3.
        let m5 = Metagraph::from_edges(
            &[U, M, S, U, U, M],
            &[(0, 1), (0, 2), (3, 2), (4, 2), (4, 5), (1, 3), (5, 3)],
        )
        .unwrap();
        let p = PatternInfo::new(m5, U);
        assert!(p.decomposition.has_reuse());
        let mut n = 0u64;
        SymIso::new().enumerate(&g, &p, &mut |_| {
            n += 1;
            true
        });
        // Choose 2 of 3 wings: C(3,2) = 3 instances.
        assert_eq!(n, 3);
    }

    #[test]
    fn symiso_r_same_results() {
        let g = star_graph(5);
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        for seed in [1u64, 42, 999] {
            let mut n = 0u64;
            SymIso::random_order(seed).enumerate(&g, &p, &mut |_| {
                n += 1;
                true
            });
            assert_eq!(n, 10); // C(5,2)
        }
    }

    #[test]
    fn visitor_abort_propagates() {
        let g = star_graph(6);
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let mut n = 0u64;
        SymIso::new().enumerate(&g, &p, &mut |_| {
            n += 1;
            n < 3
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn no_instances_on_mismatched_graph() {
        let g = star_graph(1);
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let mut n = 0u64;
        SymIso::new().enumerate(&g, &p, &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn triangle_block_of_three_components() {
        // Graph: clique of 4 users. Pattern: triangle of users.
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let us: Vec<_> = (0..4).map(|i| b.add_node(user, format!("u{i}"))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(us[i], us[j]).unwrap();
            }
        }
        let g = b.build();
        let tri = Metagraph::from_edges(&[U, U, U], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let p = PatternInfo::new(tri, U);
        let mut n = 0u64;
        SymIso::new().enumerate(&g, &p, &mut |a| {
            // Cross-component edges must hold.
            assert!(g.has_edge(a[0], a[1]) && g.has_edge(a[1], a[2]) && g.has_edge(a[0], a[2]));
            n += 1;
            true
        });
        // C(4,3) = 4 triangles, each enumerated once.
        assert_eq!(n, 4);
    }
}

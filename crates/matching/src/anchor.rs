//! Anchor co-occurrence counting: the raw material of the metagraph
//! vectors `m_x` and `m_xy` (Eq. 1–2).
//!
//! For a metagraph `Mᵢ` with symmetric anchor positions, each instance `S`
//! contributes:
//!
//! * `m_xy[i] += 1` for every unordered anchor pair `{x, y}` occupying
//!   symmetric positions of `S` (`ContainsSym(S, x, y)`),
//! * `m_x[i] += 1` for every anchor node `x` occupying a symmetric anchor
//!   position of `S` (paired with *some* other anchor).
//!
//! The pair set of an instance is invariant under the pattern's
//! automorphisms (conjugation maps symmetric pairs to symmetric pairs), so
//! any matcher can feed this accumulator: every instance is visited exactly
//! `multiplicity` times with identical contributions, and the totals are
//! divided once at the end.

use crate::pattern::PatternInfo;
use crate::Matcher;
use mgp_graph::ids::pack_pair;
use mgp_graph::{FxHashMap, Graph, NodeId};

/// Per-metagraph anchor counts: the `i`-th coordinates of all `m_x` and
/// `m_xy` vectors at once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnchorCounts {
    /// `x → m_x[i]` (only anchors appearing in some symmetric pair).
    pub per_node: FxHashMap<u32, u64>,
    /// `pack_pair(x, y) → m_xy[i]`.
    pub per_pair: FxHashMap<u64, u64>,
    /// `|I(Mᵢ)|` — number of instances seen.
    pub n_instances: u64,
}

impl AnchorCounts {
    /// `m_x[i]` for a node (0 when absent).
    pub fn node_count(&self, x: NodeId) -> u64 {
        self.per_node.get(&x.0).copied().unwrap_or(0)
    }

    /// `m_xy[i]` for an unordered pair (0 when absent).
    pub fn pair_count(&self, x: NodeId, y: NodeId) -> u64 {
        self.per_pair.get(&pack_pair(x, y)).copied().unwrap_or(0)
    }
}

/// Derives one visit's (equivalently, one instance's) contribution keys:
/// each distinct symmetric anchor pair of the assignment once, each
/// distinct participating node once, into the caller-owned `pair_buf` /
/// `node_buf` scratch. Shared by every accumulation path — the full
/// matchers, the seeded delta oracle, and the wcoj delta matcher — so
/// their per-visit semantics can never drift apart; bit-identical counts
/// are the incremental pipeline's contract.
pub(crate) fn visit_keys(
    assign: &[NodeId],
    p: &PatternInfo,
    pair_buf: &mut Vec<u64>,
    node_buf: &mut Vec<u32>,
) {
    pair_buf.clear();
    node_buf.clear();
    for &(u, v) in &p.anchor_pairs {
        let (x, y) = (assign[u], assign[v]);
        let key = pack_pair(x, y);
        if !pair_buf.contains(&key) {
            pair_buf.push(key);
        }
        for n in [x.0, y.0] {
            if !node_buf.contains(&n) {
                node_buf.push(n);
            }
        }
    }
}

/// Adds one visit's contribution ([`visit_keys`]) straight to the count
/// maps — the accumulation mode of the full matcher path
/// ([`anchor_counts`]) and the seeded delta path (`crate::delta`). The
/// wcoj matcher instead buffers the same keys and merges once per batch
/// (`crate::wcoj`); the sums are exact integers either way.
pub(crate) fn accumulate_contribution(
    assign: &[NodeId],
    p: &PatternInfo,
    pair_buf: &mut Vec<u64>,
    node_buf: &mut Vec<u32>,
    per_node: &mut FxHashMap<u32, u64>,
    per_pair: &mut FxHashMap<u64, u64>,
) {
    visit_keys(assign, p, pair_buf, node_buf);
    for &key in pair_buf.iter() {
        *per_pair.entry(key).or_insert(0) += 1;
    }
    for &n in node_buf.iter() {
        *per_node.entry(n).or_insert(0) += 1;
    }
}

/// Matches `p` on `g` with `matcher` and accumulates anchor counts.
pub fn anchor_counts(matcher: &dyn Matcher, g: &Graph, p: &PatternInfo) -> AnchorCounts {
    let mut per_node: FxHashMap<u32, u64> = FxHashMap::default();
    let mut per_pair: FxHashMap<u64, u64> = FxHashMap::default();
    let mut visits = 0u64;
    let mut pair_buf: Vec<u64> = Vec::with_capacity(p.anchor_pairs.len());
    let mut node_buf: Vec<u32> = Vec::with_capacity(2 * p.anchor_pairs.len());

    matcher.enumerate(g, p, &mut |assign| {
        visits += 1;
        accumulate_contribution(
            assign,
            p,
            &mut pair_buf,
            &mut node_buf,
            &mut per_node,
            &mut per_pair,
        );
        true
    });

    let mult = matcher.multiplicity(p).max(1);
    if mult > 1 {
        for v in per_node.values_mut() {
            debug_assert_eq!(*v % mult, 0);
            *v /= mult;
        }
        for v in per_pair.values_mut() {
            debug_assert_eq!(*v % mult, 0);
            *v /= mult;
        }
        debug_assert_eq!(visits % mult, 0);
    }
    AnchorCounts {
        per_node,
        per_pair,
        n_instances: visits / mult,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuickSi, SymIso};
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);

    fn star(n: usize) -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let s = b.add_node(school, "s");
        let users: Vec<NodeId> = (0..n)
            .map(|i| {
                let u = b.add_node(user, format!("u{i}"));
                b.add_edge(u, s).unwrap();
                u
            })
            .collect();
        (b.build(), users)
    }

    #[test]
    fn pair_and_node_counts_on_star() {
        let (g, users) = star(3);
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let c = anchor_counts(&SymIso::new(), &g, &p);
        assert_eq!(c.n_instances, 3); // C(3,2)
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(c.pair_count(users[i], users[j]), 1);
            }
            // each user participates in 2 instances
            assert_eq!(c.node_count(users[i]), 2);
        }
    }

    #[test]
    fn baseline_counts_match_symiso() {
        let (g, _) = star(5);
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let a = anchor_counts(&SymIso::new(), &g, &p);
        let b = anchor_counts(&QuickSi, &g, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn asymmetric_pattern_contributes_nothing() {
        let (g, _) = star(3);
        let m = Metagraph::from_edges(&[U, S], &[(0, 1)]).unwrap();
        let p = PatternInfo::new(m, U);
        let c = anchor_counts(&SymIso::new(), &g, &p);
        assert!(c.per_pair.is_empty());
        assert!(c.per_node.is_empty());
        assert_eq!(c.n_instances, 3); // instances exist, just no anchor pairs
    }

    #[test]
    fn mxy_bounded_by_mx() {
        let (g, users) = star(4);
        let m = Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap();
        let p = PatternInfo::new(m, U);
        let c = anchor_counts(&SymIso::new(), &g, &p);
        for &x in &users {
            for &y in &users {
                if x < y {
                    assert!(c.pair_count(x, y) <= c.node_count(x));
                    assert!(c.pair_count(x, y) <= c.node_count(y));
                }
            }
        }
    }
}

//! Property-based tests of the miner on random campus-style graphs.

use mgp_graph::{Graph, GraphBuilder, TypeId};
use mgp_metagraph::{CanonicalCode, SymmetryInfo};
use mgp_mining::{mine, MinerConfig};
use proptest::prelude::*;

const USER: TypeId = TypeId(0);

/// Random tripartite graph: users wired to schools and majors by seed bits.
fn random_campus(n_users: usize, n_schools: usize, n_majors: usize, bits: &[bool]) -> Graph {
    let mut b = GraphBuilder::new();
    let user = b.add_type("user");
    let school = b.add_type("school");
    let major = b.add_type("major");
    let schools: Vec<_> = (0..n_schools)
        .map(|i| b.add_node(school, format!("s{i}")))
        .collect();
    let majors: Vec<_> = (0..n_majors)
        .map(|i| b.add_node(major, format!("m{i}")))
        .collect();
    let mut bit = 0usize;
    let mut next = |def: bool| {
        let v = bits.get(bit).copied().unwrap_or(def);
        bit += 1;
        v
    };
    for i in 0..n_users {
        let u = b.add_node(user, format!("u{i}"));
        // Guarantee one school edge; others optional.
        b.add_edge(u, schools[i % n_schools]).unwrap();
        if next(false) {
            b.add_edge(u, schools[(i + 1) % n_schools]).unwrap();
        }
        if next(true) {
            b.add_edge(u, majors[i % n_majors]).unwrap();
        }
        if next(false) {
            b.add_edge(u, majors[(i + 3) % n_majors]).unwrap();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn miner_output_is_valid_and_deterministic(
        n_users in 6usize..14,
        n_schools in 2usize..4,
        n_majors in 2usize..4,
        bits in prop::collection::vec(any::<bool>(), 64),
        support in 2u64..5,
    ) {
        let g = random_campus(n_users, n_schools, n_majors, &bits);
        let mut cfg = MinerConfig::paper_defaults(USER, support);
        cfg.max_patterns = Some(50);
        let a = mine(&g, &cfg);
        let b = mine(&g, &cfg);
        prop_assert_eq!(&a, &b, "mining not deterministic");

        let mut codes = std::collections::BTreeSet::new();
        for mm in &a {
            let m = &mm.metagraph;
            prop_assert!(m.is_connected());
            prop_assert!(m.n_nodes() <= cfg.max_nodes);
            prop_assert!(m.count_type(USER) >= cfg.min_anchor_nodes);
            prop_assert!(m.count_type(USER) < m.n_nodes());
            let info = SymmetryInfo::compute(m);
            prop_assert!(!info.anchor_pairs(m, USER).is_empty());
            prop_assert!(codes.insert(CanonicalCode::of(m)), "duplicate pattern");
        }
    }

    #[test]
    fn higher_support_mines_subset(
        n_users in 8usize..14,
        bits in prop::collection::vec(any::<bool>(), 64),
    ) {
        let g = random_campus(n_users, 2, 2, &bits);
        let mk = |support| {
            let mut cfg = MinerConfig::paper_defaults(USER, support);
            cfg.max_patterns = None;
            let mut codes: Vec<CanonicalCode> = mine(&g, &cfg)
                .into_iter()
                .map(|m| CanonicalCode::of(&m.metagraph))
                .collect();
            codes.sort();
            codes
        };
        let low = mk(2);
        let high = mk(4);
        // MNI is anti-monotone, so the high-support result is a subset of
        // the low-support result.
        for c in &high {
            prop_assert!(low.contains(c), "high-support pattern missing at low support");
        }
    }
}

//! MNI (minimum image) support evaluation.
//!
//! The MNI support of a pattern is `min_u |{v ∈ V : some embedding maps
//! pattern node u to v}|` — the size of the smallest per-node image set.
//! It is anti-monotone under pattern extension, which is what makes
//! support-threshold pruning sound on a single graph (GRAMI's measure).
//!
//! Evaluation enumerates embeddings with the shared backtracking engine and
//! two kinds of early exit:
//!
//! * **success**: every image set has reached the threshold → `Frequent`
//!   (the exact support is not needed for pruning);
//! * **budget**: the embedding budget is exhausted before the verdict is
//!   certain → `BudgetExhausted`, which the miner treats optimistically as
//!   frequent (GRAMI's lazy CSP search achieves certainty cheaper; a budget
//!   keeps worst-case patterns from stalling the pipeline).

use mgp_graph::{FxHashSet, Graph};
use mgp_matching::engine::backtrack_embeddings;
use mgp_matching::order::estimated_instance_order;
use mgp_matching::PatternInfo;

/// Result of an MNI support check against a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportOutcome {
    /// Every pattern node's image set reached the threshold.
    Frequent,
    /// Enumeration finished; the smallest image set has this size
    /// (< threshold).
    Infrequent(u64),
    /// The embedding budget ran out before a certain verdict.
    BudgetExhausted,
}

impl SupportOutcome {
    /// Whether the miner should keep the pattern.
    pub fn keep(self) -> bool {
        !matches!(self, SupportOutcome::Infrequent(_))
    }
}

/// Checks whether `p`'s MNI support reaches `threshold`, enumerating at most
/// `budget` embeddings.
pub fn mni_support(g: &Graph, p: &PatternInfo, threshold: u64, budget: u64) -> SupportOutcome {
    let n = p.n_nodes();
    if n == 0 {
        return SupportOutcome::Infrequent(0);
    }
    // Quick necessary bound: image set of node u is at most the number of
    // graph nodes of its type.
    for u in 0..n {
        if (g.n_nodes_of_type(p.metagraph.node_type(u)) as u64) < threshold {
            return SupportOutcome::Infrequent(0);
        }
    }

    let order = estimated_instance_order(g, p);
    let mut images: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    let mut visits = 0u64;
    let mut all_reached = false;
    let mut out_of_budget = false;

    backtrack_embeddings(g, p, &order, None, &mut |assign| {
        visits += 1;
        for (u, &v) in assign.iter().enumerate() {
            images[u].insert(v.0);
        }
        if images.iter().all(|s| s.len() as u64 >= threshold) {
            all_reached = true;
            return false;
        }
        if visits >= budget {
            out_of_budget = true;
            return false;
        }
        true
    });

    if all_reached {
        SupportOutcome::Frequent
    } else if out_of_budget {
        SupportOutcome::BudgetExhausted
    } else {
        let min = images.iter().map(|s| s.len() as u64).min().unwrap_or(0);
        if min >= threshold {
            SupportOutcome::Frequent
        } else {
            SupportOutcome::Infrequent(min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::{GraphBuilder, TypeId};
    use mgp_metagraph::Metagraph;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);

    fn star(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let s = b.add_node(school, "s");
        for i in 0..n {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
        }
        b.build()
    }

    #[test]
    fn frequent_when_images_reach_threshold() {
        let g = star(5);
        let p = PatternInfo::new(
            Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap(),
            U,
        );
        // Users have 5 images, school only 1 → support = 1.
        assert_eq!(mni_support(&g, &p, 1, 10_000), SupportOutcome::Frequent);
        // Threshold 2 fails via the type-count bound (only 1 school).
        assert!(matches!(
            mni_support(&g, &p, 2, 10_000),
            SupportOutcome::Infrequent(_)
        ));
    }

    #[test]
    fn infrequent_on_missing_types() {
        let g = star(3);
        let p = PatternInfo::new(
            Metagraph::from_edges(&[U, TypeId(7)], &[(0, 1)]).unwrap(),
            U,
        );
        assert_eq!(mni_support(&g, &p, 1, 100), SupportOutcome::Infrequent(0));
    }

    #[test]
    fn budget_exhaustion_reported() {
        // Two schools so the school image set needs 2 embeddings in
        // different schools; with budget 1 the verdict is uncertain.
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        for k in 0..2 {
            let s = b.add_node(school, format!("s{k}"));
            for i in 0..3 {
                let u = b.add_node(user, format!("u{k}{i}"));
                b.add_edge(u, s).unwrap();
            }
        }
        let g = b.build();
        let p = PatternInfo::new(
            Metagraph::from_edges(&[U, S, U], &[(0, 1), (1, 2)]).unwrap(),
            U,
        );
        assert_eq!(mni_support(&g, &p, 2, 1), SupportOutcome::BudgetExhausted);
        assert_eq!(mni_support(&g, &p, 2, 10_000), SupportOutcome::Frequent);
    }

    #[test]
    fn keep_semantics() {
        assert!(SupportOutcome::Frequent.keep());
        assert!(SupportOutcome::BudgetExhausted.keep());
        assert!(!SupportOutcome::Infrequent(0).keep());
    }

    #[test]
    fn empty_pattern_infrequent() {
        let g = star(2);
        let p = PatternInfo::new(Metagraph::new(&[]).unwrap(), U);
        assert_eq!(mni_support(&g, &p, 1, 100), SupportOutcome::Infrequent(0));
    }
}

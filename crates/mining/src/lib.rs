//! # mgp-mining — frequent metagraph mining on a single large graph
//!
//! The offline phase first *mines* the metagraph set `M` from the object
//! graph (Fig. 3, subproblem 1). The paper delegates this to GRAMI
//! [Elseidy et al., PVLDB 2014]; this crate re-implements the relevant core:
//! pattern-growth enumeration over a **single** large graph with
//! **MNI (minimum image) support** — the standard anti-monotone support
//! measure for single-graph mining (instance counts are not downward
//! closed; minimum image counts are, which makes support-based pruning
//! sound).
//!
//! Mining proceeds level-wise:
//!
//! 1. seed with all frequent single-edge patterns (from the graph's
//!    edge-type statistics),
//! 2. extend each frequent pattern by a forward edge (new typed node hung
//!    off an existing node) or a backward edge (closing a cycle),
//! 3. deduplicate extensions by canonical code, evaluate MNI support with
//!    early termination, and keep frequent ones,
//! 4. stop at `max_nodes` (the paper uses 5).
//!
//! The final result is filtered to the patterns usable for anchor
//! proximity, matching Sect. V-A: at least two anchor-type (`user`) nodes,
//! at least one node of another type, and a symmetric anchor pair
//! (Def. 1) — plus the connectivity that growth guarantees.

#![warn(missing_docs)]

pub mod miner;
pub mod support;

pub use miner::{mine, MinedMetagraph, MinerConfig};
pub use support::{mni_support, SupportOutcome};

//! Level-wise pattern-growth mining with canonical deduplication.

use crate::support::{mni_support, SupportOutcome};
use mgp_graph::{FxHashSet, Graph, TypeId};
use mgp_matching::PatternInfo;
use mgp_metagraph::{CanonicalCode, Metagraph, SymmetryInfo};
use serde::{Deserialize, Serialize};

/// Configuration for the metagraph miner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinerConfig {
    /// Maximum pattern size in nodes (paper: 5).
    pub max_nodes: usize,
    /// MNI support threshold.
    pub min_support: u64,
    /// The anchor type (`user` in the paper's experiments).
    pub anchor_type: TypeId,
    /// Final filter: at least this many anchor-type nodes (paper: 2).
    pub min_anchor_nodes: usize,
    /// Final filter: require at least one non-anchor node (paper: yes).
    pub require_other_type: bool,
    /// Final filter: keep only patterns with a symmetric anchor pair
    /// (the paper retains only symmetric metagraphs).
    pub symmetric_only: bool,
    /// Hard cap on the number of *retained* patterns (safety valve; `None`
    /// = unbounded).
    pub max_patterns: Option<usize>,
    /// Embedding budget per support check (see [`crate::support`]).
    pub support_budget: u64,
}

impl MinerConfig {
    /// The paper's setup: ≤ 5 nodes, ≥ 2 anchor nodes, ≥ 1 other node,
    /// symmetric patterns only.
    pub fn paper_defaults(anchor_type: TypeId, min_support: u64) -> Self {
        MinerConfig {
            max_nodes: 5,
            min_support,
            anchor_type,
            min_anchor_nodes: 2,
            require_other_type: true,
            symmetric_only: true,
            max_patterns: None,
            support_budget: 2_000_000,
        }
    }
}

/// A mined metagraph with the support level it was admitted at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedMetagraph {
    /// The pattern.
    pub metagraph: Metagraph,
    /// `true` if the support check ran out of budget (optimistically kept).
    pub support_uncertain: bool,
}

/// Mines the frequent metagraph set of `g` (see crate docs for the
/// procedure). Results are deterministic: sorted by node count then
/// canonical code.
pub fn mine(g: &Graph, cfg: &MinerConfig) -> Vec<MinedMetagraph> {
    let n_types = g.n_types();
    let mut seen: FxHashSet<CanonicalCode> = FxHashSet::default();
    let mut results: Vec<(CanonicalCode, MinedMetagraph)> = Vec::new();

    // Level 1: frequent single-edge patterns.
    let mut frontier: Vec<Metagraph> = Vec::new();
    for t1 in 0..n_types {
        for t2 in t1..n_types {
            let (t1, t2) = (TypeId(t1 as u16), TypeId(t2 as u16));
            if g.edge_type_count(t1, t2) == 0 {
                continue;
            }
            let m = Metagraph::from_edges(&[t1, t2], &[(0, 1)]).expect("2-node pattern");
            let code = CanonicalCode::of(&m);
            if !seen.insert(code) {
                continue;
            }
            let p = PatternInfo::new(m.clone(), cfg.anchor_type);
            match mni_support(g, &p, cfg.min_support, cfg.support_budget) {
                SupportOutcome::Infrequent(_) => {}
                outcome => {
                    admit(cfg, &mut results, &m, outcome);
                    frontier.push(m);
                }
            }
        }
    }

    // Grow level by level.
    while !frontier.is_empty() && !at_cap(cfg, &results) {
        let mut next: Vec<Metagraph> = Vec::new();
        for base in &frontier {
            for ext in extensions(g, base, cfg) {
                if at_cap(cfg, &results) {
                    break;
                }
                let code = CanonicalCode::of(&ext);
                if !seen.insert(code) {
                    continue;
                }
                let p = PatternInfo::new(ext.clone(), cfg.anchor_type);
                match mni_support(g, &p, cfg.min_support, cfg.support_budget) {
                    SupportOutcome::Infrequent(_) => {}
                    outcome => {
                        admit(cfg, &mut results, &ext, outcome);
                        if ext.n_nodes() < cfg.max_nodes || ext_has_open_edges(&ext) {
                            next.push(ext);
                        }
                    }
                }
            }
        }
        frontier = next;
    }

    results.sort_by(|a, b| (a.1.metagraph.n_nodes(), &a.0).cmp(&(b.1.metagraph.n_nodes(), &b.0)));
    results.into_iter().map(|(_, m)| m).collect()
}

/// Whether a max-size pattern can still receive backward edges.
fn ext_has_open_edges(m: &Metagraph) -> bool {
    let n = m.n_nodes();
    m.n_edges() < n * (n - 1) / 2
}

fn at_cap(cfg: &MinerConfig, results: &[(CanonicalCode, MinedMetagraph)]) -> bool {
    cfg.max_patterns.is_some_and(|cap| results.len() >= cap)
}

/// Records a frequent pattern if it satisfies the final filters.
fn admit(
    cfg: &MinerConfig,
    results: &mut Vec<(CanonicalCode, MinedMetagraph)>,
    m: &Metagraph,
    outcome: SupportOutcome,
) {
    let anchors = m.count_type(cfg.anchor_type);
    if anchors < cfg.min_anchor_nodes {
        return;
    }
    if cfg.require_other_type && anchors == m.n_nodes() {
        return;
    }
    if cfg.symmetric_only {
        let info = SymmetryInfo::compute(m);
        if info.anchor_pairs(m, cfg.anchor_type).is_empty() {
            return;
        }
    }
    results.push((
        CanonicalCode::of(m),
        MinedMetagraph {
            metagraph: m.clone(),
            support_uncertain: matches!(outcome, SupportOutcome::BudgetExhausted),
        },
    ));
}

/// All one-step extensions of `base`: forward edges (new typed node hung
/// off an existing node, when under the size limit) and backward edges
/// (closing a cycle between existing non-adjacent nodes). Extensions whose
/// new edge's type pair never occurs in `g` are pruned immediately.
fn extensions(g: &Graph, base: &Metagraph, cfg: &MinerConfig) -> Vec<Metagraph> {
    let mut out = Vec::new();
    let n = base.n_nodes();

    // Forward edges.
    if n < cfg.max_nodes {
        for u in 0..n {
            let tu = base.node_type(u);
            for t in 0..g.n_types() {
                let t = TypeId(t as u16);
                if g.edge_type_count(tu, t) == 0 {
                    continue;
                }
                let mut m = base.clone();
                let v = m.add_node(t).expect("under max nodes");
                m.add_edge(u, v).expect("valid edge");
                out.push(m);
            }
        }
    }

    // Backward edges.
    for u in 0..n {
        for v in (u + 1)..n {
            if base.has_edge(u, v) {
                continue;
            }
            if g.edge_type_count(base.node_type(u), base.node_type(v)) == 0 {
                continue;
            }
            let mut m = base.clone();
            m.add_edge(u, v).expect("valid edge");
            out.push(m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::GraphBuilder;
    use mgp_metagraph::is_metapath;

    const USER: TypeId = TypeId(0);

    /// A campus graph: schools and majors shared by users.
    fn campus() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        for k in 0..3 {
            let s = b.add_node(school, format!("s{k}"));
            let mj = b.add_node(major, format!("m{k}"));
            for i in 0..4 {
                let u = b.add_node(user, format!("u{k}{i}"));
                b.add_edge(u, s).unwrap();
                b.add_edge(u, mj).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn mines_shared_attribute_patterns() {
        let g = campus();
        let cfg = MinerConfig::paper_defaults(USER, 2);
        let mined = mine(&g, &cfg);
        assert!(!mined.is_empty());
        // user-school-user must be found.
        let has_uschool = mined.iter().any(|mm| {
            let m = &mm.metagraph;
            m.n_nodes() == 3
                && is_metapath(m)
                && m.count_type(USER) == 2
                && m.count_type(TypeId(1)) == 1
        });
        assert!(
            has_uschool,
            "user-school-user missing: {:?}",
            mined
                .iter()
                .map(|m| m.metagraph.brief())
                .collect::<Vec<_>>()
        );
        // M1 (shared school+major) must be found.
        let has_m1 = mined.iter().any(|mm| {
            let m = &mm.metagraph;
            m.n_nodes() == 4
                && m.n_edges() == 4
                && m.count_type(USER) == 2
                && m.count_type(TypeId(1)) == 1
                && m.count_type(TypeId(2)) == 1
        });
        assert!(has_m1);
    }

    #[test]
    fn all_results_satisfy_filters() {
        let g = campus();
        let cfg = MinerConfig::paper_defaults(USER, 2);
        for mm in mine(&g, &cfg) {
            let m = &mm.metagraph;
            assert!(m.is_connected());
            assert!(m.n_nodes() <= 5);
            assert!(m.count_type(USER) >= 2);
            assert!(m.count_type(USER) < m.n_nodes(), "needs a non-anchor node");
            let info = SymmetryInfo::compute(m);
            assert!(!info.anchor_pairs(m, USER).is_empty());
        }
    }

    #[test]
    fn no_duplicate_patterns() {
        let g = campus();
        let cfg = MinerConfig::paper_defaults(USER, 2);
        let mined = mine(&g, &cfg);
        let codes: Vec<CanonicalCode> = mined
            .iter()
            .map(|mm| CanonicalCode::of(&mm.metagraph))
            .collect();
        let unique: std::collections::BTreeSet<_> = codes.iter().collect();
        assert_eq!(unique.len(), codes.len());
    }

    #[test]
    fn support_threshold_prunes() {
        let g = campus();
        let low = mine(&g, &MinerConfig::paper_defaults(USER, 2));
        let high = mine(&g, &MinerConfig::paper_defaults(USER, 1000));
        assert!(high.len() < low.len());
        assert!(high.is_empty());
    }

    #[test]
    fn max_patterns_cap_respected() {
        let g = campus();
        let mut cfg = MinerConfig::paper_defaults(USER, 2);
        cfg.max_patterns = Some(3);
        let mined = mine(&g, &cfg);
        assert!(mined.len() <= 3);
        assert!(!mined.is_empty());
    }

    #[test]
    fn deterministic_output() {
        let g = campus();
        let cfg = MinerConfig::paper_defaults(USER, 2);
        let a = mine(&g, &cfg);
        let b = mine(&g, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn metapath_share_is_small() {
        // Sanity of the paper's observation that only a small fraction of
        // metagraphs are paths (Sect. III-C reports 2–3%; on a tiny type
        // space the share is larger but still a strict minority).
        let g = campus();
        let cfg = MinerConfig::paper_defaults(USER, 2);
        let mined = mine(&g, &cfg);
        let n_paths = mined.iter().filter(|mm| is_metapath(&mm.metagraph)).count();
        assert!(n_paths > 0);
        assert!(n_paths * 2 < mined.len(), "{n_paths} of {}", mined.len());
    }
}

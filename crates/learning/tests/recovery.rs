//! Weight recovery: trained MGP weights must concentrate on the planted
//! characteristic metagraph of a constructed graph.

use mgp_graph::{GraphBuilder, NodeId, TypeId};
use mgp_index::{Transform, VectorIndex};
use mgp_learning::{mgp, sample_examples, train, TrainConfig};
use mgp_matching::{anchor::anchor_counts, PatternInfo, SymIso};
use mgp_metagraph::Metagraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const U: TypeId = TypeId(0);
const HOBBY: TypeId = TypeId(1);
const ADDR: TypeId = TypeId(2);

/// Builds a graph where the "roommate" class is exactly shared-address
/// pairs; hobbies are dense noise shared across many users.
fn roommate_world() -> (mgp_graph::Graph, Vec<(NodeId, NodeId)>) {
    let mut b = GraphBuilder::new();
    let user = b.add_type("user");
    let hobby = b.add_type("hobby");
    let addr = b.add_type("address");
    let hobbies: Vec<NodeId> = (0..4).map(|i| b.add_node(hobby, format!("h{i}"))).collect();
    let mut pairs = Vec::new();
    for i in 0..20 {
        let a = b.add_node(addr, format!("a{i}"));
        let u1 = b.add_node(user, format!("u{i}a"));
        let u2 = b.add_node(user, format!("u{i}b"));
        b.add_edge(u1, a).unwrap();
        b.add_edge(u2, a).unwrap();
        // Hobbies: noisy, shared by construction across households.
        b.add_edge(u1, hobbies[i % 4]).unwrap();
        b.add_edge(u2, hobbies[(i + 1) % 4]).unwrap();
        pairs.push((u1, u2));
    }
    (b.build(), pairs)
}

#[test]
fn recovers_the_address_metagraph() {
    let (g, roommates) = roommate_world();
    // Two candidate metagraphs: shared hobby (noise) and shared address
    // (signal).
    let m_hobby = Metagraph::from_edges(&[U, HOBBY, U], &[(0, 1), (1, 2)]).unwrap();
    let m_addr = Metagraph::from_edges(&[U, ADDR, U], &[(0, 1), (1, 2)]).unwrap();
    let patterns = [PatternInfo::new(m_hobby, U), PatternInfo::new(m_addr, U)];
    let counts: Vec<_> = patterns
        .iter()
        .map(|p| anchor_counts(&SymIso::new(), &g, p))
        .collect();
    let idx = VectorIndex::from_counts(&counts, Transform::Binary);

    let users: Vec<NodeId> = g.nodes_of_type(U).to_vec();
    let queries: Vec<NodeId> = roommates.iter().map(|&(a, _)| a).collect();
    let positives = |q: NodeId| -> Vec<NodeId> {
        roommates
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let examples = sample_examples(
        &queries,
        positives,
        |q, v| positives(q).contains(&v),
        &users,
        200,
        &mut rng,
    );
    let model = train(&idx, &examples, &TrainConfig::fast(1));

    // Address weight must dominate hobby weight.
    assert!(
        model.weights[1] > model.weights[0] + 0.3,
        "weights: {:?}",
        model.weights
    );

    // And the induced ranking puts the roommate first for every query.
    let mut correct = 0;
    for &(u1, u2) in &roommates {
        let top = mgp::rank(&idx, u1, &model.weights, 1);
        if top.first() == Some(&u2) {
            correct += 1;
        }
    }
    assert!(
        correct >= 18,
        "roommate retrieved first for only {correct}/20 queries"
    );
}

//! The metagraph-based proximity measure (Def. 3) and online ranking.

use mgp_graph::NodeId;
use mgp_index::VectorIndex;

/// MGP proximity `π(x, y; w)` (Def. 3).
///
/// Conventions: `π(x, x) = 1` (self-maximum); pairs whose denominator is 0
/// (nodes absent from every weighted metagraph) score 0.
pub fn proximity(idx: &VectorIndex, x: NodeId, y: NodeId, w: &[f64]) -> f64 {
    if x == y {
        return 1.0;
    }
    let denom = idx.dot_node(x, w) + idx.dot_node(y, w);
    if denom <= 0.0 {
        return 0.0;
    }
    2.0 * idx.dot_pair(x, y, w) / denom
}

/// Ranks the candidates for query `q` in descending MGP proximity and
/// returns the top `k` (ties broken by node id for determinism).
///
/// Only `q`'s index partners are scored: every other node has `m_qv = 0`
/// and hence proximity 0 — this is what makes online search fast
/// (Table III reports ~10⁻⁴ s per query).
pub fn rank(idx: &VectorIndex, q: NodeId, w: &[f64], k: usize) -> Vec<NodeId> {
    let mut scored: Vec<(f64, NodeId)> = idx
        .partners(q)
        .iter()
        .map(|&v| {
            let v = NodeId(v);
            (proximity(idx, q, v, w), v)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, v)| v).collect()
}

/// Like [`rank`] but returning scores too (useful for explanations).
pub fn rank_with_scores(idx: &VectorIndex, q: NodeId, w: &[f64], k: usize) -> Vec<(NodeId, f64)> {
    let mut scored: Vec<(f64, NodeId)> = idx
        .partners(q)
        .iter()
        .map(|&v| {
            let v = NodeId(v);
            (proximity(idx, q, v, w), v)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(s, v)| (v, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::FxHashMap;
    use mgp_index::Transform;
    use mgp_matching::AnchorCounts;

    /// Index over 2 metagraphs and nodes 1..=3:
    /// M0 connects (1,2); M1 connects (1,3) and (2,3).
    fn idx() -> VectorIndex {
        let mut c0 = AnchorCounts::default();
        let mut c1 = AnchorCounts::default();
        let ins = |m: &mut FxHashMap<u64, u64>, x: u32, y: u32, c: u64| {
            m.insert(mgp_graph::ids::pack_pair(NodeId(x), NodeId(y)), c);
        };
        ins(&mut c0.per_pair, 1, 2, 4);
        c0.per_node.insert(1, 4);
        c0.per_node.insert(2, 4);
        ins(&mut c1.per_pair, 1, 3, 2);
        ins(&mut c1.per_pair, 2, 3, 1);
        c1.per_node.insert(1, 2);
        c1.per_node.insert(2, 1);
        c1.per_node.insert(3, 3);
        VectorIndex::from_counts(&[c0, c1], Transform::Raw)
    }

    #[test]
    fn theorem1_symmetry() {
        let idx = idx();
        let w = vec![0.7, 0.3];
        for (x, y) in [(1, 2), (1, 3), (2, 3)] {
            assert_eq!(
                proximity(&idx, NodeId(x), NodeId(y), &w),
                proximity(&idx, NodeId(y), NodeId(x), &w)
            );
        }
    }

    #[test]
    fn theorem1_self_maximum() {
        let idx = idx();
        let w = vec![0.7, 0.3];
        assert_eq!(proximity(&idx, NodeId(1), NodeId(1), &w), 1.0);
        for (x, y) in [(1, 2), (1, 3), (2, 3)] {
            let p = proximity(&idx, NodeId(x), NodeId(y), &w);
            assert!((0.0..=1.0).contains(&p), "π={p}");
        }
    }

    #[test]
    fn theorem1_scale_invariance() {
        let idx = idx();
        let w = vec![0.4, 0.6];
        let w5: Vec<f64> = w.iter().map(|x| x * 5.0).collect();
        for (x, y) in [(1, 2), (1, 3), (2, 3)] {
            let a = proximity(&idx, NodeId(x), NodeId(y), &w);
            let b = proximity(&idx, NodeId(x), NodeId(y), &w5);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_select_the_class() {
        let idx = idx();
        // Under pure-M0 weights, node 2 is 1's best match; under pure-M1,
        // node 3 is.
        let w_m0 = vec![1.0, 0.0];
        let w_m1 = vec![0.0, 1.0];
        assert_eq!(rank(&idx, NodeId(1), &w_m0, 1), vec![NodeId(2)]);
        assert_eq!(rank(&idx, NodeId(1), &w_m1, 1), vec![NodeId(3)]);
    }

    #[test]
    fn zero_weight_vector_scores_zero() {
        let idx = idx();
        let w = vec![0.0, 0.0];
        assert_eq!(proximity(&idx, NodeId(1), NodeId(2), &w), 0.0);
    }

    #[test]
    fn rank_only_over_partners() {
        let idx = idx();
        let w = vec![1.0, 1.0];
        let r = rank(&idx, NodeId(3), &w, 10);
        // 3's partners are 1 and 2 only.
        assert_eq!(r.len(), 2);
        assert!(r.contains(&NodeId(1)) && r.contains(&NodeId(2)));
        // Unknown node has no partners.
        assert!(rank(&idx, NodeId(99), &w, 10).is_empty());
    }

    #[test]
    fn rank_with_scores_descending() {
        let idx = idx();
        let w = vec![1.0, 1.0];
        let r = rank_with_scores(&idx, NodeId(1), &w, 10);
        for pair in r.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}

//! Explaining proximity results.
//!
//! Fig. 1(b) of the paper presents search results *with explanations* —
//! "Alice (same employer and hobby)". MGP supports this naturally: the
//! numerator of `π(x, y; w)` is a weighted sum over metagraphs, so the
//! top-contributing metagraphs *are* the explanation of why `y` ranked
//! where it did.

use mgp_graph::NodeId;
use mgp_index::VectorIndex;
use serde::{Deserialize, Serialize};

/// One metagraph's contribution to a proximity score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contribution {
    /// Coordinate (metagraph index within the index).
    pub metagraph: usize,
    /// The learned weight `w[i]`.
    pub weight: f64,
    /// The (transformed) shared-instance count `m_xy[i]`.
    pub pair_count: f64,
    /// `w[i] · m_xy[i]` — the numerator term.
    pub contribution: f64,
    /// This term's share of the total numerator, in `[0, 1]`.
    pub share: f64,
}

/// Decomposes `π(x, y; w)`'s numerator into per-metagraph contributions,
/// descending, truncated to `top` (0 = all). Empty when the pair shares no
/// weighted metagraph.
pub fn explain(
    idx: &VectorIndex,
    x: NodeId,
    y: NodeId,
    w: &[f64],
    top: usize,
) -> Vec<Contribution> {
    let pair = idx.pair_vec(x, y);
    let total: f64 = pair.iter().map(|&(i, c)| c * w[i as usize]).sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut out: Vec<Contribution> = pair
        .iter()
        .filter(|&&(i, c)| c * w[i as usize] > 0.0)
        .map(|&(i, c)| {
            let contribution = c * w[i as usize];
            Contribution {
                metagraph: i as usize,
                weight: w[i as usize],
                pair_count: c,
                contribution,
                share: contribution / total,
            }
        })
        .collect();
    out.sort_by(|a, b| b.contribution.partial_cmp(&a.contribution).unwrap());
    if top > 0 {
        out.truncate(top);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::ids::pack_pair;
    use mgp_index::Transform;
    use mgp_matching::AnchorCounts;

    fn idx() -> VectorIndex {
        let mut c0 = AnchorCounts::default();
        c0.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 4);
        c0.per_node.insert(1, 4);
        c0.per_node.insert(2, 4);
        let mut c1 = AnchorCounts::default();
        c1.per_pair.insert(pack_pair(NodeId(1), NodeId(2)), 1);
        c1.per_node.insert(1, 1);
        c1.per_node.insert(2, 1);
        VectorIndex::from_counts(&[c0, c1], Transform::Raw)
    }

    #[test]
    fn contributions_ordered_and_normalised() {
        let idx = idx();
        let w = [0.5, 1.0];
        let ex = explain(&idx, NodeId(1), NodeId(2), &w, 0);
        assert_eq!(ex.len(), 2);
        // M0: 0.5·4 = 2; M1: 1.0·1 = 1.
        assert_eq!(ex[0].metagraph, 0);
        assert_eq!(ex[0].contribution, 2.0);
        assert_eq!(ex[1].contribution, 1.0);
        let total_share: f64 = ex.iter().map(|c| c.share).sum();
        assert!((total_share - 1.0).abs() < 1e-12);
        assert!((ex[0].share - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_and_zero_weight_filtering() {
        let idx = idx();
        let w = [1.0, 0.0];
        let ex = explain(&idx, NodeId(1), NodeId(2), &w, 5);
        assert_eq!(ex.len(), 1); // zero-weight term filtered
        let ex = explain(&idx, NodeId(1), NodeId(2), &[0.5, 1.0], 1);
        assert_eq!(ex.len(), 1); // truncated
    }

    #[test]
    fn unrelated_pair_empty() {
        let idx = idx();
        assert!(explain(&idx, NodeId(1), NodeId(9), &[1.0, 1.0], 0).is_empty());
        assert!(explain(&idx, NodeId(1), NodeId(2), &[0.0, 0.0], 0).is_empty());
    }
}

//! The accuracy baselines of Sect. V-B.
//!
//! * **MPP** — metapath-based proximity with the same supervised learner,
//!   i.e. MGP restricted to path-shaped metagraphs (what PathSim-style
//!   features can express, made learnable);
//! * **MGP-U** — MGP with uniform weights (no differentiation of
//!   metagraphs, hence of classes);
//! * **MGP-B** — MGP with the single best-performing metagraph, selected on
//!   the training queries.
//!
//! SRW lives in its own module ([`crate::srw`]).

use mgp_eval::ndcg_at;
use mgp_graph::NodeId;
use mgp_index::VectorIndex;
use mgp_metagraph::{is_metapath, Metagraph};

/// Indices of the path-shaped metagraphs — the MPP feature space and the
/// dual-stage seed set `K₀`.
pub fn metapath_indices(metagraphs: &[Metagraph]) -> Vec<usize> {
    metagraphs
        .iter()
        .enumerate()
        .filter(|(_, m)| is_metapath(m))
        .map(|(i, _)| i)
        .collect()
}

/// MGP-U: uniform weights.
pub fn uniform_weights(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// A one-hot weight vector (all mass on metagraph `i`).
pub fn single_weights(n: usize, i: usize) -> Vec<f64> {
    let mut w = vec![0.0; n];
    w[i] = 1.0;
    w
}

/// MGP-B: selects the single metagraph whose one-hot weights achieve the
/// best mean NDCG@k on the training queries. Returns its index (0 when the
/// index is empty).
pub fn best_single_metagraph(
    idx: &VectorIndex,
    train_queries: &[NodeId],
    mut positives: impl FnMut(NodeId) -> Vec<NodeId>,
    k: usize,
) -> usize {
    let n = idx.n_metagraphs();
    if n == 0 {
        return 0;
    }
    // Pre-fetch positives once.
    let pos: Vec<(NodeId, Vec<NodeId>)> = train_queries
        .iter()
        .map(|&q| (q, positives(q)))
        .filter(|(_, p)| !p.is_empty())
        .collect();
    let mut best = (0usize, f64::MIN);
    for i in 0..n {
        let w = single_weights(n, i);
        let mut sum = 0.0;
        for (q, rel) in &pos {
            let ranking = crate::mgp::rank(idx, *q, &w, k);
            sum += ndcg_at(&ranking, rel, k);
        }
        if sum > best.1 {
            best = (i, sum);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::ids::pack_pair;
    use mgp_graph::TypeId;
    use mgp_index::Transform;
    use mgp_matching::AnchorCounts;

    #[test]
    fn metapath_indices_filter() {
        const U: TypeId = TypeId(0);
        const A: TypeId = TypeId(1);
        let pats = vec![
            Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap(), // path
            Metagraph::from_edges(&[U, A, A, U], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
            Metagraph::from_edges(&[U, A], &[(0, 1)]).unwrap(), // path
        ];
        assert_eq!(metapath_indices(&pats), vec![0, 2]);
    }

    #[test]
    fn uniform_and_single() {
        assert_eq!(uniform_weights(3), vec![1.0, 1.0, 1.0]);
        assert_eq!(single_weights(3, 1), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn best_single_picks_the_signal() {
        // M0 connects q to its positive; M1 to a negative.
        let mut c0 = AnchorCounts::default();
        c0.per_pair.insert(pack_pair(NodeId(0), NodeId(1)), 2);
        c0.per_node.insert(0, 2);
        c0.per_node.insert(1, 2);
        let mut c1 = AnchorCounts::default();
        c1.per_pair.insert(pack_pair(NodeId(0), NodeId(2)), 2);
        c1.per_node.insert(0, 2);
        c1.per_node.insert(2, 2);
        let idx = VectorIndex::from_counts(&[c0, c1], Transform::Raw);
        let best = best_single_metagraph(&idx, &[NodeId(0)], |_| vec![NodeId(1)], 10);
        assert_eq!(best, 0);
        let best = best_single_metagraph(&idx, &[NodeId(0)], |_| vec![NodeId(2)], 10);
        assert_eq!(best, 1);
    }

    #[test]
    fn empty_index_degenerate() {
        let idx = VectorIndex::from_counts(&[], Transform::Raw);
        assert_eq!(
            best_single_metagraph(&idx, &[NodeId(0)], |_| vec![NodeId(1)], 10),
            0
        );
    }
}

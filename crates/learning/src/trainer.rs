//! Supervised learning of the characteristic weights `w*` (Sect. III-B).
//!
//! Maximises the log-likelihood `L(w; Ω) = Σ log P(q, x, y; w)` with
//! `P = σ(µ (π(q,x;w) − π(q,y;w)))` by gradient ascent, using the closed
//! form gradient of the paper:
//!
//! ```text
//! ∂π(v,u)/∂w[i] = [2(m_v·w + m_u·w)·m_vu[i] − 2(m_vu·w)(m_v[i] + m_u[i])]
//!                 / (m_v·w + m_u·w)²
//! ```
//!
//! Following the paper's setup, µ = 5 and weights are projected into
//! `[0, 1]` after every step (scale-invariance, Theorem 1, makes the
//! projection lossless and keeps weights interpretable), with 5 random
//! restarts to escape local maxima.
//!
//! One engineering deviation, documented here because it matters in
//! practice: the paper uses a fixed learning rate γ = 10 decayed 5 % every
//! 100 iterations. The magnitude of `∇L` varies by orders of magnitude with
//! `|Ω|`, `|M|` and the count transform, which makes any fixed γ either
//! explosive or uselessly small away from the authors' exact setting. We
//! therefore take **normalised-gradient steps with a backtracking line
//! search**: each accepted step moves the largest coordinate by the current
//! step size (initially `γ/100`), growing on success and shrinking on
//! failure — the same ascent direction, made scale-free. Convergence is
//! declared when the step size underflows `min_step` or the likelihood
//! stops improving.

use crate::examples::TrainingExample;
use mgp_graph::NodeId;
use mgp_index::VectorIndex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Sigmoid scale µ (paper: 5).
    pub mu: f64,
    /// Initial step scale γ; the first accepted step moves the largest
    /// weight coordinate by `γ/100` (paper's γ = 10 → 0.1).
    pub gamma0: f64,
    /// Step growth factor after an accepted step.
    pub step_grow: f64,
    /// Step shrink factor after a rejected step.
    pub step_shrink: f64,
    /// Stop when the step size falls below this.
    pub min_step: f64,
    /// Iteration cap per restart.
    pub max_iterations: usize,
    /// Number of random restarts (paper: 5).
    pub restarts: usize,
    /// RNG seed for the random initialisations.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            mu: 5.0,
            gamma0: 10.0,
            step_grow: 1.2,
            step_shrink: 0.5,
            min_step: 1e-4,
            max_iterations: 500,
            restarts: 5,
            seed: 42,
        }
    }
}

impl TrainConfig {
    /// A faster profile for tests and sweeps: fewer restarts/iterations.
    pub fn fast(seed: u64) -> Self {
        TrainConfig {
            restarts: 2,
            max_iterations: 250,
            seed,
            ..Self::default()
        }
    }
}

/// The learned model: optimal weights plus diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// `w*` — one weight per metagraph coordinate of the index.
    pub weights: Vec<f64>,
    /// Final log-likelihood on the training examples.
    pub log_likelihood: f64,
    /// Iterations used by the best restart.
    pub iterations: usize,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Learns `w*` over the index's metagraph coordinates from training
/// triples. Deterministic for a given config.
pub fn train(idx: &VectorIndex, examples: &[TrainingExample], cfg: &TrainConfig) -> TrainedModel {
    let dim = idx.n_metagraphs();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut best: Option<TrainedModel> = None;

    for _ in 0..cfg.restarts.max(1) {
        let init: Vec<f64> = (0..dim).map(|_| rng.random_range(0.01..1.0)).collect();
        let model = run_ascent(idx, examples, cfg, init);
        if best
            .as_ref()
            .is_none_or(|b| model.log_likelihood > b.log_likelihood)
        {
            best = Some(model);
        }
    }
    best.unwrap_or(TrainedModel {
        weights: vec![1.0; dim],
        log_likelihood: 0.0,
        iterations: 0,
    })
}

fn run_ascent(
    idx: &VectorIndex,
    examples: &[TrainingExample],
    cfg: &TrainConfig,
    mut w: Vec<f64>,
) -> TrainedModel {
    let dim = w.len();
    let mut step = cfg.gamma0 / 100.0;
    let mut ll = log_likelihood(idx, examples, cfg.mu, &w);
    let mut iterations = 0;
    let mut grad = vec![0.0f64; dim];
    let mut candidate = vec![0.0f64; dim];

    for it in 0..cfg.max_iterations {
        iterations = it + 1;
        grad.iter_mut().for_each(|g| *g = 0.0);
        accumulate_gradient(idx, examples, cfg.mu, &w, &mut grad);
        let norm = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
        if norm < 1e-15 {
            break; // flat: nothing to climb
        }
        // Normalised step, projected to [0,1].
        let scale = step / norm;
        for i in 0..dim {
            candidate[i] = (w[i] + scale * grad[i]).clamp(0.0, 1.0);
        }
        let ll_c = log_likelihood(idx, examples, cfg.mu, &candidate);
        if ll_c > ll {
            std::mem::swap(&mut w, &mut candidate);
            ll = ll_c;
            step = (step * cfg.step_grow).min(cfg.gamma0 / 100.0 * 4.0);
        } else {
            step *= cfg.step_shrink;
            if step < cfg.min_step {
                break;
            }
        }
    }
    TrainedModel {
        weights: w,
        log_likelihood: ll,
        iterations,
    }
}

/// `L(w; Ω)` per Eq. 5.
pub fn log_likelihood(idx: &VectorIndex, examples: &[TrainingExample], mu: f64, w: &[f64]) -> f64 {
    examples
        .iter()
        .map(|e| {
            let diff = pi(idx, e.q, e.x, w) - pi(idx, e.q, e.y, w);
            let p = sigmoid(mu * diff).max(1e-300);
            p.ln()
        })
        .sum()
}

#[inline]
fn pi(idx: &VectorIndex, a: NodeId, b: NodeId, w: &[f64]) -> f64 {
    crate::mgp::proximity(idx, a, b, w)
}

/// Adds `∇L` to `grad` (sparse per-example updates).
fn accumulate_gradient(
    idx: &VectorIndex,
    examples: &[TrainingExample],
    mu: f64,
    w: &[f64],
    grad: &mut [f64],
) {
    for e in examples {
        let diff = pi(idx, e.q, e.x, w) - pi(idx, e.q, e.y, w);
        let p = sigmoid(mu * diff);
        let coef = mu * (1.0 - p);
        add_dpi(idx, e.q, e.x, w, coef, grad);
        add_dpi(idx, e.q, e.y, w, -coef, grad);
    }
}

/// Adds `coef · ∂π(v,u)/∂w` to `grad`, using only the sparse supports.
fn add_dpi(idx: &VectorIndex, v: NodeId, u: NodeId, w: &[f64], coef: f64, grad: &mut [f64]) {
    if v == u {
        return; // π(x,x) is constant 1
    }
    let s = idx.dot_node(v, w) + idx.dot_node(u, w);
    if s <= 0.0 {
        return; // π ≡ 0 in a neighbourhood: zero gradient
    }
    let p = idx.dot_pair(v, u, w);
    let inv_s = 1.0 / s;
    let a = 2.0 * coef * inv_s; // for m_vu[i]
    let b = 2.0 * coef * p * inv_s * inv_s; // for m_v[i] + m_u[i]
    for &(i, c) in idx.pair_vec(v, u) {
        grad[i as usize] += a * c;
    }
    for &(i, c) in idx.node_vec(v) {
        grad[i as usize] -= b * c;
    }
    for &(i, c) in idx.node_vec(u) {
        grad[i as usize] -= b * c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::ids::pack_pair;
    use mgp_index::Transform;
    use mgp_matching::AnchorCounts;

    /// Index with a "signal" metagraph M0 (connects q to class members) and
    /// a "noise" metagraph M1 (connects q to non-members).
    fn planted_index() -> VectorIndex {
        let mut c0 = AnchorCounts::default();
        let mut c1 = AnchorCounts::default();
        for x in [1u32, 2] {
            c0.per_pair.insert(pack_pair(NodeId(0), NodeId(x)), 3);
        }
        c0.per_node.insert(0, 6);
        c0.per_node.insert(1, 3);
        c0.per_node.insert(2, 3);
        for x in [3u32, 4] {
            c1.per_pair.insert(pack_pair(NodeId(0), NodeId(x)), 3);
        }
        c1.per_node.insert(0, 6);
        c1.per_node.insert(3, 3);
        c1.per_node.insert(4, 3);
        VectorIndex::from_counts(&[c0, c1], Transform::Raw)
    }

    fn planted_examples() -> Vec<TrainingExample> {
        let mut out = Vec::new();
        for x in [1u32, 2] {
            for y in [3u32, 4] {
                out.push(TrainingExample {
                    q: NodeId(0),
                    x: NodeId(x),
                    y: NodeId(y),
                });
            }
        }
        out
    }

    #[test]
    fn learns_to_prefer_signal_metagraph() {
        let idx = planted_index();
        let model = train(&idx, &planted_examples(), &TrainConfig::fast(1));
        assert!(
            model.weights[0] > model.weights[1] + 0.2,
            "weights: {:?}",
            model.weights
        );
        let ranking = crate::mgp::rank(&idx, NodeId(0), &model.weights, 4);
        assert!(ranking[0] == NodeId(1) || ranking[0] == NodeId(2));
        assert!(ranking[1] == NodeId(1) || ranking[1] == NodeId(2));
    }

    #[test]
    fn likelihood_improves_over_uniform() {
        let idx = planted_index();
        let ex = planted_examples();
        let uniform_ll = log_likelihood(&idx, &ex, 5.0, &[0.5, 0.5]);
        let model = train(&idx, &ex, &TrainConfig::fast(2));
        assert!(model.log_likelihood > uniform_ll);
    }

    #[test]
    fn ascent_is_monotone_in_likelihood() {
        // The line search only ever accepts improving steps, so the final
        // likelihood must be ≥ the likelihood of the raw initialisation
        // for every restart seed.
        let idx = planted_index();
        let ex = planted_examples();
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let init: Vec<f64> = (0..2).map(|_| rng.random_range(0.01..1.0)).collect();
            let init_ll = log_likelihood(&idx, &ex, 5.0, &init);
            let cfg = TrainConfig {
                restarts: 1,
                seed,
                ..TrainConfig::default()
            };
            let model = train(&idx, &ex, &cfg);
            assert!(
                model.log_likelihood >= init_ll - 1e-12,
                "seed {seed}: {} < {init_ll}",
                model.log_likelihood
            );
        }
    }

    #[test]
    fn weights_stay_in_unit_interval() {
        let idx = planted_index();
        let model = train(&idx, &planted_examples(), &TrainConfig::fast(3));
        for &w in &model.weights {
            assert!((0.0..=1.0).contains(&w), "w={w}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let idx = planted_index();
        let ex = planted_examples();
        let a = train(&idx, &ex, &TrainConfig::fast(7));
        let b = train(&idx, &ex, &TrainConfig::fast(7));
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.log_likelihood, b.log_likelihood);
    }

    #[test]
    fn empty_examples_yield_default_model() {
        let idx = planted_index();
        let model = train(&idx, &[], &TrainConfig::fast(4));
        assert_eq!(model.weights.len(), 2);
        assert_eq!(model.log_likelihood, 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let idx = planted_index();
        let ex = planted_examples();
        let w = vec![0.3, 0.7];
        let mut grad = vec![0.0; 2];
        accumulate_gradient(&idx, &ex, 5.0, &w, &mut grad);
        let eps = 1e-6;
        for i in 0..2 {
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let fd = (log_likelihood(&idx, &ex, 5.0, &wp) - log_likelihood(&idx, &ex, 5.0, &wm))
                / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-5,
                "coord {i}: fd={fd}, analytic={}",
                grad[i]
            );
        }
    }
}

//! Training example sampling.
//!
//! An example is a triple `(q, x, y)`: for query `q`, node `x` should rank
//! above node `y` (Sect. III-B, following pairwise learning-to-rank). The
//! paper generates them from training queries so that "`q` and `x` belong
//! to the desired class while `q` and `y` do not" (Sect. V-A).

use mgp_graph::NodeId;
use rand::seq::IndexedRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A pairwise ranking example: `x` ranks above `y` w.r.t. `q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainingExample {
    /// Query node.
    pub q: NodeId,
    /// Positive node (same class as `q`).
    pub x: NodeId,
    /// Negative node (not of the class w.r.t. `q`).
    pub y: NodeId,
}

/// Samples `n` training triples with purely random negatives.
///
/// * `train_queries` — the training split's query nodes;
/// * `positives(q)` — the class answers for `q`;
/// * `is_positive(q, v)` — membership test (used to reject negatives);
/// * `anchors` — all candidate anchor nodes to draw negatives from.
///
/// Returns fewer than `n` examples only if sampling keeps failing (e.g. a
/// class covering all anchors), bounded by a retry budget.
pub fn sample_examples(
    train_queries: &[NodeId],
    positives: impl FnMut(NodeId) -> Vec<NodeId>,
    is_positive: impl FnMut(NodeId, NodeId) -> bool,
    anchors: &[NodeId],
    n: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<TrainingExample> {
    sample_examples_with_pool(
        train_queries,
        positives,
        is_positive,
        anchors,
        |_| Vec::new(),
        0.0,
        n,
        rng,
    )
}

/// Samples `n` training triples, drawing a fraction of negatives from a
/// per-query *hard-negative pool*.
///
/// The paper's supervision comes from users labelling the classes of their
/// own connections (Sect. III-B), so a negative `y` is typically someone
/// *related to* `q` — just not in the desired class — rather than a random
/// stranger. With purely random negatives the likelihood saturates on easy
/// pairs and stops informing the weights (any single shared metagraph
/// separates a positive from a stranger); hard negatives force the learner
/// to tell the desired class apart from *other* relationships, which is the
/// actual search task. `hard_pool(q)` typically returns the query's index
/// partners; `hard_frac` is the probability of drawing from it.
#[allow(clippy::too_many_arguments)]
pub fn sample_examples_with_pool(
    train_queries: &[NodeId],
    mut positives: impl FnMut(NodeId) -> Vec<NodeId>,
    mut is_positive: impl FnMut(NodeId, NodeId) -> bool,
    anchors: &[NodeId],
    mut hard_pool: impl FnMut(NodeId) -> Vec<NodeId>,
    hard_frac: f64,
    n: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<TrainingExample> {
    let mut out = Vec::with_capacity(n);
    if train_queries.is_empty() || anchors.len() < 2 {
        return out;
    }
    let mut budget = n * 20;
    while out.len() < n && budget > 0 {
        budget -= 1;
        let q = *train_queries.choose(rng).expect("non-empty");
        let pos = positives(q);
        if pos.is_empty() {
            continue;
        }
        let x = pos[rng.random_range(0..pos.len())];
        let y = if hard_frac > 0.0 && rng.random_bool(hard_frac) {
            let pool = hard_pool(q);
            if pool.is_empty() {
                anchors[rng.random_range(0..anchors.len())]
            } else {
                pool[rng.random_range(0..pool.len())]
            }
        } else {
            anchors[rng.random_range(0..anchors.len())]
        };
        if y == q || y == x || is_positive(q, y) {
            continue;
        }
        out.push(TrainingExample { q, x, y });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn examples_satisfy_invariants() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let queries: Vec<NodeId> = vec![NodeId(0), NodeId(1)];
        let anchors: Vec<NodeId> = (0..10).map(NodeId).collect();
        // Positives: q0 ↔ {1, 2}; q1 ↔ {0}.
        let pos = |q: NodeId| -> Vec<NodeId> {
            match q.0 {
                0 => vec![NodeId(1), NodeId(2)],
                1 => vec![NodeId(0)],
                _ => vec![],
            }
        };
        let is_pos = |q: NodeId, v: NodeId| pos(q).contains(&v);
        let ex = sample_examples(&queries, pos, is_pos, &anchors, 50, &mut rng);
        assert_eq!(ex.len(), 50);
        for e in &ex {
            assert!(queries.contains(&e.q));
            assert!(is_pos(e.q, e.x), "x must be positive");
            assert!(!is_pos(e.q, e.y), "y must be negative");
            assert_ne!(e.y, e.q);
            assert_ne!(e.y, e.x);
        }
    }

    #[test]
    fn empty_inputs_yield_nothing() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ex = sample_examples(&[], |_| vec![], |_, _| false, &[], 10, &mut rng);
        assert!(ex.is_empty());
    }

    #[test]
    fn budget_bounds_hopeless_sampling() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Every anchor is positive → negatives cannot be drawn.
        let queries = vec![NodeId(0)];
        let anchors: Vec<NodeId> = (0..5).map(NodeId).collect();
        let ex = sample_examples(
            &queries,
            |_| (1..5).map(NodeId).collect(),
            |_, _| true,
            &anchors,
            10,
            &mut rng,
        );
        assert!(ex.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let queries = vec![NodeId(0), NodeId(1), NodeId(2)];
        let anchors: Vec<NodeId> = (0..20).map(NodeId).collect();
        let pos = |q: NodeId| vec![NodeId((q.0 + 1) % 3)];
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            sample_examples(
                &queries,
                pos,
                |q, v| pos(q).contains(&v),
                &anchors,
                20,
                &mut rng,
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}

//! # mgp-learning — metagraph-based proximity and its supervised learning
//!
//! The paper's central contribution (Sect. III): a *family* of proximity
//! measures parameterised by a characteristic weight vector `w` over
//! metagraphs,
//!
//! ```text
//! π(x, y; w) = 2 (m_xy · w) / (m_x · w + m_y · w)        (Def. 3, "MGP")
//! ```
//!
//! and a supervised procedure that learns the `w` best matching a desired
//! semantic class from pairwise ranking examples `(q, x, y)` — "`x` should
//! rank above `y` for query `q`" — by maximising a sigmoid log-likelihood
//! (Eq. 4–5) with projected gradient ascent (Eq. 6).
//!
//! Modules:
//!
//! * [`mgp`] — the measure itself plus ranking, on top of a
//!   [`mgp_index::VectorIndex`];
//! * [`examples`] — sampling training triples from ground-truth labels;
//! * [`trainer`] — the gradient-ascent optimiser with learning-rate decay,
//!   convergence detection and random restarts (paper's Sect. V-B setup);
//! * [`dual_stage`] — the candidate heuristic `H` (Eq. 7): structural
//!   similarity to high-weight seeds predicts functional usefulness
//!   (the full two-stage pipeline lives in `mgp-core`, which owns
//!   matching);
//! * [`baselines`] — MPP (metapaths only), MGP-U (uniform weights), MGP-B
//!   (single best metagraph);
//! * [`srw`] — Supervised Random Walks [Backstrom & Leskovec, WSDM 2011]:
//!   personalised PageRank with edge strengths learned from node-type
//!   features, the paper's strongest external baseline.

#![warn(missing_docs)]

pub mod baselines;
pub mod dual_stage;
pub mod examples;
pub mod explain;
pub mod mgp;
pub mod srw;
pub mod trainer;

pub use dual_stage::{candidate_ranking, functional_similarity, reverse_candidate_ranking};
pub use examples::{sample_examples, sample_examples_with_pool, TrainingExample};
pub use explain::{explain, Contribution};
pub use mgp::{proximity, rank};
pub use trainer::{train, TrainConfig, TrainedModel};

//! The dual-stage candidate heuristic (Sect. III-C, Eq. 7).
//!
//! Matching every mined metagraph is prohibitive; yet without instances
//! there is no signal about which metagraphs matter. The paper's way out:
//!
//! 1. **Seed stage** — match only the metapaths `K₀` (2–3 % of patterns,
//!    2–5× cheaper each) and train seed weights `w₀`;
//! 2. **Candidate stage** — rank the remaining metagraphs by the heuristic
//!    `H(Mⱼ) = max_{Mᵢ ∈ K₀} w₀[i] · SS(Mᵢ, Mⱼ)` — *structural similarity
//!    to a useful seed predicts functional usefulness* — then match only
//!    the top `|K|` candidates and retrain on `K₀ ∪ K`.
//!
//! This module provides the pure (matching-free) parts: the heuristic
//! ranking, its reverse (the RCH control of Fig. 10), and functional
//! similarity `FS` (Fig. 9). The full pipeline, which owns matching, lives
//! in `mgp-core`.

use mgp_metagraph::{structural_similarity, Metagraph};

/// Ranks non-seed metagraphs by the candidate heuristic `H` (Eq. 7),
/// descending. `seed_weights[i]` is the trained weight of
/// `metagraphs[seeds[i]]`.
///
/// Returns `(metagraph index, H score)` for every index not in `seeds`.
/// Ties break by index for determinism.
pub fn candidate_ranking(
    metagraphs: &[Metagraph],
    seeds: &[usize],
    seed_weights: &[f64],
) -> Vec<(usize, f64)> {
    assert_eq!(seeds.len(), seed_weights.len());
    let seed_set: Vec<bool> = {
        let mut v = vec![false; metagraphs.len()];
        for &s in seeds {
            v[s] = true;
        }
        v
    };
    let mut scored: Vec<(usize, f64)> = metagraphs
        .iter()
        .enumerate()
        .filter(|(j, _)| !seed_set[*j])
        .map(|(j, mj)| {
            let h = seeds
                .iter()
                .zip(seed_weights)
                .map(|(&i, &w)| w * structural_similarity(&metagraphs[i], mj))
                .fold(0.0f64, f64::max);
            (j, h)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored
}

/// The reverse candidate heuristic (RCH) of Fig. 10: the same scores in
/// ascending order — deliberately picking the least promising candidates.
pub fn reverse_candidate_ranking(
    metagraphs: &[Metagraph],
    seeds: &[usize],
    seed_weights: &[f64],
) -> Vec<(usize, f64)> {
    let mut r = candidate_ranking(metagraphs, seeds, seed_weights);
    r.reverse();
    r
}

/// Functional similarity `FS(Mᵢ, Mⱼ) = 1 − |w*[i] − w*[j]|` (Sect. III-C),
/// computed from the optimal weights. Used by the Fig. 9 correlation
/// experiment.
pub fn functional_similarity(wi: f64, wj: f64) -> f64 {
    1.0 - (wi - wj).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::TypeId;

    const U: TypeId = TypeId(0);
    const A: TypeId = TypeId(1);
    const B: TypeId = TypeId(2);

    fn patterns() -> Vec<Metagraph> {
        vec![
            // 0: seed metapath user-A-user
            Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap(),
            // 1: seed metapath user-B-user
            Metagraph::from_edges(&[U, B, U], &[(0, 1), (1, 2)]).unwrap(),
            // 2: joint pattern sharing A and B (similar to both seeds)
            Metagraph::from_edges(&[U, A, B, U], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
            // 3: pattern sharing two A's (similar to seed 0 only)
            Metagraph::from_edges(&[U, A, A, U], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
        ]
    }

    #[test]
    fn heuristic_prefers_structurally_similar_to_heavy_seeds() {
        let pats = patterns();
        // Seed 0 (user-A-user) is the useful one.
        let ranking = candidate_ranking(&pats, &[0, 1], &[1.0, 0.0]);
        assert_eq!(ranking.len(), 2);
        // Pattern 3 (two shared A's) is more similar to seed 0 than
        // pattern 2 (A and B) — both contain the seed, but 3 shares more
        // relative structure? Both contain the full seed path; SS differs
        // only via sizes, which are equal (8). So H ties; ties break by
        // index: pattern 2 first.
        let scores: Vec<f64> = ranking.iter().map(|&(_, h)| h).collect();
        assert!(scores[0] >= scores[1]);
        for &(_, h) in &ranking {
            assert!(h > 0.0);
        }
    }

    #[test]
    fn zero_weight_seeds_score_zero() {
        let pats = patterns();
        let ranking = candidate_ranking(&pats, &[0, 1], &[0.0, 0.0]);
        for &(_, h) in &ranking {
            assert_eq!(h, 0.0);
        }
    }

    #[test]
    fn seeds_excluded_from_ranking() {
        let pats = patterns();
        let ranking = candidate_ranking(&pats, &[0, 1], &[0.5, 0.5]);
        let indices: Vec<usize> = ranking.iter().map(|&(j, _)| j).collect();
        assert!(!indices.contains(&0));
        assert!(!indices.contains(&1));
        assert_eq!(indices.len(), 2);
    }

    #[test]
    fn reverse_is_reversed() {
        let pats = patterns();
        let ch = candidate_ranking(&pats, &[0], &[1.0]);
        let rch = reverse_candidate_ranking(&pats, &[0], &[1.0]);
        let mut expected = ch.clone();
        expected.reverse();
        assert_eq!(rch, expected);
    }

    #[test]
    fn fs_properties() {
        assert_eq!(functional_similarity(0.5, 0.5), 1.0);
        assert_eq!(functional_similarity(1.0, 0.0), 0.0);
        assert!((functional_similarity(0.9, 0.7) - 0.8).abs() < 1e-12);
        assert_eq!(
            functional_similarity(0.2, 0.6),
            functional_similarity(0.6, 0.2)
        );
    }
}

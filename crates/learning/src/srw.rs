//! Supervised Random Walks (SRW) — the paper's strongest external baseline
//! (Sect. V-B), after Backstrom & Leskovec, WSDM 2011.
//!
//! SRW is a supervised variant of personalised PageRank: each edge gets a
//! *strength* that is a learned function of its features, biasing the
//! transition matrix so that nodes the training data prefers become more
//! reachable. Following the paper, edge features are derived from the types
//! of the endpoints: one feature per unordered type pair present in the
//! graph, with strength `a_uv = exp(θ[f(u,v)])`.
//!
//! Learning maximises the same pairwise sigmoid likelihood as MGP, with the
//! gradient of the stationary distribution computed by the standard joint
//! power iteration: `∂p` is propagated alongside `p` using
//! `∂Q_uv/∂θ_k = Q_uv·(1[f(uv)=k] − Σ_{w: f(uw)=k} Q_uw)`.
//!
//! As the paper observes (and Fig. 6–7 show), random walks reduce to linear
//! path aggregations and cannot express the *joint* attribute structure
//! metagraphs capture — SRW is expected to lose to MGP on nonlinear
//! classes.

use crate::examples::TrainingExample;
use mgp_graph::{FxHashMap, Graph, NodeId, TypeId};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for SRW.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SrwConfig {
    /// Restart probability α of the personalised walk.
    pub alpha: f64,
    /// Sigmoid scale µ (kept equal to MGP's for comparability).
    pub mu: f64,
    /// Learning rate for θ.
    pub gamma: f64,
    /// Outer gradient iterations.
    pub iterations: usize,
    /// Power-iteration steps per PageRank evaluation.
    pub pr_iters: usize,
    /// Cap on distinct training queries used per iteration (PPR per query
    /// dominates cost).
    pub max_train_queries: usize,
}

impl Default for SrwConfig {
    fn default() -> Self {
        SrwConfig {
            alpha: 0.2,
            mu: 5.0,
            gamma: 1.0,
            iterations: 15,
            pr_iters: 15,
            max_train_queries: 20,
        }
    }
}

/// A trained SRW model: one parameter per edge-type-pair feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SrwModel {
    theta: Vec<f64>,
    feature_of_pair: FxHashMap<u32, usize>,
}

impl SrwModel {
    /// Number of features (distinct edge type pairs in the graph).
    pub fn n_features(&self) -> usize {
        self.theta.len()
    }

    /// The learned parameters.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    #[inline]
    fn feature(&self, g: &Graph, u: NodeId, v: NodeId) -> usize {
        let key = pair_key(g.node_type(u), g.node_type(v));
        self.feature_of_pair[&key]
    }
}

#[inline]
fn pair_key(a: TypeId, b: TypeId) -> u32 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    ((lo.0 as u32) << 16) | hi.0 as u32
}

/// Builds the feature table: every unordered type pair with ≥ 1 edge.
fn build_features(g: &Graph) -> FxHashMap<u32, usize> {
    let mut map = FxHashMap::default();
    let t = g.n_types();
    for a in 0..t {
        for b in a..t {
            let (ta, tb) = (TypeId(a as u16), TypeId(b as u16));
            if g.edge_type_count(ta, tb) > 0 {
                let next = map.len();
                map.insert(pair_key(ta, tb), next);
            }
        }
    }
    map
}

/// Trains SRW on pairwise examples.
pub fn train_srw(g: &Graph, examples: &[TrainingExample], cfg: &SrwConfig) -> SrwModel {
    let feature_of_pair = build_features(g);
    let nf = feature_of_pair.len();
    let mut model = SrwModel {
        theta: vec![0.0; nf],
        feature_of_pair,
    };
    if examples.is_empty() || nf == 0 {
        return model;
    }

    // Group examples by query, capped.
    let mut by_q: Vec<(NodeId, Vec<&TrainingExample>)> = Vec::new();
    for e in examples {
        match by_q.iter_mut().find(|(q, _)| *q == e.q) {
            Some((_, v)) => v.push(e),
            None => by_q.push((e.q, vec![e])),
        }
    }
    by_q.truncate(cfg.max_train_queries);

    for _ in 0..cfg.iterations {
        let mut grad = vec![0.0f64; nf];
        let mut n_terms = 0usize;
        for (q, exs) in &by_q {
            let (p, dp) = ppr_with_gradient(g, &model, *q, cfg.alpha, cfg.pr_iters);
            for e in exs {
                let diff = p[e.x.index()] - p[e.y.index()];
                let prob = 1.0 / (1.0 + (-cfg.mu * diff).exp());
                let coef = cfg.mu * (1.0 - prob);
                for k in 0..nf {
                    grad[k] += coef * (dp[k][e.x.index()] - dp[k][e.y.index()]);
                }
                n_terms += 1;
            }
        }
        if n_terms == 0 {
            break;
        }
        let scale = cfg.gamma / n_terms as f64;
        for (t, gk) in model.theta.iter_mut().zip(&grad) {
            *t += scale * gk;
            *t = t.clamp(-5.0, 5.0); // keep exp() well-behaved
        }
    }
    model
}

/// Personalised PageRank from `q` plus its gradient w.r.t. every feature.
///
/// Returns `(p, dp)` where `dp[k][v] = ∂p_v/∂θ_k`.
fn ppr_with_gradient(
    g: &Graph,
    model: &SrwModel,
    q: NodeId,
    alpha: f64,
    iters: usize,
) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = g.n_nodes();
    let nf = model.n_features();

    // Row-normalised transition weights and per-node feature mass.
    // strength(u→v) = exp(θ[f(u,v)]).
    let mut p = vec![0.0f64; n];
    p[q.index()] = 1.0;
    let mut dp = vec![vec![0.0f64; n]; nf];

    // Precompute per-node out-strength sums and per-node feature-mass
    // Σ_{w: f(uw)=k} Q_uw; sparse per node as (feature, mass) pairs.
    let mut inv_strength_sum = vec![0.0f64; n];
    let mut feat_mass: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for v in g.nodes() {
        let mut sum = 0.0;
        for &w in g.neighbors(v) {
            sum += model.theta[model.feature(g, v, w)].exp();
        }
        if sum > 0.0 {
            inv_strength_sum[v.index()] = 1.0 / sum;
            let mut masses: Vec<(usize, f64)> = Vec::new();
            for &w in g.neighbors(v) {
                let k = model.feature(g, v, w);
                let qv = model.theta[k].exp() / sum;
                match masses.iter_mut().find(|(kk, _)| *kk == k) {
                    Some((_, m)) => *m += qv,
                    None => masses.push((k, qv)),
                }
            }
            feat_mass[v.index()] = masses;
        }
    }

    let mut p_next = vec![0.0f64; n];
    let mut dp_next = vec![vec![0.0f64; n]; nf];
    for _ in 0..iters {
        p_next.iter_mut().for_each(|x| *x = 0.0);
        p_next[q.index()] = alpha;
        for row in dp_next.iter_mut() {
            row.iter_mut().for_each(|x| *x = 0.0);
        }
        for u in g.nodes() {
            let pu = p[u.index()];
            let inv = inv_strength_sum[u.index()];
            if inv == 0.0 {
                continue;
            }
            for &v in g.neighbors(u) {
                let k = model.feature(g, u, v);
                let quv = model.theta[k].exp() * inv;
                let step = (1.0 - alpha) * quv;
                if pu != 0.0 {
                    p_next[v.index()] += step * pu;
                }
                // dQ/dθ_j = Q·(1[j=k] − mass_u[j]); propagate.
                for j in 0..nf {
                    let dpu = dp[j][u.index()];
                    let mut contrib = step * dpu;
                    if pu != 0.0 {
                        let mass = feat_mass[u.index()]
                            .iter()
                            .find(|(jj, _)| *jj == j)
                            .map(|(_, m)| *m)
                            .unwrap_or(0.0);
                        let indicator = if j == k { 1.0 } else { 0.0 };
                        contrib += (1.0 - alpha) * pu * quv * (indicator - mass);
                    }
                    if contrib != 0.0 {
                        dp_next[j][v.index()] += contrib;
                    }
                }
            }
        }
        std::mem::swap(&mut p, &mut p_next);
        std::mem::swap(&mut dp, &mut dp_next);
    }
    (p, dp)
}

/// Plain personalised PageRank under the model's edge strengths.
pub fn ppr(g: &Graph, model: &SrwModel, q: NodeId, alpha: f64, iters: usize) -> Vec<f64> {
    let n = g.n_nodes();
    let mut strength_inv = vec![0.0f64; n];
    for v in g.nodes() {
        let sum: f64 = g
            .neighbors(v)
            .iter()
            .map(|&w| model.theta[model.feature(g, v, w)].exp())
            .sum();
        if sum > 0.0 {
            strength_inv[v.index()] = 1.0 / sum;
        }
    }
    let mut p = vec![0.0f64; n];
    p[q.index()] = 1.0;
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        next[q.index()] = alpha;
        for u in g.nodes() {
            let pu = p[u.index()];
            if pu == 0.0 {
                continue;
            }
            let inv = strength_inv[u.index()];
            if inv == 0.0 {
                continue;
            }
            for &v in g.neighbors(u) {
                let quv = model.theta[model.feature(g, u, v)].exp() * inv;
                next[v.index()] += (1.0 - alpha) * quv * pu;
            }
        }
        std::mem::swap(&mut p, &mut next);
    }
    p
}

/// Ranks anchor nodes by SRW score for query `q` (excluding `q`).
pub fn srw_rank(
    g: &Graph,
    model: &SrwModel,
    q: NodeId,
    anchor: TypeId,
    k: usize,
    cfg: &SrwConfig,
) -> Vec<NodeId> {
    let p = ppr(g, model, q, cfg.alpha, cfg.pr_iters);
    let mut scored: Vec<(f64, NodeId)> = g
        .nodes_of_type(anchor)
        .iter()
        .filter(|&&v| v != q)
        .map(|&v| (p[v.index()], v))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::GraphBuilder;

    /// q shares a hobby with x and an address with y.
    fn fork() -> (Graph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let hobby = b.add_type("hobby");
        let addr = b.add_type("address");
        let q = b.add_node(user, "q");
        let x = b.add_node(user, "x");
        let y = b.add_node(user, "y");
        let h = b.add_node(hobby, "h");
        let a = b.add_node(addr, "a");
        b.add_edge(q, h).unwrap();
        b.add_edge(x, h).unwrap();
        b.add_edge(q, a).unwrap();
        b.add_edge(y, a).unwrap();
        (b.build(), q, x, y)
    }

    #[test]
    fn untrained_walk_is_symmetric() {
        let (g, q, x, y) = fork();
        let model = SrwModel {
            feature_of_pair: build_features(&g),
            theta: vec![0.0; build_features(&g).len()],
        };
        let p = ppr(&g, &model, q, 0.2, 30);
        assert!((p[x.index()] - p[y.index()]).abs() < 1e-9);
        assert!(p[q.index()] > p[x.index()]);
    }

    #[test]
    fn training_biases_toward_preferred_edge_type() {
        let (g, q, x, y) = fork();
        let examples = vec![TrainingExample { q, x, y }];
        let cfg = SrwConfig {
            iterations: 30,
            gamma: 2.0,
            ..Default::default()
        };
        let model = train_srw(&g, &examples, &cfg);
        let p = ppr(&g, &model, q, cfg.alpha, 30);
        assert!(
            p[x.index()] > p[y.index()],
            "trained SRW should prefer x: p_x={}, p_y={}",
            p[x.index()],
            p[y.index()]
        );
        let user = g.types().id("user").unwrap();
        let ranking = srw_rank(&g, &model, q, user, 2, &cfg);
        assert_eq!(ranking[0], x);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (g, q, x, y) = fork();
        let features = build_features(&g);
        let nf = features.len();
        let theta = vec![0.3, -0.2, 0.1, 0.0][..nf].to_vec();
        let model = SrwModel {
            theta: theta.clone(),
            feature_of_pair: features.clone(),
        };
        let (p, dp) = ppr_with_gradient(&g, &model, q, 0.2, 40);
        let eps = 1e-6;
        for k in 0..nf {
            let mut tp = theta.clone();
            tp[k] += eps;
            let mp = SrwModel {
                theta: tp,
                feature_of_pair: features.clone(),
            };
            let mut tm = theta.clone();
            tm[k] -= eps;
            let mm = SrwModel {
                theta: tm,
                feature_of_pair: features.clone(),
            };
            let pp = ppr(&g, &mp, q, 0.2, 40);
            let pm = ppr(&g, &mm, q, 0.2, 40);
            for v in [x, y] {
                let fd = (pp[v.index()] - pm[v.index()]) / (2.0 * eps);
                assert!(
                    (fd - dp[k][v.index()]).abs() < 1e-4,
                    "feature {k} node {v}: fd={fd} analytic={}",
                    dp[k][v.index()]
                );
            }
        }
        // p sums to ≤ 1 (leaks only via dangling nodes; none here).
        let total: f64 = p.iter().sum();
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn empty_examples_leave_theta_zero() {
        let (g, ..) = fork();
        let model = train_srw(&g, &[], &SrwConfig::default());
        assert!(model.theta().iter().all(|&t| t == 0.0));
        assert!(model.n_features() > 0);
    }
}

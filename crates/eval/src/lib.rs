//! # mgp-eval — ranking evaluation harness
//!
//! The paper evaluates rankings with **NDCG@10** and **MAP@10** against an
//! ideal ranking that places all nodes carrying the desired class label
//! above everything else (binary relevance), averaging over test queries
//! and over **10 random 20 / 80 train–test splits** (Sect. V-A). This crate
//! provides those metrics, the split machinery, and a small runner that
//! evaluates any ranking function.

#![warn(missing_docs)]

pub mod metrics;
pub mod split;
pub mod stats;

pub use metrics::{average_precision_at, map_at, ndcg_at, precision_at, recall_at};
pub use split::{repeated_splits, Split};
pub use stats::MeanStd;

use mgp_graph::NodeId;

/// Evaluates a ranker over a set of test queries.
///
/// `positives(q)` yields the relevant nodes of query `q`; `ranker(q)`
/// produces the ranked candidates (missing relevant nodes simply score 0).
/// Returns `(mean NDCG@k, mean MAP@k)` over queries with ≥ 1 positive.
pub fn evaluate_ranker(
    queries: &[NodeId],
    k: usize,
    mut positives: impl FnMut(NodeId) -> Vec<NodeId>,
    mut ranker: impl FnMut(NodeId) -> Vec<NodeId>,
) -> (f64, f64) {
    let mut ndcg_sum = 0.0;
    let mut map_sum = 0.0;
    let mut n = 0usize;
    for &q in queries {
        let rel = positives(q);
        if rel.is_empty() {
            continue;
        }
        let ranking = ranker(q);
        ndcg_sum += ndcg_at(&ranking, &rel, k);
        map_sum += average_precision_at(&ranking, &rel, k);
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (ndcg_sum / n as f64, map_sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_averages_over_queries() {
        let queries = vec![NodeId(0), NodeId(1), NodeId(2)];
        // q0: perfect ranking; q1: relevant item at rank 2; q2: no positives
        // (skipped).
        let (ndcg, map) = evaluate_ranker(
            &queries,
            10,
            |q| match q.0 {
                0 => vec![NodeId(10)],
                1 => vec![NodeId(20)],
                _ => vec![],
            },
            |q| match q.0 {
                0 => vec![NodeId(10), NodeId(11)],
                1 => vec![NodeId(21), NodeId(20)],
                _ => vec![NodeId(1)],
            },
        );
        let expected_ndcg = (1.0 + 1.0 / 3.0f64.log2()) / 2.0;
        let expected_map = (1.0 + 0.5) / 2.0;
        assert!((ndcg - expected_ndcg).abs() < 1e-12);
        assert!((map - expected_map).abs() < 1e-12);
    }

    #[test]
    fn runner_empty_inputs() {
        let (ndcg, map) = evaluate_ranker(&[], 10, |_| vec![NodeId(0)], |_| vec![]);
        assert_eq!((ndcg, map), (0.0, 0.0));
    }
}

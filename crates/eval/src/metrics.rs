//! NDCG@k and MAP@k with binary relevance.

use mgp_graph::NodeId;

/// Discounted cumulative gain at `k` of a ranking against a binary
/// relevance set: `Σ 1 / log₂(i + 2)` over relevant positions `i < k`
/// (0-based).
fn dcg_at(ranking: &[NodeId], relevant: &[NodeId], k: usize) -> f64 {
    ranking
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, v)| relevant.contains(v))
        .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
        .sum()
}

/// Normalised DCG at `k`: DCG divided by the DCG of the ideal ranking
/// (all `min(k, |relevant|)` relevant nodes first). Returns 0 when there are
/// no relevant nodes.
pub fn ndcg_at(ranking: &[NodeId], relevant: &[NodeId], k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let ideal: f64 = (0..relevant.len().min(k))
        .map(|i| 1.0 / ((i + 2) as f64).log2())
        .sum();
    dcg_at(ranking, relevant, k) / ideal
}

/// Average precision at `k`: mean of precision@i over relevant positions
/// `i < k`, normalised by `min(|relevant|, k)`.
pub fn average_precision_at(ranking: &[NodeId], relevant: &[NodeId], k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, v) in ranking.iter().take(k).enumerate() {
        if relevant.contains(v) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len().min(k) as f64
}

/// Precision at `k`: fraction of the top `k` that are relevant.
pub fn precision_at(ranking: &[NodeId], relevant: &[NodeId], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|v| relevant.contains(v))
        .count();
    hits as f64 / k as f64
}

/// Recall at `k`: fraction of the relevant set found in the top `k`.
pub fn recall_at(ranking: &[NodeId], relevant: &[NodeId], k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|v| relevant.contains(v))
        .count();
    hits as f64 / relevant.len() as f64
}

/// Mean average precision at `k` over several `(ranking, relevant)` pairs.
pub fn map_at(cases: &[(Vec<NodeId>, Vec<NodeId>)], k: usize) -> f64 {
    if cases.is_empty() {
        return 0.0;
    }
    cases
        .iter()
        .map(|(r, rel)| average_precision_at(r, rel, k))
        .sum::<f64>()
        / cases.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let ranking = n(&[1, 2, 3, 4]);
        let rel = n(&[1, 2]);
        assert!((ndcg_at(&ranking, &rel, 10) - 1.0).abs() < 1e-12);
        assert!((average_precision_at(&ranking, &rel, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_scores_zero() {
        let ranking = n(&[5, 6, 7]);
        let rel = n(&[1]);
        assert_eq!(ndcg_at(&ranking, &rel, 10), 0.0);
        assert_eq!(average_precision_at(&ranking, &rel, 10), 0.0);
    }

    #[test]
    fn ndcg_discounts_by_position() {
        let rel = n(&[9]);
        let at1 = ndcg_at(&n(&[9, 0, 0]), &rel, 10);
        let at2 = ndcg_at(&n(&[0, 9, 0]), &rel, 10);
        let at3 = ndcg_at(&n(&[0, 0, 9]), &rel, 10);
        assert!(at1 > at2 && at2 > at3);
        assert!((at1 - 1.0).abs() < 1e-12);
        assert!((at2 - 1.0 / 3.0f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn cutoff_at_k() {
        let rel = n(&[9]);
        // Relevant item beyond the cutoff contributes nothing.
        let ranking = n(&[0, 1, 2, 3, 9]);
        assert_eq!(ndcg_at(&ranking, &rel, 4), 0.0);
        assert_eq!(average_precision_at(&ranking, &rel, 4), 0.0);
        assert!(ndcg_at(&ranking, &rel, 5) > 0.0);
    }

    #[test]
    fn ap_partial_credit() {
        // Ranking [r, x, r], 2 relevant: AP = (1/1 + 2/3)/2.
        let ranking = n(&[1, 0, 2]);
        let rel = n(&[1, 2]);
        let expect = (1.0 + 2.0 / 3.0) / 2.0;
        assert!((average_precision_at(&ranking, &rel, 10) - expect).abs() < 1e-12);
    }

    #[test]
    fn map_averages() {
        let cases = vec![
            (n(&[1]), n(&[1])),    // AP 1
            (n(&[0, 1]), n(&[1])), // AP 0.5
        ];
        assert!((map_at(&cases, 10) - 0.75).abs() < 1e-12);
        assert_eq!(map_at(&[], 10), 0.0);
    }

    #[test]
    fn metrics_bounded() {
        let ranking = n(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let rel = n(&[1, 9, 100]);
        for k in 1..10 {
            let nd = ndcg_at(&ranking, &rel, k);
            let ap = average_precision_at(&ranking, &rel, k);
            assert!((0.0..=1.0).contains(&nd));
            assert!((0.0..=1.0).contains(&ap));
        }
    }

    #[test]
    fn precision_and_recall() {
        let ranking = n(&[1, 5, 2, 6]);
        let rel = n(&[1, 2, 3]);
        assert!((precision_at(&ranking, &rel, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at(&ranking, &rel, 4) - 0.5).abs() < 1e-12);
        assert!((recall_at(&ranking, &rel, 4) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at(&ranking, &[], 4), 0.0);
        assert_eq!(precision_at(&ranking, &rel, 0), 0.0);
        // All relevant found within k ⇒ recall 1.
        assert!((recall_at(&n(&[1, 2, 3]), &rel, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relevance_or_k() {
        let ranking = n(&[1, 2]);
        assert_eq!(ndcg_at(&ranking, &[], 10), 0.0);
        assert_eq!(ndcg_at(&ranking, &n(&[1]), 0), 0.0);
        assert_eq!(average_precision_at(&ranking, &[], 10), 0.0);
        assert_eq!(average_precision_at(&ranking, &n(&[1]), 0), 0.0);
    }
}

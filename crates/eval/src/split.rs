//! Train/test query splits.

use mgp_graph::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A train/test split over query nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Training queries (the paper uses 20 %).
    pub train: Vec<NodeId>,
    /// Test queries (80 %).
    pub test: Vec<NodeId>,
}

impl Split {
    /// Randomly splits `queries`, putting `train_frac` into `train`.
    /// At least one query lands on each side when `queries.len() ≥ 2`.
    pub fn random(queries: &[NodeId], train_frac: f64, rng: &mut ChaCha8Rng) -> Split {
        let mut shuffled = queries.to_vec();
        shuffled.shuffle(rng);
        let mut n_train = ((queries.len() as f64) * train_frac).round() as usize;
        if queries.len() >= 2 {
            n_train = n_train.clamp(1, queries.len() - 1);
        } else {
            n_train = n_train.min(queries.len());
        }
        let test = shuffled.split_off(n_train);
        Split {
            train: shuffled,
            test,
        }
    }
}

/// The paper's protocol: `n_repeats` random splits (20/80 by default),
/// seeded deterministically.
pub fn repeated_splits(
    queries: &[NodeId],
    train_frac: f64,
    n_repeats: usize,
    seed: u64,
) -> Vec<Split> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n_repeats)
        .map(|_| Split::random(queries, train_frac, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queries(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn partition_is_exact() {
        let q = queries(50);
        let splits = repeated_splits(&q, 0.2, 10, 42);
        assert_eq!(splits.len(), 10);
        for s in &splits {
            assert_eq!(s.train.len(), 10);
            assert_eq!(s.test.len(), 40);
            let mut all: Vec<NodeId> = s.train.iter().chain(&s.test).copied().collect();
            all.sort_unstable();
            assert_eq!(all, q);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let q = queries(30);
        assert_eq!(
            repeated_splits(&q, 0.2, 3, 7),
            repeated_splits(&q, 0.2, 3, 7)
        );
        assert_ne!(
            repeated_splits(&q, 0.2, 3, 7),
            repeated_splits(&q, 0.2, 3, 8)
        );
    }

    #[test]
    fn splits_differ_across_repeats() {
        let q = queries(40);
        let splits = repeated_splits(&q, 0.5, 2, 1);
        assert_ne!(splits[0], splits[1]);
    }

    #[test]
    fn degenerate_sizes() {
        let one = queries(1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s = Split::random(&one, 0.2, &mut rng);
        assert_eq!(s.train.len() + s.test.len(), 1);

        let two = queries(2);
        let s = Split::random(&two, 0.01, &mut rng);
        assert_eq!(s.train.len(), 1); // clamped to keep both sides non-empty
        assert_eq!(s.test.len(), 1);

        let s = Split::random(&[], 0.2, &mut rng);
        assert!(s.train.is_empty() && s.test.is_empty());
    }
}

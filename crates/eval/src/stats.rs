//! Aggregate statistics over repeated splits.

use serde::{Deserialize, Serialize};

/// Streaming mean and (sample) standard deviation via Welford's algorithm.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanStd {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0 with fewer than 2 observations).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// `mean ± std` rendered with 4 decimals.
    pub fn display(&self) -> String {
        format!("{:.4} ± {:.4}", self.mean(), self.std())
    }
}

impl Extend<f64> for MeanStd {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_correct() {
        let mut s = MeanStd::new();
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((s.std() - 2.1380899).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cases() {
        let s = MeanStd::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        let mut s1 = MeanStd::new();
        s1.push(3.5);
        assert_eq!(s1.mean(), 3.5);
        assert_eq!(s1.std(), 0.0);
    }

    #[test]
    fn display_format() {
        let mut s = MeanStd::new();
        s.extend([1.0, 1.0]);
        assert_eq!(s.display(), "1.0000 ± 0.0000");
    }
}

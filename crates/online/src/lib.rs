//! # mgp-online — batched concurrent query serving
//!
//! The paper's headline online result (Table III) is that ranking with
//! pre-matched metagraph vectors takes ~10⁻⁴ s per query. This crate turns
//! that per-query loop (`mgp_learning::mgp::rank` over a
//! [`mgp_index::VectorIndex`]) into a serving subsystem shaped for heavy
//! traffic:
//!
//! * **Precomputed scoring over SoA posting blocks** — class
//!   registration materialises every `m_x · w` / `m_xy · w` dot product
//!   once and folds them into the final per-pair proximity. Each
//!   anchor's postings are one structure-of-arrays block: a sorted
//!   candidate-id array plus one contiguous score column per class, so
//!   serving a query is a single chunked, top-k-gated sweep of its
//!   class's column plus the verbatim tie-break sort — no arithmetic,
//!   no per-candidate lookups ([`server`]).
//! * **Sharding by anchor node** — posting blocks are partitioned across
//!   shards keyed by query node, bounding per-shard map size; shards are
//!   the unit of epoch swapping, parallel delta patching, and
//!   incremental updates ([`server::ServeConfig::shards`]).
//! * **Batched parallel ranking** — [`server::QueryServer::rank_batch`]
//!   coalesces duplicate queries, then fans the distinct misses across
//!   rayon workers in per-worker chunks; each worker reuses one scratch
//!   buffer, so the hot loop does no per-query allocation beyond the
//!   returned result.
//! * **Bounded LRU caching** — hot `(class, query, k)` results are served
//!   from an O(1) intrusive-list LRU ([`cache`]) behind `Arc`s, so hits
//!   copy nothing.
//! * **Live delta updates, insertions and deletions alike** —
//!   [`server::QueryServer::apply_delta`] follows an
//!   `mgp_index::IndexTouch`: only touched dot products are recomputed,
//!   only affected posting entries are patched (dead entries, dots and
//!   whole postings are *removed*, so churn never leaves tombstoned
//!   empties), and cache entries are generation-stamped per anchor so a
//!   delta invalidates exactly the queries whose result sets changed
//!   (lazily, no cache scan).
//! * **Ingest concurrent with serving** — shards are epoch-swapped
//!   `Arc` snapshots behind lock-free atomic pointers (the vendored
//!   `arc_swap` shim): readers pin the current epoch with one atomic
//!   load — no lock, no shared-refcount bump — writers patch
//!   copy-on-write shard clones (fanned across the rayon pool when the
//!   delta spans several shards) and install each with one pointer
//!   swap, so `apply_delta` is `&self` and queries keep flowing (each
//!   observing every shard wholly pre- or wholly post-delta) while a
//!   delta lands. Share the server between serving threads and a
//!   writer via [`server::ServerHandle`].
//! * **Multi-class fusion** — shards are shared across classes (one
//!   shard holds every class's score columns for its anchors), so
//!   [`server::QueryServer::apply_delta_fused`] lands one graph event on
//!   all classes with **one** clone/replay/swap per shard (reported as
//!   [`server::FusedDeltaStats::fused_shard_visits`] vs the per-class
//!   product), and [`server::QueryServer::rank_multi`] ranks a query for
//!   several classes from **one** pinned snapshot with one cache
//!   round-trip, every class sweeping its column of the same block.
//! * **Runtime class registration** — [`server::QueryServer::register_class`]
//!   grows a *live* server by one class under `&self`: the new class's
//!   score columns are merged into every shard through the same
//!   copy-on-write epoch swaps a delta uses, and the class table itself
//!   is swapped last, one entry longer — a reader can never observe a
//!   class id whose postings don't exist yet, and the first query served
//!   is bit-identical to a from-scratch build with that class.
//! * **Epoch GC accounting** — slow readers pin old epochs;
//!   [`server::QueryServer::epoch_stats`] gauges how many retired
//!   snapshots are still alive and how much unshared copy-on-write
//!   posting data they retain.
//! * **Latency accounting** — per-batch wall time lands in a log-bucketed
//!   [`histogram::LatencyHistogram`] (re-exported by `mgp_core::timings`),
//!   giving p50/p95/p99 over the serving lifetime.
//! * **An async front-end** — [`frontend::Frontend`] turns independent
//!   per-caller `(class, q, k)` requests back into the batches the
//!   server is fast at: micro-batching windows, duplicate coalescing
//!   (one posting walk fans one `Arc` to every waiter), and admission
//!   control that reads the epoch gauges and sheds load with a typed
//!   [`frontend::FrontendError::Overloaded`] instead of growing an
//!   unbounded queue. Degenerate requests (unknown class, `k == 0`)
//!   come back as typed errors or empty results — the serving path
//!   never panics ([`server::QueryServer::try_rank_multi_batch`] and
//!   friends).
//!
//! Results are bit-identical to `mgp_learning::mgp::rank_with_scores` —
//! same candidate order, same floating-point expression shapes, same tie
//! breaking — which the differential tests in this crate and the
//! `bench_serving` benchmark both assert.
//!
//! The usual entry point is `mgp_core::SearchEngine::serve()`, which
//! registers every trained class model; the crate is also usable directly
//! from an index + weight vector, which is what the benches do.

#![warn(missing_docs)]

pub mod cache;
pub mod frontend;
pub mod histogram;
pub mod server;

pub use cache::LruCache;
pub use frontend::{Frontend, FrontendConfig, FrontendError, FrontendStats, Ticket};
pub use histogram::{LatencyHistogram, LatencySnapshot};
pub use server::{
    ClassCacheStats, ClassDelta, ClassExport, DeltaStats, EpochPin, EpochStats, FusedDeltaStats,
    PostingExport, QueryError, QueryServer, RankedList, RegisterError, ServeConfig, ServerHandle,
    ServerStats, TableStats, ABSENT_SCORE,
};

//! A bounded LRU cache with O(1) get/put via an intrusive doubly-linked
//! list over a slot arena.
//!
//! Kept dependency-free (no crates.io access in this build environment)
//! and generic so the server can key it by `(class, query, k)`. Eviction
//! is strict LRU: `get` promotes to most-recent, `put` evicts the
//! least-recent entry once `capacity` is reached.

use mgp_graph::FxHashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded least-recently-used map.
pub struct LruCache<K, V> {
    capacity: usize,
    map: FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// insertion entirely).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: FxHashMap::default(),
            slots: Vec::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if
    /// at capacity. Replaces (and promotes) on key collision.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.map.len() >= self.capacity {
            // Reuse the LRU slot.
            let i = self.tail;
            self.unlink(i);
            let old_key = std::mem::replace(&mut self.slots[i].key, key.clone());
            self.map.remove(&old_key);
            self.slots[i].value = value;
            i
        } else if let Some(i) = self.free.pop() {
            self.slots[i].key = key.clone();
            self.slots[i].value = value;
            i
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Removes every entry, dropping all stored keys/values (a cleared
    /// cache must not pin `Arc`ed results from replaced models alive).
    /// The arena's backing allocation is kept.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_eviction_order() {
        let mut c: LruCache<u32, &'static str> = LruCache::new(2);
        c.put(1, "one");
        c.put(2, "two");
        assert_eq!(c.get(&1), Some(&"one")); // promotes 1
        c.put(3, "three"); // evicts 2 (LRU)
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), Some(&"three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_promotes() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // replace + promote 1
        c.put(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.put(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_resets_and_reuses_slots() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..3 {
            c.put(i, i);
        }
        c.clear();
        assert!(c.is_empty());
        for i in 10..16 {
            c.put(i, i);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&15), Some(&15));
        assert_eq!(c.get(&10), None); // evicted
                                      // Arena did not grow past capacity.
        assert!(c.slots.len() <= 3);
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut c: LruCache<u64, u64> = LruCache::new(8);
        for i in 0..1000u64 {
            c.put(i % 13, i);
            if let Some(&v) = c.get(&(i % 7)) {
                // Values are only ever stored under their own key.
                assert_eq!(v % 13, i % 7);
            }
            assert!(c.len() <= 8);
        }
        // The 8 most recently touched distinct keys are present.
        let mut present = 0;
        for k in 0..13 {
            if c.get(&k).is_some() {
                present += 1;
            }
        }
        assert_eq!(present, 8);
    }
}

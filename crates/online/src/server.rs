//! The [`QueryServer`]: a batched, concurrent top-k proximity ranker.
//!
//! ## From per-query loop to serving layer
//!
//! The seed's online phase answers one query at a time with
//! `mgp_learning::mgp::rank`: for query `q` it walks `q`'s index partners
//! and evaluates `π(q, v; w) = 2 (m_qv · w) / (m_q · w + m_v · w)` from the
//! sparse vectors, recomputing every dot product per candidate. A trained
//! model's weights are *fixed* at serve time, so all of those dot products
//! are query-independent — the server materialises them once per class:
//!
//! * `m_v · w` for every anchor node → one dense score per node,
//! * `m_qv · w` for every co-occurring pair → one score per posting,
//!
//! and folds both into per-query *posting lists* `q → [(v, π(q, v))]`
//! carrying the **final proximity**, partitioned into shards by `q`. A
//! query then costs one posting copy plus a top-k sort — no arithmetic,
//! no per-candidate lookups. Scores come out bit-identical to the seed
//! path because each dot is evaluated once with the same
//! `mgp_index::dot` accumulation over the same coordinate order, the
//! score uses the same final expression, and the tie-break comparator is
//! copied verbatim.
//!
//! ## Concurrency model: epoch-swapped shard snapshots
//!
//! Every shard lives behind an `RwLock<Arc<Shard>>`. Readers take the
//! read lock just long enough to clone the `Arc` — an *epoch snapshot* —
//! and then rank entirely from that snapshot without holding any lock.
//! [`QueryServer::apply_delta`] takes `&self`: the writer prepares a
//! patched **copy** of each touched shard off to the side (posting lists
//! are individually `Arc`'d, so the copy shares every untouched list and
//! deep-clones only the patched ones) and installs it with one pointer
//! swap under a momentary write lock. Serving therefore never pauses for
//! ingest; a query observes each shard either entirely pre-delta or
//! entirely post-delta, never a half-patched one.
//!
//! Generation stamps ride *inside* the shard snapshot next to the
//! postings, so the pair (generation, posting) a query reads is always
//! mutually consistent — a cache fill can never stamp a pre-delta result
//! with a post-delta generation, which is what makes the lazy
//! generation-stamped invalidation safe under concurrency. Writers to the
//! *same* class serialise on a per-class ingest lock; writers to
//! different classes, and all readers, proceed in parallel.
//!
//! [`QueryServer::rank_batch`] first coalesces duplicate queries, then
//! splits the distinct misses into one contiguous chunk per rayon
//! worker. Workers write disjoint slices of the result vector and only
//! *read* the batch's shard snapshots, so the compute phase is lock-free;
//! each worker reuses a scratch buffer across its chunk so the hot
//! loop does no per-query allocation beyond the returned lists. The
//! bounded LRU cache is consulted once before the parallel section and
//! updated once after it (two short critical sections per batch, none per
//! query).

use crate::cache::LruCache;
use crate::histogram::{LatencyHistogram, LatencySnapshot};
use mgp_graph::{FxHashMap, FxHashSet, NodeId};
use mgp_index::{IndexTouch, VectorIndex};
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A ranked result list: `(node, score)` in descending score order.
pub type RankedList = Vec<(NodeId, f64)>;

/// A shareable server handle: clone it into every serving thread while a
/// writer thread keeps calling [`QueryServer::apply_delta`] (all of it
/// `&self`) through its own clone.
pub type ServerHandle = Arc<QueryServer>;

/// Cache payload: the anchor's invalidation generation at fill time plus
/// the shared result (see the field docs on [`QueryServer`]).
type CachedEntry = (u64, Arc<RankedList>);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads for [`QueryServer::rank_batch`] (0 = available
    /// parallelism).
    pub workers: usize,
    /// Posting-list shards per class (0 = 4 × workers, at least 1).
    pub shards: usize,
    /// Bounded LRU capacity in `(class, query, k)` entries (0 disables
    /// caching).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            shards: 0,
            cache_capacity: 4096,
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            rayon::current_num_threads()
        } else {
            self.workers
        }
    }

    fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            (4 * self.resolved_workers()).max(1)
        } else {
            self.shards
        }
    }
}

/// One epoch snapshot of a shard: the anchor nodes `q` with
/// `q mod n_shards == shard_id`, each mapping to its candidate list
/// `[(v, π(q, v))]` in ascending `v` (the partner order of the index),
/// plus the per-anchor invalidation generations of exactly those anchors.
///
/// Posting lists are individually `Arc`'d so a copy-on-write shard clone
/// shares every untouched list. Generations live *in* the snapshot so a
/// reader always observes a (generation, posting) pair from the same
/// epoch.
#[derive(Debug, Default)]
struct Shard {
    postings: FxHashMap<u32, Arc<Vec<(u32, f64)>>>,
    /// Per-anchor invalidation stamp, bumped whenever the anchor's result
    /// set changes under a delta; cached entries remember the stamp they
    /// were computed at. Anchors absent from the map are at generation 0.
    generations: FxHashMap<u32, u64>,
}

impl Shard {
    fn generation(&self, q: u32) -> u64 {
        self.generations.get(&q).copied().unwrap_or(0)
    }

    /// Ranks one query into `out` using `scratch`, replicating
    /// `mgp_learning::mgp::rank_with_scores` exactly.
    fn rank_into(&self, q: NodeId, k: usize, scratch: &mut Scratch, out: &mut RankedList) {
        out.clear();
        let Some(posting) = self.postings.get(&q.0) else {
            return;
        };
        scratch.scored.clear();
        scratch
            .scored
            .extend(posting.iter().map(|&(v, score)| (score, v)));
        // Verbatim tie-break from mgp::rank_with_scores: descending score,
        // then ascending node id.
        scratch
            .scored
            .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        scratch.scored.truncate(k);
        out.extend(scratch.scored.iter().map(|&(s, v)| (NodeId(v), s)));
    }

    /// Rebuilds anchor `x`'s posting list from the index wholesale,
    /// dropping it when `x` has no partners left.
    fn rebuild_posting(
        &mut self,
        x: u32,
        index: &VectorIndex,
        w: &WriterState,
        stats: &mut DeltaStats,
    ) {
        let partners = index.partners(NodeId(x));
        if partners.is_empty() {
            if self.postings.remove(&x).is_some() {
                stats.dropped_postings += 1;
            }
        } else {
            let posting = posting_for(NodeId(x), partners, &w.node_dots, &w.pair_dots);
            self.postings.insert(x, Arc::new(posting));
            stats.rebuilt_postings += 1;
        }
    }

    /// Rescores (or inserts, for a brand-new partner) the entry for
    /// candidate `v` in anchor `q`'s posting list.
    fn patch_entry(&mut self, q: u32, v: u32, w: &WriterState, stats: &mut DeltaStats) {
        let score = score_of(q, v, &w.node_dots, &w.pair_dots);
        let posting = Arc::make_mut(self.postings.entry(q).or_default());
        match posting.binary_search_by_key(&v, |&(u, _)| u) {
            Ok(pos) => posting[pos].1 = score,
            Err(pos) => posting.insert(pos, (v, score)),
        }
        stats.patched_entries += 1;
    }

    /// Removes the dead entry for candidate `v` from anchor `q`'s posting
    /// list, dropping the posting entirely when it empties.
    fn remove_entry(&mut self, q: u32, v: u32, stats: &mut DeltaStats) {
        let Some(slot) = self.postings.get_mut(&q) else {
            return;
        };
        // Search the shared list before make_mut: a no-op remove (entry
        // already absent) must not deep-clone the posting and lose the
        // structural sharing with the previous epoch.
        let Ok(pos) = slot.binary_search_by_key(&v, |&(u, _)| u) else {
            return;
        };
        let posting = Arc::make_mut(slot);
        posting.remove(pos);
        stats.removed_entries += 1;
        if posting.is_empty() {
            self.postings.remove(&q);
            stats.dropped_postings += 1;
        }
    }
}

/// One planned posting mutation, replayed against the copy-on-write clone
/// of its shard in the order the monolithic algorithm would have applied
/// it.
enum Op {
    /// Rebuild anchor's whole posting (its own dot changed).
    Rebuild(u32),
    /// Rescore/insert the entry for candidate `.1` in anchor `.0`'s list.
    Patch(u32, u32),
    /// Remove the dead entry for candidate `.1` from anchor `.0`'s list.
    Remove(u32, u32),
}

/// Writer-side state of a class: the dot tables and weights needed to
/// score patched entries. Only [`ClassServing::apply_delta`] touches it,
/// under the per-class ingest lock — readers never look here.
struct WriterState {
    weights: Vec<f64>,
    node_dots: FxHashMap<u32, f64>,
    pair_dots: FxHashMap<u64, f64>,
}

/// A registered class: fully precomputed proximity postings sharded by
/// anchor node. For fixed weights the *entire* score
/// `π(q, v) = 2 (m_qv · w) / (m_q · w + m_v · w)` is query-independent,
/// so build time materialises final scores and serving a query is a
/// posting copy plus a top-k sort — no arithmetic, no lookups.
///
/// Shards are epoch-swapped: readers snapshot an `Arc<Shard>` per query
/// and never block on a writer; [`ClassServing::apply_delta`] swaps in
/// patched shard copies one at a time (see the module docs).
struct ClassServing {
    name: String,
    shards: Vec<RwLock<Arc<Shard>>>,
    /// Dot tables + weights, retained after build so `apply_delta` can
    /// re-dot only touched anchors/pairs. Doubles as the per-class ingest
    /// lock serialising concurrent writers.
    writer: Mutex<WriterState>,
}

impl ClassServing {
    fn build(name: &str, index: &VectorIndex, weights: &[f64], n_shards: usize) -> Self {
        // Dot-product tables, each entry evaluated once with the same
        // `mgp_index::dot` accumulation order the reference ranker uses.
        let mut node_dots: FxHashMap<u32, f64> =
            FxHashMap::with_capacity_and_hasher(index.n_nodes(), Default::default());
        for (x, v) in index.iter_nodes() {
            node_dots.insert(x.0, mgp_index::dot(v, weights));
        }
        let mut pair_dots: FxHashMap<u64, f64> =
            FxHashMap::with_capacity_and_hasher(index.n_pairs(), Default::default());
        for (key, v) in index.iter_pairs() {
            pair_dots.insert(key, mgp_index::dot(v, weights));
        }
        // Postings follow the index's partner order (ascending node id)
        // and carry the final proximity, evaluated with the same
        // expression shape as mgp::proximity (q == v cannot occur in a
        // posting: pairs are strictly unordered distinct nodes).
        let mut shards: Vec<Shard> = (0..n_shards).map(|_| Shard::default()).collect();
        for (q, partners) in index.iter_partners() {
            let posting = posting_for(q, partners, &node_dots, &pair_dots);
            shards[q.0 as usize % n_shards]
                .postings
                .insert(q.0, Arc::new(posting));
        }
        ClassServing {
            name: name.to_owned(),
            shards: shards
                .into_iter()
                .map(|s| RwLock::new(Arc::new(s)))
                .collect(),
            writer: Mutex::new(WriterState {
                weights: weights.to_vec(),
                node_dots,
                pair_dots,
            }),
        }
    }

    fn shard_of(&self, q: u32) -> usize {
        q as usize % self.shards.len()
    }

    /// Clones the current epoch snapshot of one shard — the only reader
    /// critical section, held for the duration of an `Arc` clone.
    fn snapshot_shard(&self, sid: usize) -> Arc<Shard> {
        Arc::clone(&self.shards[sid].read())
    }

    /// The epoch snapshot covering anchor `q`.
    fn snapshot(&self, q: u32) -> Arc<Shard> {
        self.snapshot_shard(self.shard_of(q))
    }

    /// Applies an index delta without pausing readers: re-dots the touched
    /// nodes/pairs (dropping dots of entries the delta erased), then plans
    /// the posting mutations — rebuild the postings of anchors whose own
    /// `m_q · w` changed (dropping postings of anchors with no partners
    /// left) and patch the individual entries those changes leak into (a
    /// changed node dot alters the denominator of every posting entry
    /// *pointing at* that node; a changed pair dot alters the two entries
    /// of that pair; a *dead* pair removes them) — and replays the plan
    /// shard by shard against copy-on-write shard clones, each installed
    /// with one pointer swap. In-flight queries keep ranking from the
    /// snapshot they already hold.
    ///
    /// `index` is the class's vector index *after*
    /// `VectorIndex::apply_delta`, so "erased" is visible as an empty
    /// vector / missing partner there — churn that nets to nothing leaves
    /// the tables bit-identical to a fresh registration, with no
    /// tombstoned empties.
    fn apply_delta(&self, index: &VectorIndex, touch: &IndexTouch, stats: &mut DeltaStats) {
        // Per-class ingest lock: one writer at a time per class. The
        // guard is reborrowed so the dot tables and weights can be
        // borrowed disjointly below.
        let mut guard = self.writer.lock();
        let w = &mut *guard;

        // Phase 1: refresh the dot tables for exactly the touched set;
        // vanished nodes/pairs leave the tables instead of staying at 0.
        let redot: FxHashSet<u32> = touch.nodes.iter().copied().collect();
        for &x in &touch.nodes {
            let vec = index.node_vec(NodeId(x));
            if vec.is_empty() {
                w.node_dots.remove(&x);
            } else {
                w.node_dots.insert(x, mgp_index::dot(vec, &w.weights));
            }
        }
        stats.redotted_nodes += touch.nodes.len();
        for &key in &touch.pairs {
            let (x, y) = mgp_graph::ids::unpack_pair(key);
            let vec = index.pair_vec(x, y);
            if vec.is_empty() {
                w.pair_dots.remove(&key);
            } else {
                w.pair_dots.insert(key, mgp_index::dot(vec, &w.weights));
            }
        }
        stats.redotted_pairs += touch.pairs.len();

        // Phase 2: plan whole-posting rebuilds for anchors with a changed
        // node dot (every entry's denominator moved, and partners may have
        // appeared or vanished).
        let n_shards = self.shards.len();
        let mut ops: FxHashMap<usize, Vec<Op>> = FxHashMap::default();
        let mut changed: FxHashSet<u32> = FxHashSet::default();
        for &x in &touch.nodes {
            ops.entry(x as usize % n_shards)
                .or_default()
                .push(Op::Rebuild(x));
            changed.insert(x);
        }

        // Phase 3: plan single-entry patches. (a) For each anchor x with a
        // changed dot, every surviving partner v of x holds an entry
        // (v → x) whose denominator moved. (b) A touched pair {x, y}
        // where neither dot changed (defensive: deltas normally touch
        // both endpoints' node counts too) needs its two entries rescored
        // — or removed, when the pair died.
        for &x in &touch.nodes {
            for &v in index.partners(NodeId(x)) {
                if redot.contains(&v) {
                    continue; // rebuilt wholesale
                }
                ops.entry(v as usize % n_shards)
                    .or_default()
                    .push(Op::Patch(v, x));
                changed.insert(v);
            }
        }
        for &key in &touch.pairs {
            let alive = w.pair_dots.contains_key(&key);
            let (x, y) = mgp_graph::ids::unpack_pair(key);
            for (q, v) in [(x.0, y.0), (y.0, x.0)] {
                if redot.contains(&q) {
                    continue;
                }
                let op = if alive {
                    Op::Patch(q, v)
                } else {
                    Op::Remove(q, v)
                };
                ops.entry(q as usize % n_shards).or_default().push(op);
                changed.insert(q);
            }
        }
        stats.invalidated_anchors += changed.len();

        // Phase 4: group the invalidation-stamp bumps of every anchor
        // whose ranking may have moved by shard. Every op's target anchor
        // is in `changed`, so the bump shards are a superset of the op
        // shards.
        let mut bumps: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
        for q in changed {
            bumps.entry(q as usize % n_shards).or_default().push(q);
        }

        // Phase 5: epoch swap. For each affected shard: clone the current
        // snapshot (Arc'd postings, so the clone is shallow until an op
        // actually touches a list), replay its ops, bump its generations,
        // and install the new epoch with one pointer swap — the only
        // writer critical section a reader can ever contend with.
        let mut affected: Vec<usize> = bumps.keys().copied().collect();
        affected.sort_unstable();
        for sid in affected {
            let cur = self.snapshot_shard(sid);
            let mut next = Shard {
                postings: cur.postings.clone(),
                generations: cur.generations.clone(),
            };
            for op in ops.remove(&sid).unwrap_or_default() {
                match op {
                    Op::Rebuild(x) => next.rebuild_posting(x, index, w, stats),
                    Op::Patch(q, v) => next.patch_entry(q, v, w, stats),
                    Op::Remove(q, v) => next.remove_entry(q, v, stats),
                }
            }
            for &q in &bumps[&sid] {
                *next.generations.entry(q).or_insert(0) += 1;
            }
            *self.shards[sid].write() = Arc::new(next);
            stats.swapped_shards += 1;
        }
    }
}

/// Per-worker reusable state: the candidate scoring buffer.
#[derive(Default)]
struct Scratch {
    scored: Vec<(f64, u32)>,
}

/// Final proximity of `(q, v)` from the dot tables — the exact expression
/// shape of `mgp_learning::mgp::proximity` for distinct nodes.
#[inline]
fn score_of(
    q: u32,
    v: u32,
    node_dots: &FxHashMap<u32, f64>,
    pair_dots: &FxHashMap<u64, f64>,
) -> f64 {
    let key = mgp_graph::ids::pack_pair(NodeId(q), NodeId(v));
    let pair_dot = pair_dots.get(&key).copied().unwrap_or(0.0);
    let nq = node_dots.get(&q).copied().unwrap_or(0.0);
    let nv = node_dots.get(&v).copied().unwrap_or(0.0);
    let denom = nq + nv;
    if denom <= 0.0 {
        0.0
    } else {
        2.0 * pair_dot / denom
    }
}

/// Materialises an anchor's posting list in the index's partner order
/// (ascending node id).
fn posting_for(
    q: NodeId,
    partners: &[u32],
    node_dots: &FxHashMap<u32, f64>,
    pair_dots: &FxHashMap<u64, f64>,
) -> Vec<(u32, f64)> {
    partners
        .iter()
        .map(|&v| (v, score_of(q.0, v, node_dots, pair_dots)))
        .collect()
}

/// Work accounting for one [`QueryServer::apply_delta`] call — evidence
/// that a delta stayed proportional to its touch set rather than the
/// class size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Node dot products recomputed.
    pub redotted_nodes: usize,
    /// Pair dot products recomputed.
    pub redotted_pairs: usize,
    /// Posting lists rebuilt wholesale (anchors whose own dot changed).
    pub rebuilt_postings: usize,
    /// Individual posting entries rescored or inserted.
    pub patched_entries: usize,
    /// Individual posting entries removed (dead pairs).
    pub removed_entries: usize,
    /// Whole posting lists dropped (anchors left with no partners).
    pub dropped_postings: usize,
    /// Anchors whose cached results were invalidated (generation bumped).
    pub invalidated_anchors: usize,
    /// Shard snapshots copy-on-write-cloned and epoch-swapped — the
    /// shards readers could observe flipping from the pre- to the
    /// post-delta epoch while this delta landed.
    pub swapped_shards: usize,
}

impl std::ops::AddAssign for DeltaStats {
    fn add_assign(&mut self, rhs: DeltaStats) {
        self.redotted_nodes += rhs.redotted_nodes;
        self.redotted_pairs += rhs.redotted_pairs;
        self.rebuilt_postings += rhs.rebuilt_postings;
        self.patched_entries += rhs.patched_entries;
        self.removed_entries += rhs.removed_entries;
        self.dropped_postings += rhs.dropped_postings;
        self.invalidated_anchors += rhs.invalidated_anchors;
        self.swapped_shards += rhs.swapped_shards;
    }
}

impl fmt::Display for DeltaStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} node / {} pair dots redone; postings: {} rebuilt, {} patched, \
             {} removed, {} dropped; {} anchors invalidated across {} shard swaps",
            self.redotted_nodes,
            self.redotted_pairs,
            self.rebuilt_postings,
            self.patched_entries,
            self.removed_entries,
            self.dropped_postings,
            self.invalidated_anchors,
            self.swapped_shards
        )
    }
}

/// Sizes of one class's precomputed serving tables — observability for
/// capacity planning, and the churn-soak tests' leak detector (a delta
/// sequence that nets to nothing must restore these exactly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Posting lists across all shards (one per anchor with partners).
    pub n_postings: usize,
    /// Total posting entries across all lists.
    pub n_posting_entries: usize,
    /// Entries in the `m_x · w` node-dot table.
    pub n_node_dots: usize,
    /// Entries in the `m_xy · w` pair-dot table.
    pub n_pair_dots: usize,
}

impl fmt::Display for TableStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} postings ({} entries), {} node dots, {} pair dots",
            self.n_postings, self.n_posting_entries, self.n_node_dots, self.n_pair_dots
        )
    }
}

/// Cache hit/miss counters and latency summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Queries answered from the LRU cache.
    pub cache_hits: u64,
    /// Queries computed from the index.
    pub cache_misses: u64,
    /// Per-batch latency summary.
    pub latency: LatencySnapshot,
}

/// A query-serving facade over one or more trained class models.
///
/// Build one via `mgp_core::SearchEngine::serve()` (which registers every
/// trained class) or manually with [`QueryServer::new`] +
/// [`QueryServer::add_class`]. Registration needs `&mut self`; everything
/// after — ranking *and* [`QueryServer::apply_delta`] — is `&self`, so the
/// built server can be shared as a [`ServerHandle`] (`Arc<QueryServer>`)
/// between serving threads and a delta-ingesting writer.
pub struct QueryServer {
    cfg: ServeConfig,
    workers: usize,
    n_shards: usize,
    classes: Vec<ClassServing>,
    /// `(class, query, k) → (anchor generation at fill time, result)`.
    /// Entries whose stamp trails the anchor's current generation are
    /// stale (the anchor's postings were patched by a delta) and are
    /// treated as misses, then overwritten — so a delta invalidates
    /// exactly the keys whose query's result set changed, lazily, without
    /// scanning the cache. Both the stamp and the result of an entry come
    /// from the same shard snapshot, so they are mutually consistent even
    /// when a fill races a delta.
    cache: Mutex<LruCache<(u32, u32, u32), CachedEntry>>,
    latency: Mutex<LatencyHistogram>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryServer {
    /// Creates an empty server.
    pub fn new(cfg: ServeConfig) -> Self {
        let workers = cfg.resolved_workers();
        let n_shards = cfg.resolved_shards();
        let cache = Mutex::new(LruCache::new(cfg.cache_capacity));
        QueryServer {
            cfg,
            workers,
            n_shards,
            classes: Vec::new(),
            cache,
            latency: Mutex::new(LatencyHistogram::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Registers a class model, precomputing its score tables. Returns the
    /// class id used by the ranking entry points. Replaces any same-named
    /// class (and drops its cached results).
    pub fn add_class(&mut self, name: &str, index: &VectorIndex, weights: &[f64]) -> usize {
        let serving = ClassServing::build(name, index, weights, self.n_shards);
        if let Some(i) = self.classes.iter().position(|c| c.name == name) {
            self.classes[i] = serving;
            // Cached entries for the replaced model are stale; class ids
            // are cache keys, so drop everything for safety.
            self.cache.lock().clear();
            i
        } else {
            self.classes.push(serving);
            self.classes.len() - 1
        }
    }

    /// The id of a registered class.
    pub fn class_id(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }

    /// Names of registered classes, in id order.
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name.as_str()).collect()
    }

    /// Number of posting-list shards per class.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Worker threads used by [`QueryServer::rank_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    fn class(&self, class_id: usize) -> &ClassServing {
        self.classes
            .get(class_id)
            .unwrap_or_else(|| panic!("unknown class id {class_id}"))
    }

    /// Ranks a single query (cache-aware). Panics on an unknown class id.
    pub fn rank(&self, class_id: usize, q: NodeId, k: usize) -> Arc<RankedList> {
        let model = self.class(class_id);
        // One snapshot serves the generation read, the cache-staleness
        // check and the ranking — all from the same epoch.
        let snap = model.snapshot(q.0);
        let gen = snap.generation(q.0);
        let key = (class_id as u32, q.0, k as u32);
        if self.cfg.cache_capacity > 0 {
            if let Some((stamp, hit)) = self.cache.lock().get(&key) {
                if *stamp == gen {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(hit);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut scratch = Scratch::default();
        let mut out = RankedList::new();
        snap.rank_into(q, k, &mut scratch, &mut out);
        let result = Arc::new(out);
        if self.cfg.cache_capacity > 0 {
            self.cache.lock().put(key, (gen, Arc::clone(&result)));
        }
        result
    }

    /// Ranks a batch of queries rayon-parallel, returning one list per
    /// query in input order. Records the batch's wall time in the latency
    /// histogram. Panics on an unknown class id.
    ///
    /// The batch pins one epoch snapshot per distinct shard up front; a
    /// delta landing mid-batch is simply not observed by this batch, and
    /// cache fills stamp each result with the generation of the snapshot
    /// that produced it.
    pub fn rank_batch(
        &self,
        class_id: usize,
        queries: &[NodeId],
        k: usize,
    ) -> Vec<Arc<RankedList>> {
        let t0 = Instant::now();
        let model = self.class(class_id);
        let mut out: Vec<Option<Arc<RankedList>>> = vec![None; queries.len()];

        // Snapshot pass: clone the epoch of every shard this batch reads.
        let n_shards = model.shards.len();
        let mut snaps: FxHashMap<usize, Arc<Shard>> = FxHashMap::default();
        for q in queries {
            let sid = q.0 as usize % n_shards;
            snaps
                .entry(sid)
                .or_insert_with(|| model.snapshot_shard(sid));
        }

        // Cache pass: one critical section for the whole batch. Entries
        // stamped with an outdated anchor generation are stale (postings
        // patched since) and fall through to recompute.
        let mut miss_idx: Vec<usize> = Vec::new();
        if self.cfg.cache_capacity > 0 {
            let mut cache = self.cache.lock();
            for (i, q) in queries.iter().enumerate() {
                let gen = snaps[&(q.0 as usize % n_shards)].generation(q.0);
                match cache.get(&(class_id as u32, q.0, k as u32)) {
                    Some((stamp, hit)) if *stamp == gen => out[i] = Some(Arc::clone(hit)),
                    _ => miss_idx.push(i),
                }
            }
        } else {
            miss_idx.extend(0..queries.len());
        }
        self.hits
            .fetch_add((queries.len() - miss_idx.len()) as u64, Ordering::Relaxed);
        self.misses
            .fetch_add(miss_idx.len() as u64, Ordering::Relaxed);

        // Coalesce duplicate misses: a batch repeating a query (hot keys
        // under real traffic, cycled batches in the benches) computes each
        // distinct query once and fans the Arc out.
        let mut slot_of: FxHashMap<u32, usize> = FxHashMap::default();
        let mut unique: Vec<NodeId> = Vec::new();
        for &i in &miss_idx {
            slot_of.entry(queries[i].0).or_insert_with(|| {
                unique.push(queries[i]);
                unique.len() - 1
            });
        }

        // Compute pass: per-worker chunks over the distinct misses,
        // lock-free (workers read only the batch's pinned snapshots), one
        // reusable scratch per worker.
        let mut computed: Vec<Option<Arc<RankedList>>> = vec![None; unique.len()];
        if !unique.is_empty() {
            let chunk = unique.len().div_ceil(self.workers);
            let snaps_ref = &snaps;
            rayon::scope(|s| {
                for (qs, outs) in unique.chunks(chunk).zip(computed.chunks_mut(chunk)) {
                    s.spawn(move |_| {
                        let mut scratch = Scratch::default();
                        for (slot, &q) in outs.iter_mut().zip(qs) {
                            let mut list = RankedList::new();
                            snaps_ref[&(q.0 as usize % n_shards)].rank_into(
                                q,
                                k,
                                &mut scratch,
                                &mut list,
                            );
                            *slot = Some(Arc::new(list));
                        }
                    });
                }
            });
        }

        // Merge + cache fill: second short critical section. Stamps come
        // from the same snapshots the results were computed from.
        if self.cfg.cache_capacity > 0 && !unique.is_empty() {
            let mut cache = self.cache.lock();
            for (q, result) in unique.iter().zip(computed.iter()) {
                let result = result.as_ref().expect("worker filled every slot");
                let gen = snaps[&(q.0 as usize % n_shards)].generation(q.0);
                cache.put((class_id as u32, q.0, k as u32), (gen, Arc::clone(result)));
            }
        }
        for i in miss_idx {
            let slot = slot_of[&queries[i].0];
            out[i] = Some(Arc::clone(
                computed[slot].as_ref().expect("worker filled every slot"),
            ));
        }

        self.latency.lock().record(t0.elapsed());
        out.into_iter()
            .map(|slot| slot.expect("every query answered"))
            .collect()
    }

    /// Single-threaded, cache-bypassing reference path: ranks each query
    /// in order with one reused scratch. Used by differential tests and
    /// the `bench_serving` baseline comparisons.
    pub fn rank_batch_sequential(
        &self,
        class_id: usize,
        queries: &[NodeId],
        k: usize,
    ) -> Vec<Arc<RankedList>> {
        let model = self.class(class_id);
        let mut scratch = Scratch::default();
        queries
            .iter()
            .map(|&q| {
                let mut list = RankedList::new();
                model.snapshot(q.0).rank_into(q, k, &mut scratch, &mut list);
                Arc::new(list)
            })
            .collect()
    }

    /// Applies an index delta to a registered class **without pausing
    /// serving**: re-dots only the touched anchors/pairs against the
    /// (already-updated) `index`, rebuilds/patches just the affected
    /// posting entries in copy-on-write clones of the touched shards,
    /// epoch-swaps each clone in with one pointer write, and bumps the
    /// invalidation generation of exactly the anchors whose result sets
    /// changed — cached entries for untouched queries keep serving, and
    /// concurrent `rank`/`rank_batch` calls keep flowing throughout,
    /// each observing every shard either pre- or post-delta, never torn.
    ///
    /// Concurrent deltas to the *same* class serialise on a per-class
    /// ingest lock; deltas to different classes run in parallel.
    ///
    /// `index` must be the class's vector index *after*
    /// `VectorIndex::apply_delta` returned `touch`, and the class's
    /// weights are the ones it was registered with (deltas never retrain).
    /// Results afterwards are bit-identical to re-registering the class
    /// from the updated index (asserted by tests and the
    /// `bench_incremental` acceptance check). Panics on an unknown class
    /// id.
    pub fn apply_delta(
        &self,
        class_id: usize,
        index: &VectorIndex,
        touch: &IndexTouch,
    ) -> DeltaStats {
        let mut stats = DeltaStats::default();
        self.class(class_id).apply_delta(index, touch, &mut stats);
        stats
    }

    /// The invalidation generation of an anchor in a class (0 until a
    /// delta changes the anchor's result set). Cached results are stamped
    /// with this at fill time; a stamp behind the current generation is
    /// stale. Exposed so tests and operators can verify that a delta
    /// invalidated exactly the anchors it should have.
    pub fn anchor_generation(&self, class_id: usize, q: NodeId) -> u64 {
        self.class(class_id).snapshot(q.0).generation(q.0)
    }

    /// Sizes of a class's serving tables (postings, dot tables). A churn
    /// sequence that nets to nothing restores these exactly — no leaked
    /// empty entries. Panics on an unknown class id.
    ///
    /// Serialises with in-flight deltas on the per-class ingest lock, so
    /// the reported totals always describe one delta boundary — never a
    /// mix of shards from different epochs (a concurrent call blocks
    /// until the in-flight delta finishes; readers are unaffected).
    pub fn table_stats(&self, class_id: usize) -> TableStats {
        let class = self.class(class_id);
        // Ingest lock first, shard reads second — the same order
        // `apply_delta` takes them, so no deadlock and no torn totals.
        let w = class.writer.lock();
        let mut t = TableStats {
            n_node_dots: w.node_dots.len(),
            n_pair_dots: w.pair_dots.len(),
            ..Default::default()
        };
        for sid in 0..class.shards.len() {
            let snap = class.snapshot_shard(sid);
            t.n_postings += snap.postings.len();
            t.n_posting_entries += snap.postings.values().map(|p| p.len()).sum::<usize>();
        }
        t
    }

    /// Cache and latency counters accumulated since construction.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            latency: self.latency.lock().snapshot(),
        }
    }

    /// Drops every cached result (stats are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_index::{Transform, VectorIndex};
    use mgp_matching::AnchorCounts;

    /// Small consistent index: M0 links (1,2) and (1,3); M1 links (2,3)
    /// and (1,2) with different counts — enough for distinct rankings.
    fn sample_index() -> VectorIndex {
        let mut c0 = AnchorCounts::default();
        let mut c1 = AnchorCounts::default();
        let ins = |c: &mut AnchorCounts, x: u32, y: u32, n: u64| {
            c.per_pair
                .insert(mgp_graph::ids::pack_pair(NodeId(x), NodeId(y)), n);
            *c.per_node.entry(x).or_insert(0) += n;
            *c.per_node.entry(y).or_insert(0) += n;
        };
        ins(&mut c0, 1, 2, 4);
        ins(&mut c0, 1, 3, 1);
        ins(&mut c1, 2, 3, 2);
        ins(&mut c1, 1, 2, 1);
        VectorIndex::from_counts(&[c0, c1], Transform::Raw)
    }

    fn server(cache: usize) -> (QueryServer, VectorIndex, Vec<f64>) {
        let idx = sample_index();
        let w = vec![0.7, 0.3];
        let mut srv = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: cache,
        });
        srv.add_class("demo", &idx, &w);
        (srv, idx, w)
    }

    fn reference(idx: &VectorIndex, w: &[f64], q: NodeId, k: usize) -> RankedList {
        mgp_learning::mgp::rank_with_scores(idx, q, w, k)
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryServer>();
        assert_send_sync::<ServerHandle>();
    }

    #[test]
    fn matches_reference_ranker_exactly() {
        let (srv, idx, w) = server(0);
        for q in 0..6u32 {
            for k in [0, 1, 2, 10] {
                let got = srv.rank(0, NodeId(q), k);
                let want = reference(&idx, &w, NodeId(q), k);
                assert_eq!(*got, want, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_and_reference() {
        let (srv, idx, w) = server(0);
        let queries: Vec<NodeId> = (0..40).map(|i| NodeId(i % 5)).collect();
        let batch = srv.rank_batch(0, &queries, 3);
        let seq = srv.rank_batch_sequential(0, &queries, 3);
        assert_eq!(batch.len(), queries.len());
        for ((b, s), &q) in batch.iter().zip(&seq).zip(&queries) {
            assert_eq!(**b, **s);
            assert_eq!(**b, reference(&idx, &w, q, 3));
        }
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let (srv, _, _) = server(16);
        let q = NodeId(1);
        let a = srv.rank(0, q, 2);
        let b = srv.rank(0, q, 2);
        assert_eq!(*a, *b);
        // Same Arc served from cache.
        assert!(Arc::ptr_eq(&a, &b));
        let stats = srv.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        // Different k is a different cache entry.
        let _ = srv.rank(0, q, 1);
        assert_eq!(srv.stats().cache_misses, 2);
    }

    #[test]
    fn batch_cache_interplay() {
        let (srv, _, _) = server(16);
        let queries: Vec<NodeId> = vec![NodeId(1), NodeId(2), NodeId(1), NodeId(3)];
        // First batch: 1 is deduped through the cache? No — the cache is
        // filled after the compute pass, so the first batch misses all 4.
        let first = srv.rank_batch(0, &queries, 2);
        let s1 = srv.stats();
        assert_eq!(s1.cache_misses, 4);
        // Second identical batch: all hits, equal values; duplicates now
        // share one cached Arc.
        let second = srv.rank_batch(0, &queries, 2);
        let s2 = srv.stats();
        assert_eq!(s2.cache_hits, 4);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(**a, **b);
        }
        assert!(Arc::ptr_eq(&second[0], &second[2]));
        assert_eq!(s2.latency.count, 2, "two batches recorded");
    }

    #[test]
    fn cache_eviction_keeps_serving_correct() {
        let (srv, idx, w) = server(2);
        for round in 0..3 {
            for q in 0..5u32 {
                let got = srv.rank(0, NodeId(q), 2);
                assert_eq!(
                    *got,
                    reference(&idx, &w, NodeId(q), 2),
                    "round {round} q={q}"
                );
            }
        }
    }

    #[test]
    fn unknown_query_is_empty_not_error() {
        let (srv, _, _) = server(4);
        assert!(srv.rank(0, NodeId(999), 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown class id")]
    fn unknown_class_panics() {
        let (srv, _, _) = server(0);
        let _ = srv.rank(7, NodeId(1), 1);
    }

    #[test]
    fn replacing_a_class_clears_its_cache() {
        let (mut srv, idx, _) = server(16);
        let before = srv.rank(0, NodeId(1), 2);
        // Re-register with flipped weights: ranking changes.
        let w2 = vec![0.0, 1.0];
        let id = srv.add_class("demo", &idx, &w2);
        assert_eq!(id, 0);
        let after = srv.rank(0, NodeId(1), 2);
        assert_eq!(*after, reference(&idx, &w2, NodeId(1), 2));
        assert_ne!(*before, *after);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (srv, _, _) = server(4);
        assert!(srv.rank_batch(0, &[], 3).is_empty());
    }

    /// Applies a count delta to both the index and the server, asserting
    /// the server now answers identically to a freshly registered class
    /// over the updated index. `apply_delta` goes through `&self` — the
    /// server is shared, not exclusively borrowed.
    fn apply_and_check(
        srv: &QueryServer,
        idx: &mut VectorIndex,
        w: &[f64],
        delta: mgp_index::IndexDelta,
    ) -> DeltaStats {
        let touch = idx.apply_delta(&delta);
        let stats = srv.apply_delta(0, idx, &touch);
        let mut fresh = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 0,
        });
        fresh.add_class("fresh", idx, w);
        for q in 0..8u32 {
            for k in [1, 3, 10] {
                assert_eq!(
                    *srv.rank(0, NodeId(q), k),
                    *fresh.rank(0, NodeId(q), k),
                    "q={q} k={k} after delta"
                );
                assert_eq!(
                    *srv.rank(0, NodeId(q), k),
                    reference(idx, w, NodeId(q), k),
                    "q={q} k={k} vs reference"
                );
            }
        }
        stats
    }

    fn count_delta(
        node: &[(u32, i64)],
        pairs: &[((u32, u32), i64)],
        coord: usize,
        n: usize,
    ) -> mgp_index::IndexDelta {
        let mut d = mgp_index::IndexDelta::empty(n);
        for &(x, c) in node {
            d.counts[coord].per_node.insert(x, c);
        }
        for &((x, y), c) in pairs {
            d.counts[coord]
                .per_pair
                .insert(mgp_graph::ids::pack_pair(NodeId(x), NodeId(y)), c);
        }
        d
    }

    #[test]
    fn delta_patch_matches_full_reregistration() {
        let (srv, mut idx, w) = server(16);
        // Bump an existing pair (1,2) on coordinate 0.
        let stats = apply_and_check(
            &srv,
            &mut idx,
            &w,
            count_delta(&[(1, 2), (2, 2)], &[((1, 2), 2)], 0, 2),
        );
        assert_eq!(stats.redotted_nodes, 2);
        assert_eq!(stats.redotted_pairs, 1);
        assert_eq!(stats.rebuilt_postings, 2);
        // Nodes 1, 2 rebuilt; partner entries pointing at them patched.
        assert!(stats.patched_entries > 0);
        assert!(stats.invalidated_anchors >= 2);
        // Every invalidated anchor's shard was epoch-swapped (3 shards,
        // anchors 1, 2, 3 all changed → all 3 swapped).
        assert!(stats.swapped_shards >= 1 && stats.swapped_shards <= 3);
    }

    #[test]
    fn delta_with_new_pair_and_new_node() {
        let (srv, mut idx, w) = server(16);
        // Node 4 never seen before; new pair (3,4) on coordinate 1.
        apply_and_check(
            &srv,
            &mut idx,
            &w,
            count_delta(&[(3, 1), (4, 1)], &[((3, 4), 1)], 1, 2),
        );
        // 4 is now rankable and 3's posting gained an entry.
        assert_eq!(srv.rank(0, NodeId(4), 5).len(), 1);
        assert!(srv
            .rank(0, NodeId(3), 5)
            .iter()
            .any(|&(v, _)| v == NodeId(4)));
    }

    #[test]
    fn delta_invalidates_only_changed_queries() {
        let (srv, mut idx, w) = server(32);
        // Warm the cache for all anchors.
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let before = srv.stats();
        assert_eq!(before.cache_misses, 3);

        // Touch only the pair (2,3): anchors 2 and 3 change; their node
        // dots also move, patching entries that point at them (1 holds an
        // entry for 2 → 1's results change too in general). Use a delta
        // touching only node 3's count instead for a clean split: anchors
        // with 3 in their partner list are 1 (via M1) and 2 (via M1).
        let touch = idx.apply_delta(&count_delta(&[(3, 5)], &[], 1, 2));
        srv.apply_delta(0, &idx, &touch);

        // Anchor 3 and its partners 1, 2 were invalidated...
        let s1 = srv.stats();
        let _ = srv.rank(0, NodeId(3), 2);
        assert_eq!(srv.stats().cache_misses, s1.cache_misses + 1);
        // ...and recomputed answers match a fresh registration.
        let mut fresh = QueryServer::new(ServeConfig::default());
        fresh.add_class("fresh", &idx, &w);
        for q in 1..4u32 {
            assert_eq!(*srv.rank(0, NodeId(q), 2), *fresh.rank(0, NodeId(q), 2));
        }
    }

    #[test]
    fn untouched_queries_keep_their_cache_entries() {
        let (srv, mut idx, _) = server(32);
        // Anchor 1's partners are 2 and 3; a delta touching node 9 (an
        // isolated newcomer with no pairs) changes nobody's results.
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let touch = idx.apply_delta(&count_delta(&[(9, 1)], &[], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        let before = srv.stats();
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let after = srv.stats();
        // 9 has no partners: every repeat query was a cache hit except 9's
        // own (rebuilt, empty) posting — queries 1..4 all hit.
        assert_eq!(after.cache_hits, before.cache_hits + 3);
        assert_eq!(after.cache_misses, before.cache_misses);
    }

    #[test]
    #[should_panic(expected = "unknown class id")]
    fn delta_on_unknown_class_panics() {
        let (srv, idx, _) = server(4);
        let touch = mgp_index::IndexTouch::default();
        let _ = srv.apply_delta(9, &idx, &touch);
    }

    #[test]
    fn deletion_patch_matches_full_reregistration() {
        let (srv, mut idx, w) = server(16);
        // Kill pair (1,3) on coordinate 0 (its only coordinate): its
        // entries must vanish from both endpoints' postings.
        let stats = apply_and_check(
            &srv,
            &mut idx,
            &w,
            count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2),
        );
        assert_eq!(stats.redotted_nodes, 2);
        assert_eq!(stats.redotted_pairs, 1);
        // 1 and 3 remain partners through M1's pair (1,3)? No — the
        // sample index pairs are (1,2),(1,3) on M0 and (2,3),(1,2) on M1;
        // killing (1,3) on M0 removes the pair entirely.
        assert!(!srv
            .rank(0, NodeId(1), 5)
            .iter()
            .any(|&(v, _)| v == NodeId(3)));
        assert!(!srv
            .rank(0, NodeId(3), 5)
            .iter()
            .any(|&(v, _)| v == NodeId(1)));
    }

    #[test]
    fn deletion_that_empties_an_anchor_drops_its_posting() {
        let (srv, mut idx, w) = server(16);
        let before = srv.table_stats(0);
        // Remove every contribution node 3 has: pair (1,3) on M0 and
        // pair (2,3) on M1, with the matching node decrements.
        let mut d = count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2);
        let d2 = count_delta(&[(2, -2), (3, -2)], &[((2, 3), -2)], 1, 2);
        d.counts[1] = d2.counts[1].clone();
        apply_and_check(&srv, &mut idx, &w, d);
        // Node 3 is unrankable and holds no serving state at all.
        assert!(srv.rank(0, NodeId(3), 5).is_empty());
        let after = srv.table_stats(0);
        assert_eq!(after.n_postings, before.n_postings - 1);
        assert_eq!(after.n_pair_dots, before.n_pair_dots - 2);
        assert_eq!(after.n_node_dots, before.n_node_dots - 1);
    }

    #[test]
    fn churn_roundtrip_restores_tables_exactly() {
        let (srv, mut idx, w) = server(16);
        let before = srv.table_stats(0);
        // Forward: kill pair (1,3), add brand-new pair (4,5).
        let mut fwd = count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2);
        fwd.counts[1] = count_delta(&[(4, 3), (5, 3)], &[((4, 5), 3)], 1, 2).counts[1].clone();
        apply_and_check(&srv, &mut idx, &w, fwd);
        assert_ne!(srv.table_stats(0), before);
        // Backward: exact inverse.
        let mut bwd = count_delta(&[(1, 1), (3, 1)], &[((1, 3), 1)], 0, 2);
        bwd.counts[1] = count_delta(&[(4, -3), (5, -3)], &[((4, 5), -3)], 1, 2).counts[1].clone();
        apply_and_check(&srv, &mut idx, &w, bwd);
        // Tables restored exactly: same posting/dot footprint, no leaked
        // empties from the churn.
        assert_eq!(srv.table_stats(0), before);
        assert!(srv.rank(0, NodeId(4), 5).is_empty());
    }

    /// Satellite: a query whose result set is unchanged by a delta keeps
    /// serving from cache — its generation stamp is untouched — for both
    /// an insertion-only and a deletion-only delta.
    #[test]
    fn unchanged_result_set_still_serves_from_cache() {
        let (srv, mut idx, _) = server(32);
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let gens: Vec<u64> = (1..4)
            .map(|q| srv.anchor_generation(0, NodeId(q)))
            .collect();

        // Insertion far away: brand-new pair (8,9) on coordinate 0.
        let touch = idx.apply_delta(&count_delta(&[(8, 1), (9, 1)], &[((8, 9), 1)], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        for (i, q) in (1..4u32).enumerate() {
            assert_eq!(srv.anchor_generation(0, NodeId(q)), gens[i], "insert");
        }
        let s0 = srv.stats();
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        assert_eq!(srv.stats().cache_hits, s0.cache_hits + 3);
        assert_eq!(srv.stats().cache_misses, s0.cache_misses);

        // Deletion of the same far-away pair: still nobody's result set
        // in 1..4 changed — still all cache hits, stamps untouched.
        let touch = idx.apply_delta(&count_delta(&[(8, -1), (9, -1)], &[((8, 9), -1)], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        for (i, q) in (1..4u32).enumerate() {
            assert_eq!(srv.anchor_generation(0, NodeId(q)), gens[i], "delete");
        }
        let s1 = srv.stats();
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        assert_eq!(srv.stats().cache_hits, s1.cache_hits + 3);
        assert_eq!(srv.stats().cache_misses, s1.cache_misses);
        // ...while the churned anchors 8/9 were invalidated and emptied.
        assert!(srv.rank(0, NodeId(8), 2).is_empty());
        assert!(srv.anchor_generation(0, NodeId(8)) > 0);
    }

    #[test]
    fn multiple_classes_are_independent() {
        let idx = sample_index();
        let mut srv = QueryServer::new(ServeConfig::default());
        let a = srv.add_class("m0", &idx, &[1.0, 0.0]);
        let b = srv.add_class("m1", &idx, &[0.0, 1.0]);
        assert_eq!(srv.class_names(), vec!["m0", "m1"]);
        assert_eq!(srv.class_id("m1"), Some(b));
        let ra = srv.rank(a, NodeId(2), 1);
        let rb = srv.rank(b, NodeId(2), 1);
        // Under M0-only weights node 2's best is 1; under M1-only it's 3.
        assert_eq!(ra[0].0, NodeId(1));
        assert_eq!(rb[0].0, NodeId(3));
    }

    /// Tentpole: queries flow while a delta lands. Readers hammer the
    /// shared server from other threads while this thread applies a
    /// delta through `&self` — no `&mut` anywhere after registration.
    #[test]
    fn rank_batch_runs_concurrently_with_apply_delta() {
        let (srv, mut idx, w) = server(64);
        let srv = Arc::new(srv);
        let queries: Vec<NodeId> = (0..6u32).map(NodeId).collect();
        let stop = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let batch = srv.rank_batch(0, &queries, 3);
                        assert_eq!(batch.len(), queries.len());
                    }
                });
            }
            // Writer: a burst of forward/backward deltas on pair (1,2).
            for round in 0..20 {
                let sign = if round % 2 == 0 { 1 } else { -1 };
                let touch = idx.apply_delta(&count_delta(
                    &[(1, sign), (2, sign)],
                    &[((1, 2), sign)],
                    0,
                    2,
                ));
                let stats = srv.apply_delta(0, &idx, &touch);
                assert!(stats.swapped_shards > 0);
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Settled state answers like a fresh registration.
        let mut fresh = QueryServer::new(ServeConfig::default());
        fresh.add_class("fresh", &idx, &w);
        for &q in &queries {
            assert_eq!(*srv.rank(0, q, 3), *fresh.rank(0, q, 3));
        }
    }

    #[test]
    fn delta_stats_display_and_sum() {
        let mut a = DeltaStats {
            redotted_nodes: 2,
            redotted_pairs: 1,
            rebuilt_postings: 2,
            patched_entries: 3,
            removed_entries: 1,
            dropped_postings: 1,
            invalidated_anchors: 4,
            swapped_shards: 2,
        };
        let shown = a.to_string();
        assert!(shown.contains("2 node / 1 pair dots"), "{shown}");
        assert!(shown.contains("2 shard swaps"), "{shown}");
        a += a;
        assert_eq!(a.redotted_nodes, 4);
        assert_eq!(a.swapped_shards, 4);

        let t = TableStats {
            n_postings: 3,
            n_posting_entries: 6,
            n_node_dots: 4,
            n_pair_dots: 3,
        };
        assert_eq!(
            t.to_string(),
            "3 postings (6 entries), 4 node dots, 3 pair dots"
        );
    }
}

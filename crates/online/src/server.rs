//! The [`QueryServer`]: a batched, concurrent top-k proximity ranker.
//!
//! ## From per-query loop to serving layer
//!
//! The seed's online phase answers one query at a time with
//! `mgp_learning::mgp::rank`: for query `q` it walks `q`'s index partners
//! and evaluates `π(q, v; w) = 2 (m_qv · w) / (m_q · w + m_v · w)` from the
//! sparse vectors, recomputing every dot product per candidate. A trained
//! model's weights are *fixed* at serve time, so all of those dot products
//! are query-independent — the server materialises them once per class:
//!
//! * `m_v · w` for every anchor node → one dense score per node,
//! * `m_qv · w` for every co-occurring pair → one score per posting,
//!
//! and folds both into per-anchor **fused posting blocks** carrying the
//! **final proximity**, partitioned into shards by `q`. A query then
//! costs one contiguous column sweep plus a top-k sort — no arithmetic,
//! no per-candidate lookups. Scores come out bit-identical to the seed
//! path because each dot is evaluated once with the same
//! `mgp_index::dot` accumulation over the same coordinate order, the
//! score uses the same final expression, and the tie-break comparator is
//! copied verbatim.
//!
//! ## Fused posting layout: one block per anchor, one column per class
//!
//! Each anchor `q` owns a single structure-of-arrays `FusedBlock`:
//! one sorted candidate-id array shared by every class, plus one dense
//! `f64` score column **per registered class** (absent `(class,
//! candidate)` combinations hold a sentinel). Ranking class `c` for `q`
//! is one branch-light sweep over `columns[c]` in fixed-width chunks —
//! a chunk whose maximum can't reach the current top-k gate is skipped
//! wholesale, and the loop shape auto-vectorizes — so
//! [`QueryServer::rank_multi`] walks N classes over **one** hot
//! candidate array instead of N pointer-chased posting lists. Delta
//! replay patches score columns in place and rebuilds an anchor's block
//! only when its candidate union actually changes.
//!
//! ## Concurrency model: epoch-swapped shard snapshots
//!
//! Shards live at the **server** level: shard `q mod n` carries *every*
//! registered class's columns for the anchors it owns. Every shard sits
//! behind an `arc_swap::ArcSwap<Shard>`: readers pin the current epoch
//! with **one atomic load** (no lock, no reference-count contention) and
//! then rank entirely from that snapshot; because one snapshot covers
//! all classes, a multi-class query ([`QueryServer::rank_multi`]) pins
//! exactly one epoch however many classes it ranks.
//! [`QueryServer::apply_delta`] takes `&self`: the writer prepares a
//! patched **copy** of each touched shard off to the side (blocks are
//! individually `Arc`'d, so the copy shares every untouched block and
//! deep-clones only the patched ones) and installs it with one atomic
//! pointer swap; the replaced epoch is reclaimed only after every
//! in-flight reader pin has drained. Serving therefore never pauses for
//! ingest; a query observes each shard either entirely pre-delta or
//! entirely post-delta, never a half-patched one. Independent shards of
//! one wide delta are patched **in parallel** across the rayon pool
//! (see [`QueryServer::apply_delta_fused`]).
//!
//! ## Multi-class fusion
//!
//! One graph event usually touches *every* class (classes share the
//! per-pattern instance deltas upstream). [`QueryServer::apply_delta_fused`]
//! therefore plans the posting ops of **all** classes first and then
//! visits each affected shard **once**: one copy-on-write clone, one
//! replay covering every class's ops, one pointer swap — instead of the
//! `classes × shards` clone/swap cycles that per-class application costs.
//! The saving is reported as [`FusedDeltaStats::fused_shard_visits`]
//! against the per-class sum. Writers to a shard serialise on a
//! per-shard patch lock (readers never touch it), so concurrent
//! different-class deltas still interleave safely at shard granularity.
//!
//! Generation stamps ride *inside* the shard snapshot next to the
//! postings, so the pair (generation, posting) a query reads is always
//! mutually consistent — a cache fill can never stamp a pre-delta result
//! with a post-delta generation, which is what makes the lazy
//! generation-stamped invalidation safe under concurrency. Writers to the
//! *same* class serialise on a per-class ingest lock; writers to
//! different classes, and all readers, proceed in parallel.
//!
//! [`QueryServer::rank_batch`] first coalesces duplicate queries, then
//! splits the distinct misses into one contiguous chunk per rayon
//! worker. Workers write disjoint slices of the result vector and only
//! *read* the batch's shard snapshots, so the compute phase is lock-free;
//! each worker reuses a scratch buffer across its chunk so the hot
//! loop does no per-query allocation beyond the returned lists. The
//! bounded LRU cache is consulted once before the parallel section and
//! updated once after it (two short critical sections per batch, none per
//! query).

use crate::cache::LruCache;
use crate::histogram::{LatencyHistogram, LatencySnapshot};
use arc_swap::ArcSwap;
use mgp_graph::{FxHashMap, FxHashSet, NodeId};
use mgp_index::{IndexTouch, VectorIndex};
use parking_lot::{Mutex, MutexGuard};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// A ranked result list: `(node, score)` in descending score order.
pub type RankedList = Vec<(NodeId, f64)>;

/// A shareable server handle: clone it into every serving thread while a
/// writer thread keeps calling [`QueryServer::apply_delta`] (all of it
/// `&self`) through its own clone.
pub type ServerHandle = Arc<QueryServer>;

/// Cache payload: the anchor's invalidation generation at fill time plus
/// the shared result (see the field docs on [`QueryServer`]).
type CachedEntry = (u64, Arc<RankedList>);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads for [`QueryServer::rank_batch`] (0 = available
    /// parallelism).
    pub workers: usize,
    /// Posting-list shards per class (0 = 4 × workers, at least 1).
    pub shards: usize,
    /// Bounded LRU capacity in `(class, query, k)` entries (0 disables
    /// caching).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            shards: 0,
            cache_capacity: 4096,
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            rayon::current_num_threads()
        } else {
            self.workers
        }
    }

    fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            (4 * self.resolved_workers()).max(1)
        } else {
            self.shards
        }
    }
}

/// Score sentinel for a `(class, candidate)` combination with no posting
/// entry. `NEG_INFINITY` (not `NaN`) so the sentinel stays inside the
/// comparator's total order — the verbatim tie-break uses
/// `partial_cmp().unwrap()`, which a `NaN` would panic. Real proximities
/// are always finite (finite count vectors and weights produce finite
/// dots, and `score_of` returns `0.0` for a non-positive denominator),
/// so the sentinel can never collide with a live score.
const ABSENT: f64 = f64::NEG_INFINITY;

/// The sentinel marking "this class has no entry for this candidate" in
/// an exported score column ([`PostingExport::columns`]). Snapshot
/// readers and writers must preserve it bit-for-bit.
pub const ABSENT_SCORE: f64 = ABSENT;

/// One anchor's fused posting block in export form — the payload
/// [`QueryServer::export_postings`] emits and
/// [`QueryServer::from_parts`] installs. The field layout mirrors the
/// internal structure-of-arrays block: one ascending candidate array
/// plus one dense score column per class slot (a column may be missing
/// for classes registered after the block was last rebuilt, which is
/// equivalent to all-[`ABSENT_SCORE`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PostingExport {
    /// The anchor (query) node id owning this block.
    pub anchor: u32,
    /// Candidate node ids, strictly ascending — the union of every
    /// class's partner set for this anchor.
    pub candidates: Vec<u32>,
    /// Per-class-slot score columns, each exactly `candidates.len()`
    /// long; absent entries hold [`ABSENT_SCORE`].
    pub columns: Vec<Vec<f64>>,
}

/// A class to register on the warm-start path
/// ([`QueryServer::from_parts`]): the same `(name, index, weights)`
/// triple [`QueryServer::add_class`] takes, borrowed so callers can
/// hand over their model storage without cloning.
#[derive(Debug, Clone, Copy)]
pub struct ClassExport<'a> {
    /// Class name (the id is the position in the slice).
    pub name: &'a str,
    /// The class's restricted vector index.
    pub index: &'a VectorIndex,
    /// Learned weights, one per index coordinate.
    pub weights: &'a [f64],
}

/// Chunk width of the fused scoring sweep: the per-chunk max reduction
/// and the gated copy both run over fixed 8-wide lanes, the shape LLVM
/// auto-vectorizes on every target with 128/256-bit vector units.
const LANES: usize = 8;

/// One anchor's fused posting block, structure-of-arrays: a single
/// candidate-id array sorted ascending (the union of every class's
/// partner set) plus one dense score column **per class slot**, aligned
/// index-for-index with `candidates`. A candidate a class has no entry
/// for holds [`ABSENT`] in that class's column.
///
/// Columns may be *shorter* than the server's class-slot count: a block
/// untouched since before a class registered simply has no column for it
/// (equivalent to all-[`ABSENT`]). Blocks are individually `Arc`'d so a
/// copy-on-write shard clone shares every untouched block; delta replay
/// writes score columns in place (under `Arc::make_mut`) and only
/// rebuilds a block when its candidate union changes.
#[derive(Debug, Default, Clone)]
struct FusedBlock {
    candidates: Vec<u32>,
    columns: Vec<Vec<f64>>,
}

impl FusedBlock {
    /// Present (non-sentinel) entries in one class's column — the fused
    /// equivalent of that class's old posting-list length for this
    /// anchor (0 when the column is missing or all-absent).
    fn column_entries(&self, cid: usize) -> usize {
        self.columns
            .get(cid)
            .map_or(0, |col| col.iter().filter(|&&s| s != ABSENT).count())
    }

    /// Whether the class logically has a posting for this anchor.
    fn has_column_entries(&self, cid: usize) -> bool {
        self.columns
            .get(cid)
            .is_some_and(|col| col.iter().any(|&s| s != ABSENT))
    }

    /// Grow `columns` (all-absent) so slot `cid` exists.
    fn ensure_slot(&mut self, cid: usize) {
        if self.columns.len() <= cid {
            let len = self.candidates.len();
            self.columns.resize_with(cid + 1, || vec![ABSENT; len]);
        }
    }
}

/// Per-worker scratch for delta replay: the rebuilt posting and the
/// candidate-union merge buffer, reused across every op a worker replays
/// so the hot loop allocates only for blocks that genuinely change shape.
#[derive(Default)]
struct PatchScratch {
    posting: Vec<(u32, f64)>,
    union: Vec<u32>,
}

/// Install `posting` (sorted ascending by candidate id — the index
/// partner order) as class `cid`'s column of anchor `q`'s block. Merges
/// with the candidates other classes keep: when the block's candidate
/// union is unchanged the column is overwritten **in place** (one
/// copy-on-write of the block, no remap of other columns); otherwise the
/// block is rebuilt around the new union. A block left with no present
/// entry in any class is dropped from the shard.
fn install_column(
    blocks: &mut FxHashMap<u32, Arc<FusedBlock>>,
    cid: usize,
    q: u32,
    posting: &[(u32, f64)],
    union: &mut Vec<u32>,
) {
    use std::collections::hash_map::Entry;
    let mut slot = match blocks.entry(q) {
        Entry::Occupied(slot) => slot,
        Entry::Vacant(slot) => {
            if !posting.is_empty() {
                let mut block = FusedBlock {
                    candidates: posting.iter().map(|&(v, _)| v).collect(),
                    columns: Vec::new(),
                };
                block.ensure_slot(cid);
                for (dst, &(_, s)) in block.columns[cid].iter_mut().zip(posting) {
                    *dst = s;
                }
                slot.insert(Arc::new(block));
            }
            return;
        }
    };

    // New candidate union: every old candidate some *other* class still
    // scores, merged with the new posting's ids (both sides sorted).
    let old = slot.get();
    union.clear();
    let mut pi = 0;
    for (i, &c) in old.candidates.iter().enumerate() {
        while pi < posting.len() && posting[pi].0 < c {
            union.push(posting[pi].0);
            pi += 1;
        }
        let in_posting = pi < posting.len() && posting[pi].0 == c;
        if in_posting {
            pi += 1;
        }
        let kept_by_others = old
            .columns
            .iter()
            .enumerate()
            .any(|(s, col)| s != cid && col[i] != ABSENT);
        if in_posting || kept_by_others {
            union.push(c);
        }
    }
    union.extend(posting[pi..].iter().map(|&(v, _)| v));

    if union.is_empty() {
        slot.remove();
    } else if *union == old.candidates {
        // Candidate set unchanged: overwrite the one column in place.
        let block = Arc::make_mut(slot.get_mut());
        block.ensure_slot(cid);
        let col = &mut block.columns[cid];
        col.iter_mut().for_each(|s| *s = ABSENT);
        let mut pi = 0;
        for (i, &c) in block.candidates.iter().enumerate() {
            if pi < posting.len() && posting[pi].0 == c {
                col[i] = posting[pi].1;
                pi += 1;
            }
        }
    } else {
        // Union changed: rebuild the block, remapping every other
        // class's column onto the new candidate array.
        let n_slots = old.columns.len().max(cid + 1);
        let mut next = FusedBlock {
            candidates: union.clone(),
            columns: Vec::with_capacity(n_slots),
        };
        for s in 0..n_slots {
            let mut col = vec![ABSENT; next.candidates.len()];
            if s == cid {
                let mut pi = 0;
                for (i, &c) in next.candidates.iter().enumerate() {
                    if pi < posting.len() && posting[pi].0 == c {
                        col[i] = posting[pi].1;
                        pi += 1;
                    }
                }
            } else if let Some(old_col) = old.columns.get(s) {
                let mut oi = 0;
                for (i, &c) in next.candidates.iter().enumerate() {
                    while oi < old.candidates.len() && old.candidates[oi] < c {
                        oi += 1;
                    }
                    if oi < old.candidates.len() && old.candidates[oi] == c {
                        col[i] = old_col[oi];
                    }
                }
            }
            next.columns.push(col);
        }
        *slot.get_mut() = Arc::new(next);
    }
}

/// Rebuild anchor `x`'s column for class `cid` from the index wholesale,
/// clearing it (and possibly the whole block) when `x` has no partners
/// left. Stats semantics match the pre-fusion per-class posting lists
/// exactly: `rebuilt_postings` per non-empty rebuild, `dropped_postings`
/// when an existing posting vanishes.
fn rebuild_block_column(
    blocks: &mut FxHashMap<u32, Arc<FusedBlock>>,
    cid: usize,
    x: u32,
    index: &VectorIndex,
    w: &WriterState,
    stats: &mut DeltaStats,
    scratch: &mut PatchScratch,
) {
    let PatchScratch { posting, union } = scratch;
    let partners = index.partners(NodeId(x));
    if partners.is_empty() {
        let had = blocks.get(&x).is_some_and(|b| b.has_column_entries(cid));
        if had {
            stats.dropped_postings += 1;
            install_column(blocks, cid, x, &[], union);
        }
    } else {
        posting.clear();
        posting.extend(
            partners
                .iter()
                .map(|&v| (v, score_of(x, v, &w.node_dots, &w.pair_dots))),
        );
        install_column(blocks, cid, x, posting, union);
        stats.rebuilt_postings += 1;
    }
}

/// Rescore (or insert, for a brand-new partner) class `cid`'s entry for
/// candidate `v` in anchor `q`'s block.
fn patch_block_entry(
    blocks: &mut FxHashMap<u32, Arc<FusedBlock>>,
    cid: usize,
    q: u32,
    v: u32,
    w: &WriterState,
    stats: &mut DeltaStats,
) {
    let score = score_of(q, v, &w.node_dots, &w.pair_dots);
    let slot = blocks.entry(q).or_default();
    let block = Arc::make_mut(slot);
    block.ensure_slot(cid);
    match block.candidates.binary_search(&v) {
        Ok(pos) => block.columns[cid][pos] = score,
        Err(pos) => {
            block.candidates.insert(pos, v);
            for (s, col) in block.columns.iter_mut().enumerate() {
                col.insert(pos, if s == cid { score } else { ABSENT });
            }
        }
    }
    stats.patched_entries += 1;
}

/// Remove class `cid`'s dead entry for candidate `v` from anchor `q`'s
/// block: the score reverts to [`ABSENT`]; a candidate no class scores
/// any more is spliced out of the block (tombstone compaction), and a
/// block with no candidates left leaves the shard.
fn remove_block_entry(
    blocks: &mut FxHashMap<u32, Arc<FusedBlock>>,
    cid: usize,
    q: u32,
    v: u32,
    stats: &mut DeltaStats,
) {
    let Some(slot) = blocks.get_mut(&q) else {
        return;
    };
    // Probe the shared block before make_mut: a no-op remove (entry
    // already absent) must not deep-clone the block and lose the
    // structural sharing with the previous epoch.
    let Ok(pos) = slot.candidates.binary_search(&v) else {
        return;
    };
    if slot.columns.get(cid).is_none_or(|col| col[pos] == ABSENT) {
        return;
    }
    let block = Arc::make_mut(slot);
    block.columns[cid][pos] = ABSENT;
    stats.removed_entries += 1;
    if !block.has_column_entries(cid) {
        stats.dropped_postings += 1;
    }
    if block.columns.iter().all(|col| col[pos] == ABSENT) {
        block.candidates.remove(pos);
        for col in &mut block.columns {
            col.remove(pos);
        }
    }
    if block.candidates.is_empty() {
        blocks.remove(&q);
    }
}

/// One planned posting mutation, replayed against the copy-on-write clone
/// of its shard in the order the monolithic algorithm would have applied
/// it.
enum Op {
    /// Rebuild anchor's whole posting (its own dot changed).
    Rebuild(u32),
    /// Rescore/insert the entry for candidate `.1` in anchor `.0`'s list.
    Patch(u32, u32),
    /// Remove the dead entry for candidate `.1` from anchor `.0`'s list.
    Remove(u32, u32),
}

/// Writer-side state of a class: the dot tables and weights needed to
/// score patched entries. Only delta application touches it, under the
/// per-class ingest lock — readers never look here.
struct WriterState {
    weights: Vec<f64>,
    node_dots: FxHashMap<u32, f64>,
    pair_dots: FxHashMap<u64, f64>,
}

/// One epoch snapshot of a server-level shard: the fused posting blocks
/// of every anchor `q` with `q mod n_shards == shard_id` (each block
/// carrying **all** classes' score columns), plus one invalidation
/// generation map per class slot. Blocks and generation maps are
/// individually `Arc`'d so a copy-on-write shard clone is a map of
/// pointer copies — a delta deep-clones only the blocks it patches and
/// the generation maps of the classes it bumps. Generations live *in*
/// the snapshot so a reader always observes a (generation, block) pair
/// from the same epoch.
#[derive(Debug, Default)]
struct Shard {
    blocks: FxHashMap<u32, Arc<FusedBlock>>,
    /// Per-class-slot `anchor → generation` maps; anchors absent from a
    /// map are at generation 0, as is any class slot registered after
    /// this snapshot was taken.
    generations: Vec<Arc<FxHashMap<u32, u64>>>,
}

impl Shard {
    /// Class `cid`'s invalidation stamp for anchor `q`.
    fn generation(&self, cid: usize, q: u32) -> u64 {
        self.generations
            .get(cid)
            .map_or(0, |g| g.get(&q).copied().unwrap_or(0))
    }

    /// Ranks one query for one class into `out`, replicating
    /// `mgp_learning::mgp::rank_with_scores` bit-for-bit: one chunked
    /// sweep over the class's score column collects a superset of the
    /// true top-k, and the verbatim tie-break sort finishes it.
    ///
    /// The sweep processes [`LANES`]-wide chunks: a branch-free max
    /// reduction prices each chunk, and once `k` candidates are
    /// collected a *gate* (the minimum collected score — a lower bound
    /// on the final k-th score, which only rises as more candidates
    /// land) skips every chunk whose max falls strictly below it.
    /// Strictness keeps score-ties: a candidate tying the gate can still
    /// enter the final top-k on the ascending-id tie-break.
    fn rank_into(
        &self,
        cid: usize,
        q: NodeId,
        k: usize,
        scratch: &mut Scratch,
        out: &mut RankedList,
    ) {
        out.clear();
        let Some(block) = self.blocks.get(&q.0) else {
            return;
        };
        let Some(col) = block.columns.get(cid) else {
            return;
        };
        scratch.scored.clear();
        let mut gate = ABSENT;
        let mut gated = false;
        for (cands, scores) in block.candidates.chunks(LANES).zip(col.chunks(LANES)) {
            let mut m = ABSENT;
            for &s in scores {
                m = if s > m { s } else { m };
            }
            if m == ABSENT || m < gate {
                continue; // all-absent, or provably below the top-k
            }
            for (&v, &s) in cands.iter().zip(scores) {
                if s != ABSENT && s >= gate {
                    scratch.scored.push((s, v));
                }
            }
            if !gated && scratch.scored.len() >= k {
                gated = true;
                gate = scratch
                    .scored
                    .iter()
                    .fold(f64::INFINITY, |g, &(s, _)| if s < g { s } else { g });
            }
        }
        // Verbatim tie-break from mgp::rank_with_scores: descending score,
        // then ascending node id.
        scratch
            .scored
            .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        scratch.scored.truncate(k);
        out.extend(scratch.scored.iter().map(|&(s, v)| (NodeId(v), s)));
    }
}

/// A shard's slot in the server: the live epoch plus writer-side
/// bookkeeping.
struct ShardSlot {
    /// The live epoch. Readers pin it with one atomic load — no lock,
    /// no shared-refcount bump (see the `arc_swap` shim); a replaced
    /// epoch is reclaimed only after every in-flight pin drains.
    current: ArcSwap<Shard>,
    /// Serialises writers *to this shard* (clone → replay → swap), so
    /// two concurrent deltas to different classes can never lose each
    /// other's swap. Readers never touch it.
    patch: Mutex<()>,
    /// Weak handles to replaced epochs, pruned as readers drop them —
    /// the raw data behind [`QueryServer::epoch_stats`].
    retired: Mutex<Vec<Weak<Shard>>>,
}

impl ShardSlot {
    fn new() -> Self {
        ShardSlot {
            current: ArcSwap::from_pointee(Shard::default()),
            patch: Mutex::new(()),
            retired: Mutex::new(Vec::new()),
        }
    }
}

/// A registered class: its name, cache counters, and the writer-side dot
/// tables (the postings themselves live in the server-level shards).
struct ClassState {
    name: String,
    /// Dot tables + weights, retained after build so delta application
    /// can re-dot only touched anchors/pairs. Doubles as the per-class
    /// ingest lock serialising same-class writers.
    writer: Mutex<WriterState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ClassState {
    fn new(name: &str, writer: WriterState) -> Self {
        ClassState {
            name: name.to_owned(),
            writer: Mutex::new(writer),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// The registered-class table: one entry per class id, individually
/// `Arc`'d so a copy-on-write append shares every existing entry (and
/// so a reader can hold a class across the table swap a concurrent
/// registration performs).
type ClassTable = Vec<Arc<ClassState>>;

/// Why [`QueryServer::register_class`] rejected a registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// A class with this name is already registered. The live path only
    /// *appends*: replacing a serving class's tables under `&self` would
    /// have to retract postings out from under in-flight queries holding
    /// its id — use a distinct name, or rebuild the server offline via
    /// [`QueryServer::add_class`] (which does replace, under `&mut self`).
    DuplicateName(String),
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::DuplicateName(name) => {
                write!(f, "class {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// One class's planned contribution to a (possibly fused) delta
/// application: its writer guard (held until every shard is swapped),
/// the per-shard op lists and generation bumps, and the stats being
/// accumulated.
struct ClassPlan<'a> {
    /// Position in the caller's update slice (stats come back in input
    /// order even though locks are taken in class-id order).
    input_slot: usize,
    class_id: usize,
    index: &'a VectorIndex,
    guard: MutexGuard<'a, WriterState>,
    ops: FxHashMap<usize, Vec<Op>>,
    bumps: FxHashMap<usize, Vec<u32>>,
    stats: DeltaStats,
}

/// The read-only slice of a [`ClassPlan`] that phase-5 replay workers
/// share: replay only *reads* the writer state (dot tables, weights), so
/// one plan's context can fan out to every shard worker at once.
struct ReplayCtx<'a> {
    class_id: usize,
    index: &'a VectorIndex,
    writer: &'a WriterState,
    bumps: &'a FxHashMap<usize, Vec<u32>>,
}

/// Phases 1–4 of delta application for one class: refresh the dot tables
/// for exactly the touched set and plan the posting mutations — rebuild
/// the postings of anchors whose own `m_q · w` changed (dropping postings
/// of anchors with no partners left), patch the individual entries those
/// changes leak into (a changed node dot alters the denominator of every
/// posting entry *pointing at* that node; a changed pair dot alters the
/// two entries of that pair; a *dead* pair removes them), and group the
/// invalidation-stamp bumps by shard. Replay (phase 5) happens in
/// [`QueryServer::apply_delta_fused`], which fuses it across classes.
fn plan_class_delta(
    w: &mut WriterState,
    index: &VectorIndex,
    touch: &IndexTouch,
    n_shards: usize,
    stats: &mut DeltaStats,
) -> (FxHashMap<usize, Vec<Op>>, FxHashMap<usize, Vec<u32>>) {
    // Phase 1: refresh the dot tables for exactly the touched set;
    // vanished nodes/pairs leave the tables instead of staying at 0.
    let redot: FxHashSet<u32> = touch.nodes.iter().copied().collect();
    for &x in &touch.nodes {
        let vec = index.node_vec(NodeId(x));
        if vec.is_empty() {
            w.node_dots.remove(&x);
        } else {
            w.node_dots.insert(x, mgp_index::dot(vec, &w.weights));
        }
    }
    stats.redotted_nodes += touch.nodes.len();
    for &key in &touch.pairs {
        let (x, y) = mgp_graph::ids::unpack_pair(key);
        let vec = index.pair_vec(x, y);
        if vec.is_empty() {
            w.pair_dots.remove(&key);
        } else {
            w.pair_dots.insert(key, mgp_index::dot(vec, &w.weights));
        }
    }
    stats.redotted_pairs += touch.pairs.len();

    // Phase 2: plan whole-posting rebuilds for anchors with a changed
    // node dot (every entry's denominator moved, and partners may have
    // appeared or vanished).
    let mut ops: FxHashMap<usize, Vec<Op>> = FxHashMap::default();
    let mut changed: FxHashSet<u32> = FxHashSet::default();
    for &x in &touch.nodes {
        ops.entry(x as usize % n_shards)
            .or_default()
            .push(Op::Rebuild(x));
        changed.insert(x);
    }

    // Phase 3: plan single-entry patches. (a) For each anchor x with a
    // changed dot, every surviving partner v of x holds an entry
    // (v → x) whose denominator moved. (b) A touched pair {x, y}
    // where neither dot changed (defensive: deltas normally touch
    // both endpoints' node counts too) needs its two entries rescored
    // — or removed, when the pair died.
    for &x in &touch.nodes {
        for &v in index.partners(NodeId(x)) {
            if redot.contains(&v) {
                continue; // rebuilt wholesale
            }
            ops.entry(v as usize % n_shards)
                .or_default()
                .push(Op::Patch(v, x));
            changed.insert(v);
        }
    }
    for &key in &touch.pairs {
        let alive = w.pair_dots.contains_key(&key);
        let (x, y) = mgp_graph::ids::unpack_pair(key);
        for (q, v) in [(x.0, y.0), (y.0, x.0)] {
            if redot.contains(&q) {
                continue;
            }
            let op = if alive {
                Op::Patch(q, v)
            } else {
                Op::Remove(q, v)
            };
            ops.entry(q as usize % n_shards).or_default().push(op);
            changed.insert(q);
        }
    }
    stats.invalidated_anchors += changed.len();

    // Phase 4: group the invalidation-stamp bumps of every anchor
    // whose ranking may have moved by shard. Every op's target anchor
    // is in `changed`, so the bump shards are a superset of the op
    // shards.
    let mut bumps: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
    for q in changed {
        bumps.entry(q as usize % n_shards).or_default().push(q);
    }
    (ops, bumps)
}

/// Per-worker reusable state: the candidate scoring buffer.
#[derive(Default)]
struct Scratch {
    scored: Vec<(f64, u32)>,
}

/// Final proximity of `(q, v)` from the dot tables — the exact expression
/// shape of `mgp_learning::mgp::proximity` for distinct nodes.
#[inline]
fn score_of(
    q: u32,
    v: u32,
    node_dots: &FxHashMap<u32, f64>,
    pair_dots: &FxHashMap<u64, f64>,
) -> f64 {
    let key = mgp_graph::ids::pack_pair(NodeId(q), NodeId(v));
    let pair_dot = pair_dots.get(&key).copied().unwrap_or(0.0);
    let nq = node_dots.get(&q).copied().unwrap_or(0.0);
    let nv = node_dots.get(&v).copied().unwrap_or(0.0);
    let denom = nq + nv;
    if denom <= 0.0 {
        0.0
    } else {
        2.0 * pair_dot / denom
    }
}

/// One posting map per shard: query id → scored partner list.
type ShardPostings = Vec<FxHashMap<u32, Vec<(u32, f64)>>>;

/// The shared precompute of class registration — build-time
/// ([`QueryServer::add_class`]) and live ([`QueryServer::register_class`])
/// alike: the writer-side dot tables (each entry evaluated once with the
/// same `mgp_index::dot` accumulation order the reference ranker uses)
/// plus the per-shard posting lists carrying final proximities.
fn build_class_tables(
    index: &VectorIndex,
    weights: &[f64],
    n_shards: usize,
) -> (WriterState, ShardPostings) {
    let mut node_dots: FxHashMap<u32, f64> =
        FxHashMap::with_capacity_and_hasher(index.n_nodes(), Default::default());
    for (x, v) in index.iter_nodes() {
        node_dots.insert(x.0, mgp_index::dot(v, weights));
    }
    let mut pair_dots: FxHashMap<u64, f64> =
        FxHashMap::with_capacity_and_hasher(index.n_pairs(), Default::default());
    for (key, v) in index.iter_pairs() {
        pair_dots.insert(key, mgp_index::dot(v, weights));
    }
    // Postings follow the index's partner order (ascending node id)
    // and carry the final proximity, evaluated with the same
    // expression shape as mgp::proximity (q == v cannot occur in a
    // posting: pairs are strictly unordered distinct nodes).
    let mut per_shard: ShardPostings = (0..n_shards).map(|_| FxHashMap::default()).collect();
    for (q, partners) in index.iter_partners() {
        let posting = posting_for(q, partners, &node_dots, &pair_dots);
        per_shard[q.0 as usize % n_shards].insert(q.0, posting);
    }
    let writer = WriterState {
        weights: weights.to_vec(),
        node_dots,
        pair_dots,
    };
    (writer, per_shard)
}

/// Materialises an anchor's posting list in the index's partner order
/// (ascending node id).
fn posting_for(
    q: NodeId,
    partners: &[u32],
    node_dots: &FxHashMap<u32, f64>,
    pair_dots: &FxHashMap<u64, f64>,
) -> Vec<(u32, f64)> {
    partners
        .iter()
        .map(|&v| (v, score_of(q.0, v, node_dots, pair_dots)))
        .collect()
}

/// Work accounting for one [`QueryServer::apply_delta`] call — evidence
/// that a delta stayed proportional to its touch set rather than the
/// class size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Node dot products recomputed.
    pub redotted_nodes: usize,
    /// Pair dot products recomputed.
    pub redotted_pairs: usize,
    /// Posting lists rebuilt wholesale (anchors whose own dot changed).
    pub rebuilt_postings: usize,
    /// Individual posting entries rescored or inserted.
    pub patched_entries: usize,
    /// Individual posting entries removed (dead pairs).
    pub removed_entries: usize,
    /// Whole posting lists dropped (anchors left with no partners).
    pub dropped_postings: usize,
    /// Anchors whose cached results were invalidated (generation bumped).
    pub invalidated_anchors: usize,
    /// Shard snapshots copy-on-write-cloned and epoch-swapped — the
    /// shards readers could observe flipping from the pre- to the
    /// post-delta epoch while this delta landed.
    pub swapped_shards: usize,
}

impl std::ops::AddAssign for DeltaStats {
    fn add_assign(&mut self, rhs: DeltaStats) {
        self.redotted_nodes += rhs.redotted_nodes;
        self.redotted_pairs += rhs.redotted_pairs;
        self.rebuilt_postings += rhs.rebuilt_postings;
        self.patched_entries += rhs.patched_entries;
        self.removed_entries += rhs.removed_entries;
        self.dropped_postings += rhs.dropped_postings;
        self.invalidated_anchors += rhs.invalidated_anchors;
        self.swapped_shards += rhs.swapped_shards;
    }
}

impl fmt::Display for DeltaStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} node / {} pair dots redone; postings: {} rebuilt, {} patched, \
             {} removed, {} dropped; {} anchors invalidated across {} shard swaps",
            self.redotted_nodes,
            self.redotted_pairs,
            self.rebuilt_postings,
            self.patched_entries,
            self.removed_entries,
            self.dropped_postings,
            self.invalidated_anchors,
            self.swapped_shards
        )
    }
}

/// One class's slice of a fused delta: the class to patch, its vector
/// index *after* `VectorIndex::apply_delta`, and the touch that call
/// returned. Input to [`QueryServer::apply_delta_fused`].
#[derive(Clone, Copy)]
pub struct ClassDelta<'a> {
    /// The registered class id (see [`QueryServer::class_id`]).
    pub class_id: usize,
    /// The class's vector index, already patched by the same graph event.
    pub index: &'a VectorIndex,
    /// The nodes/pairs the index patch touched.
    pub touch: &'a IndexTouch,
}

/// Work accounting for one [`QueryServer::apply_delta_fused`] call: the
/// per-class patch work plus the fused shard-visit count — the evidence
/// that one graph event touched each shard once, not once per class.
#[derive(Debug, Clone, Default)]
pub struct FusedDeltaStats {
    /// Per-class patch work, in the order of the updates passed in.
    pub per_class: Vec<DeltaStats>,
    /// Shards copy-on-write-cloned and epoch-swapped by this call —
    /// each visited **once** for all classes together.
    pub fused_shard_visits: usize,
}

impl FusedDeltaStats {
    /// The shard visits per-class application would have paid (the
    /// `classes × shards` product the fusion collapses): each class's
    /// `swapped_shards` summed.
    pub fn sequential_shard_visits(&self) -> usize {
        self.per_class.iter().map(|s| s.swapped_shards).sum()
    }

    /// All classes' patch work summed.
    pub fn total(&self) -> DeltaStats {
        let mut t = DeltaStats::default();
        for &s in &self.per_class {
            t += s;
        }
        t
    }
}

impl fmt::Display for FusedDeltaStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} classes in {} fused shard visits (sequential would take {}); total: {}",
            self.per_class.len(),
            self.fused_shard_visits,
            self.sequential_shard_visits(),
            self.total()
        )
    }
}

/// Copy-on-write memory retained by old epochs that slow readers still
/// pin — the gauges operators watch to see memory amplification under
/// churn (see [`QueryServer::epoch_stats`]). All values are zero when no
/// reader holds a pre-delta snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Retired shard epochs still alive because a reader pins them.
    pub retained_epochs: usize,
    /// Fused posting blocks in retained epochs **not shared** with the
    /// live epoch — the blocks churn actually duplicated.
    pub retained_postings: usize,
    /// Candidate rows across those unshared blocks (each row spans every
    /// class column).
    pub retained_posting_entries: usize,
    /// Approximate heap bytes the retained epochs keep alive beyond the
    /// live tables (unshared block payloads plus map-slot overhead).
    pub approx_retained_bytes: usize,
}

impl fmt::Display for EpochStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} retained epochs holding {} unshared postings ({} entries, ~{} bytes)",
            self.retained_epochs,
            self.retained_postings,
            self.retained_posting_entries,
            self.approx_retained_bytes
        )
    }
}

/// Per-class cache counters (the server-wide totals live in
/// [`ServerStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCacheStats {
    /// Queries for this class answered from the LRU cache.
    pub hits: u64,
    /// Queries for this class computed from the postings.
    pub misses: u64,
}

impl ClassCacheStats {
    /// Hit fraction in `[0, 1]` (0 when the class was never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sizes of one class's precomputed serving tables — observability for
/// capacity planning, and the churn-soak tests' leak detector (a delta
/// sequence that nets to nothing must restore these exactly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Posting lists across all shards (one per anchor with partners).
    pub n_postings: usize,
    /// Total posting entries across all lists.
    pub n_posting_entries: usize,
    /// Entries in the `m_x · w` node-dot table.
    pub n_node_dots: usize,
    /// Entries in the `m_xy · w` pair-dot table.
    pub n_pair_dots: usize,
}

impl fmt::Display for TableStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} postings ({} entries), {} node dots, {} pair dots",
            self.n_postings, self.n_posting_entries, self.n_node_dots, self.n_pair_dots
        )
    }
}

/// Cache hit/miss counters and latency summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Queries answered from the LRU cache.
    pub cache_hits: u64,
    /// Queries computed from the index.
    pub cache_misses: u64,
    /// Per-batch latency summary.
    pub latency: LatencySnapshot,
}

/// Why a `try_rank*` entry point rejected a query instead of answering
/// it. The panicking entry points ([`QueryServer::rank`] and friends)
/// are thin wrappers that turn this into a panic for callers who treat a
/// bad class id as a programming error; the serving front-end
/// ([`crate::frontend`]) uses the `try_` forms exclusively, so a
/// degenerate request comes back as data instead of poisoning a serving
/// thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The class id is not registered on this server. Unknown *anchor*
    /// ids are not an error — an anchor without postings simply ranks to
    /// an empty list, exactly like the reference ranker.
    UnknownClass(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownClass(id) => write!(f, "unknown class id {id}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// An opaque guard pinning one shard's current epoch snapshot alive, as
/// a slow reader implicitly does mid-batch. While the guard lives, every
/// delta landing on that shard retires an epoch that
/// [`QueryServer::epoch_stats`] reports as retained — which is exactly
/// the gauge the serving front-end's admission control watches. Tests,
/// benches and operators use [`QueryServer::pin_epoch`] to exercise that
/// backpressure path deterministically instead of racing a real slow
/// reader.
#[derive(Debug)]
pub struct EpochPin {
    _snap: Arc<Shard>,
}

/// A query-serving facade over one or more trained class models.
///
/// Build one via `mgp_core::SearchEngine::serve()` (which registers every
/// trained class) or manually with [`QueryServer::new`] +
/// [`QueryServer::add_class`]. Registration needs `&mut self`; everything
/// after — ranking *and* [`QueryServer::apply_delta`] /
/// [`QueryServer::apply_delta_fused`] — is `&self`, so the
/// built server can be shared as a [`ServerHandle`] (`Arc<QueryServer>`)
/// between serving threads and a delta-ingesting writer.
///
/// Shards are shared across classes (shard `q mod n` holds every class's
/// postings for its anchors), so a multi-class query pins one snapshot
/// ([`QueryServer::rank_multi`]) and a fused delta touches each shard
/// once ([`QueryServer::apply_delta_fused`]) however many classes are
/// registered.
pub struct QueryServer {
    cfg: ServeConfig,
    workers: usize,
    n_shards: usize,
    /// The registered-class table, epoch-swapped exactly like the shard
    /// snapshots so [`QueryServer::register_class`] can grow it on a
    /// *live* server: readers pin the table with one atomic load and
    /// index it by class id; a registration installs the new class's
    /// score columns into every shard first and only then swaps in a
    /// table one entry longer — a reader can never observe a class id
    /// whose postings don't exist yet. Ids are positions and never
    /// shrink, so ids cached by callers stay valid forever.
    classes: ArcSwap<ClassTable>,
    /// Serialises registrations (`register_class`) so two concurrent
    /// callers cannot claim the same class id. Build-time registration
    /// (`add_class`) is `&mut self` and needs no lock.
    registry: Mutex<()>,
    shards: Vec<ShardSlot>,
    /// `(class, query, k) → (anchor generation at fill time, result)`.
    /// Entries whose stamp trails the anchor's current generation are
    /// stale (the anchor's postings were patched by a delta) and are
    /// treated as misses, then overwritten — so a delta invalidates
    /// exactly the keys whose query's result set changed, lazily, without
    /// scanning the cache. Both the stamp and the result of an entry come
    /// from the same shard snapshot, so they are mutually consistent even
    /// when a fill races a delta.
    cache: Mutex<LruCache<(u32, u32, u32), CachedEntry>>,
    latency: Mutex<LatencyHistogram>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Shared `k == 0` answer: every degenerate request returns a clone
    /// of this one allocation and never consults or fills the cache.
    empty: Arc<RankedList>,
}

impl QueryServer {
    /// Creates an empty server.
    pub fn new(cfg: ServeConfig) -> Self {
        let workers = cfg.resolved_workers();
        let n_shards = cfg.resolved_shards();
        let cache = Mutex::new(LruCache::new(cfg.cache_capacity));
        QueryServer {
            cfg,
            workers,
            n_shards,
            classes: ArcSwap::from_pointee(Vec::new()),
            registry: Mutex::new(()),
            shards: (0..n_shards).map(|_| ShardSlot::new()).collect(),
            cache,
            latency: Mutex::new(LatencyHistogram::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            empty: Arc::new(RankedList::new()),
        }
    }

    /// Registers a class model, precomputing its score tables. Returns the
    /// class id used by the ranking entry points. Replaces any same-named
    /// class (and drops its cached results).
    pub fn add_class(&mut self, name: &str, index: &VectorIndex, weights: &[f64]) -> usize {
        let (writer, per_shard) = build_class_tables(index, weights, self.n_shards);
        let mut table = (*self.classes.load_full()).clone();
        let replaced = table.iter().position(|c| c.name == name);
        let slot = match replaced {
            Some(i) => {
                table[i] = Arc::new(ClassState::new(name, writer));
                i
            }
            None => {
                table.push(Arc::new(ClassState::new(name, writer)));
                table.len() - 1
            }
        };
        self.classes.store(Arc::new(table));
        // Merge the class's score column into every shard epoch's fused
        // blocks. Registration is `&mut self`, so no reader can race
        // these swaps. Replacement wipes the class's old state: a fresh
        // generation map, and a cleared column on every block the new
        // index no longer covers.
        let mut union = Vec::new();
        for (sid, mut postings) in per_shard.into_iter().enumerate() {
            let cur = self.shards[sid].current.load_full();
            let mut next = Shard {
                blocks: cur.blocks.clone(),
                generations: cur.generations.clone(),
            };
            if next.generations.len() <= slot {
                next.generations.resize_with(slot + 1, Default::default);
            }
            next.generations[slot] = Arc::new(FxHashMap::default());
            let existing: Vec<u32> = next.blocks.keys().copied().collect();
            for q in existing {
                let posting = postings.remove(&q).unwrap_or_default();
                if posting.is_empty()
                    && !next
                        .blocks
                        .get(&q)
                        .is_some_and(|b| b.has_column_entries(slot))
                {
                    continue; // nothing to install, nothing to clear
                }
                install_column(&mut next.blocks, slot, q, &posting, &mut union);
            }
            for (q, posting) in postings {
                install_column(&mut next.blocks, slot, q, &posting, &mut union);
            }
            self.shards[sid].current.store(Arc::new(next));
        }
        if replaced.is_some() {
            // Cached entries for the replaced model are stale; class ids
            // are cache keys, so drop everything for safety.
            self.cache.lock().clear();
        }
        slot
    }

    /// Registers a **new** class on a *live* server — `&self`, while
    /// concurrent `rank*` readers and `apply_delta_fused` writers keep
    /// flowing. Returns the new class id.
    ///
    /// The new class's score columns are merged into each shard through
    /// the normal copy-on-write epoch swap (clone the current snapshot,
    /// install the columns, one pointer swap — serialised with concurrent
    /// deltas on the per-shard patch lock), and the class *table* is
    /// swapped last, one entry longer. Publication ordering is the whole
    /// trick: until the table swap, queries for the new id fail with
    /// [`QueryError::UnknownClass`] exactly as before the call; after it,
    /// every shard already carries the class's columns, so the first
    /// query served is already bit-identical to a server built with the
    /// class from scratch (proven by the runtime-class equivalence
    /// proptest under churn).
    ///
    /// Unlike [`QueryServer::add_class`] this never replaces: a duplicate
    /// name is a typed error, because retracting a serving class's
    /// postings under `&self` would tear in-flight queries holding its id.
    ///
    /// Registration must be sequenced with ingest by the caller the same
    /// way `VectorIndex::apply_delta` is (one logical writer — e.g.
    /// `SearchEngine::register_class_serving` runs on the `&mut` engine):
    /// `index` must describe the same graph epoch the server's other
    /// classes are at, or the new class starts consistently *behind* and
    /// catches up only with the next delta that touches it.
    pub fn register_class(
        &self,
        name: &str,
        index: &VectorIndex,
        weights: &[f64],
    ) -> Result<usize, RegisterError> {
        let _reg = self.registry.lock();
        let table = self.classes.load_full();
        if table.iter().any(|c| c.name == name) {
            return Err(RegisterError::DuplicateName(name.to_owned()));
        }
        let cid = table.len();
        let (writer, per_shard) = build_class_tables(index, weights, self.n_shards);

        // Install the new class's columns shard by shard, each through
        // the same clone/replay/swap cycle a delta uses. A brand-new id
        // can't have columns or generations anywhere yet, so unlike
        // `add_class` there is nothing to clear on existing blocks.
        let mut union = Vec::new();
        for (sid, postings) in per_shard.into_iter().enumerate() {
            let slot = &self.shards[sid];
            let _patch = slot.patch.lock();
            let cur = slot.current.load_full();
            let mut next = Shard {
                blocks: cur.blocks.clone(),
                generations: cur.generations.clone(),
            };
            next.generations.resize_with(cid + 1, Default::default);
            for (q, posting) in postings {
                install_column(&mut next.blocks, cid, q, &posting, &mut union);
            }
            let prev = slot.current.swap(Arc::new(next));
            let weak = Arc::downgrade(&prev);
            drop(prev);
            drop(cur);
            let mut retired = slot.retired.lock();
            retired.push(weak);
            retired.retain(|w| w.strong_count() > 0);
        }

        // Publish last: grow the class table by one. Readers holding the
        // old table simply don't know the id yet; the cache can hold
        // nothing under it (unknown ids never reach the cache).
        let mut next_table = (*table).clone();
        next_table.push(Arc::new(ClassState::new(name, writer)));
        self.classes.store(Arc::new(next_table));
        Ok(cid)
    }

    /// Exports every shard's fused posting blocks, sorted by anchor id —
    /// the serving-table payload of the `mgp-persist` snapshot format.
    /// Candidate arrays and score columns are copied bit-for-bit
    /// (absent entries keep the [`ABSENT_SCORE`] sentinel), so a server
    /// rebuilt with [`QueryServer::from_parts`] answers identically to
    /// this one without recomputing a single posting. The export is
    /// shard-count-independent: anchors are re-distributed by
    /// `anchor % n_shards` on import, so the snapshot can be reopened
    /// with a different shard layout.
    ///
    /// Each shard is read from one pinned epoch snapshot, so a concurrent
    /// delta never tears an individual block; callers that need a single
    /// cross-shard cut (e.g. a snapshot paired with a journal sequence
    /// number) should quiesce ingest around the call, as
    /// `SearchEngine::save_snapshot` does.
    pub fn export_postings(&self) -> Vec<PostingExport> {
        let mut out = Vec::new();
        for sid in 0..self.n_shards {
            let snap = self.snapshot_shard(sid);
            for (&q, block) in &snap.blocks {
                out.push(PostingExport {
                    anchor: q,
                    candidates: block.candidates.clone(),
                    columns: block.columns.clone(),
                });
            }
        }
        out.sort_unstable_by_key(|b| b.anchor);
        out
    }

    /// Rebuilds a server from registered-class descriptions plus the
    /// posting blocks a previous [`QueryServer::export_postings`]
    /// returned — the warm-start path. The per-class dot tables are
    /// recomputed from each class's index (entry-for-entry with
    /// `mgp_index::dot`, exactly as [`QueryServer::add_class`] does — the
    /// tables are pure per-entry functions, so hash iteration order
    /// cannot change them), while the expensive posting construction is
    /// skipped entirely: the exported blocks are installed as-is,
    /// re-sharded by `anchor % n_shards`.
    ///
    /// The result answers bit-identically to registering every class
    /// from scratch (asserted by tests and `bench_persist`). Blocks are
    /// validated structurally — unsorted or duplicate candidates,
    /// column-length mismatches, column counts beyond the class count,
    /// or duplicate anchors are rejected with a message — so a corrupt
    /// snapshot fails loudly instead of serving garbage.
    pub fn from_parts(
        cfg: ServeConfig,
        classes: &[ClassExport<'_>],
        postings: Vec<PostingExport>,
    ) -> Result<Self, String> {
        let server = QueryServer::new(cfg);
        let mut table: ClassTable = Vec::with_capacity(classes.len());
        for c in classes {
            let mut node_dots: FxHashMap<u32, f64> =
                FxHashMap::with_capacity_and_hasher(c.index.n_nodes(), Default::default());
            for (x, v) in c.index.iter_nodes() {
                node_dots.insert(x.0, mgp_index::dot(v, c.weights));
            }
            let mut pair_dots: FxHashMap<u64, f64> =
                FxHashMap::with_capacity_and_hasher(c.index.n_pairs(), Default::default());
            for (key, v) in c.index.iter_pairs() {
                pair_dots.insert(key, mgp_index::dot(v, c.weights));
            }
            if table.iter().any(|s| s.name == c.name) {
                return Err(format!("class {:?} appears twice", c.name));
            }
            table.push(Arc::new(ClassState::new(
                c.name,
                WriterState {
                    weights: c.weights.to_vec(),
                    node_dots,
                    pair_dots,
                },
            )));
        }
        let n_classes = table.len();
        server.classes.store(Arc::new(table));
        let mut per_shard: Vec<FxHashMap<u32, Arc<FusedBlock>>> =
            (0..server.n_shards).map(|_| FxHashMap::default()).collect();
        for p in postings {
            if p.columns.len() > n_classes {
                return Err(format!(
                    "anchor {} has {} columns but only {n_classes} classes are registered",
                    p.anchor,
                    p.columns.len()
                ));
            }
            for (cid, col) in p.columns.iter().enumerate() {
                if col.len() != p.candidates.len() {
                    return Err(format!(
                        "anchor {} column {cid} has {} entries for {} candidates",
                        p.anchor,
                        col.len(),
                        p.candidates.len()
                    ));
                }
            }
            if p.candidates.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!(
                    "anchor {} candidates are not strictly ascending",
                    p.anchor
                ));
            }
            let sid = p.anchor as usize % server.n_shards;
            let block = FusedBlock {
                candidates: p.candidates,
                columns: p.columns,
            };
            if per_shard[sid].insert(p.anchor, Arc::new(block)).is_some() {
                return Err(format!("anchor {} appears twice", p.anchor));
            }
        }
        for (sid, blocks) in per_shard.into_iter().enumerate() {
            server.shards[sid].current.store(Arc::new(Shard {
                blocks,
                generations: (0..n_classes).map(|_| Default::default()).collect(),
            }));
        }
        Ok(server)
    }

    /// The id of a registered class.
    pub fn class_id(&self, name: &str) -> Option<usize> {
        self.classes.load().iter().position(|c| c.name == name)
    }

    /// Names of registered classes, in id order. (Owned: the table can
    /// be swapped by a concurrent [`QueryServer::register_class`], so
    /// borrows out of it cannot escape.)
    pub fn class_names(&self) -> Vec<String> {
        self.classes.load().iter().map(|c| c.name.clone()).collect()
    }

    /// Number of posting-list shards per class.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Worker threads used by [`QueryServer::rank_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    fn class(&self, class_id: usize) -> Arc<ClassState> {
        self.try_class(class_id).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_class(&self, class_id: usize) -> Result<Arc<ClassState>, QueryError> {
        self.classes
            .load()
            .get(class_id)
            .cloned()
            .ok_or(QueryError::UnknownClass(class_id))
    }

    /// Number of registered classes (valid ids are `0..n_classes()`).
    pub fn n_classes(&self) -> usize {
        self.classes.load().len()
    }

    /// Whether `class_id` is registered — the admission-time check the
    /// front-end runs so batcher workers only ever see valid classes.
    pub fn has_class(&self, class_id: usize) -> bool {
        class_id < self.classes.load().len()
    }

    /// The cache key for a `(class, query, k)` request. `k` saturates at
    /// `u32::MAX` instead of truncating: a truncated `k = 2³²` used to
    /// collide with `k = 0`, poisoning the degenerate-k entry with a
    /// full result list. Saturation is lossless — any `k ≥ u32::MAX`
    /// returns the whole posting list (postings are keyed by `u32` node
    /// ids, so no list reaches that length), so every saturated `k` maps
    /// to the same result. `k == 0` never reaches the cache at all (it
    /// short-circuits to the shared empty list).
    fn cache_key(class_id: usize, q: u32, k: usize) -> (u32, u32, u32) {
        (class_id as u32, q, k.min(u32::MAX as usize) as u32)
    }

    fn shard_of(&self, q: u32) -> usize {
        q as usize % self.n_shards
    }

    /// Pins the current epoch snapshot of one shard: one atomic pin plus
    /// one refcount bump, no lock — readers never contend with writers
    /// or each other. The snapshot covers **every** class's columns for
    /// the shard's anchors.
    fn snapshot_shard(&self, sid: usize) -> Arc<Shard> {
        self.shards[sid].current.load_full()
    }

    /// The epoch snapshot covering anchor `q`.
    fn snapshot(&self, q: u32) -> Arc<Shard> {
        self.snapshot_shard(self.shard_of(q))
    }

    /// Pins the current epoch of the shard owning anchor `q` — exactly
    /// what a slow reader does implicitly for the duration of a batch —
    /// and returns an opaque guard holding it alive. See [`EpochPin`].
    pub fn pin_epoch(&self, q: NodeId) -> EpochPin {
        EpochPin {
            _snap: self.snapshot(q.0),
        }
    }

    /// Ranks a single query (cache-aware). Panics on an unknown class id;
    /// [`QueryServer::try_rank`] is the non-panicking form.
    pub fn rank(&self, class_id: usize, q: NodeId, k: usize) -> Arc<RankedList> {
        self.try_rank(class_id, q, k)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Ranks a single query (cache-aware), returning a typed error on an
    /// unknown class id instead of panicking. `k == 0` short-circuits to
    /// a shared empty list without touching the cache or the hit/miss
    /// counters, so a degenerate request can neither poison nor evict
    /// cached entries.
    pub fn try_rank(
        &self,
        class_id: usize,
        q: NodeId,
        k: usize,
    ) -> Result<Arc<RankedList>, QueryError> {
        let class = self.try_class(class_id)?;
        if k == 0 {
            return Ok(Arc::clone(&self.empty));
        }
        // One snapshot serves the generation read, the cache-staleness
        // check and the ranking — all from the same epoch.
        let snap = self.snapshot(q.0);
        let gen = snap.generation(class_id, q.0);
        let key = Self::cache_key(class_id, q.0, k);
        if self.cfg.cache_capacity > 0 {
            if let Some((stamp, hit)) = self.cache.lock().get(&key) {
                if *stamp == gen {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    class.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(hit));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        class.misses.fetch_add(1, Ordering::Relaxed);
        let mut scratch = Scratch::default();
        let mut out = RankedList::new();
        snap.rank_into(class_id, q, k, &mut scratch, &mut out);
        let result = Arc::new(out);
        if self.cfg.cache_capacity > 0 {
            self.cache.lock().put(key, (gen, Arc::clone(&result)));
        }
        Ok(result)
    }

    /// Ranks one query for **several classes in one pass**: pins a single
    /// epoch snapshot (one lock acquisition however many classes), checks
    /// and fills the cache in one critical section each, and walks the
    /// missing classes' postings with one shared scratch buffer. Returns
    /// one list per entry of `class_ids`, in order — each bit-identical
    /// to what [`QueryServer::rank`] returns for that class.
    ///
    /// Cache entries are keyed per class exactly as `rank` keys them, so
    /// the two entry points share hits freely and single-class callers
    /// are unaffected. Panics on an unknown class id;
    /// [`QueryServer::try_rank_multi`] is the non-panicking form.
    /// Duplicate class ids are fine — each slot is answered
    /// independently (and duplicates share the cached `Arc`).
    pub fn rank_multi(&self, class_ids: &[usize], q: NodeId, k: usize) -> Vec<Arc<RankedList>> {
        self.try_rank_multi(class_ids, q, k)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`QueryServer::rank_multi`] with a typed error on an unknown class
    /// id instead of a panic. No class is queried (and no counter moves)
    /// unless every id validates; `k == 0` short-circuits every slot to
    /// the shared empty list without touching the cache.
    pub fn try_rank_multi(
        &self,
        class_ids: &[usize],
        q: NodeId,
        k: usize,
    ) -> Result<Vec<Arc<RankedList>>, QueryError> {
        // One table pin covers validation and the per-class counters —
        // ids stay valid for the whole call even if a concurrent
        // registration swaps in a longer table.
        let classes = self.classes.load_full();
        for &cid in class_ids {
            if cid >= classes.len() {
                return Err(QueryError::UnknownClass(cid));
            }
        }
        if k == 0 {
            return Ok(vec![Arc::clone(&self.empty); class_ids.len()]);
        }
        let snap = self.snapshot(q.0);
        // Miss slots hold the shared empty list until the compute pass
        // overwrites them — no `Option` wrapper, no second allocation on
        // the all-hit fast path (the steady state warm traffic lives in).
        let mut out: Vec<Arc<RankedList>> = Vec::with_capacity(class_ids.len());

        // Cache pass: one lock round-trip covers every class. `miss`
        // stays unallocated on the all-hit fast path.
        let mut miss: Vec<usize> = Vec::new();
        if self.cfg.cache_capacity > 0 {
            let mut cache = self.cache.lock();
            for (j, &cid) in class_ids.iter().enumerate() {
                let gen = snap.generation(cid, q.0);
                match cache.get(&Self::cache_key(cid, q.0, k)) {
                    Some((stamp, hit)) if *stamp == gen => out.push(Arc::clone(hit)),
                    _ => {
                        miss.push(j);
                        out.push(Arc::clone(&self.empty));
                    }
                }
            }
        } else {
            miss.extend(0..class_ids.len());
            out.resize_with(class_ids.len(), || Arc::clone(&self.empty));
        }
        let n_hits = (class_ids.len() - miss.len()) as u64;
        if n_hits > 0 {
            self.hits.fetch_add(n_hits, Ordering::Relaxed);
        }
        if !miss.is_empty() {
            self.misses.fetch_add(miss.len() as u64, Ordering::Relaxed);
        }
        let mut next_miss = miss.iter().peekable();
        for (j, &cid) in class_ids.iter().enumerate() {
            let missed = next_miss.next_if_eq(&&j).is_some();
            let counter = if missed {
                &classes[cid].misses
            } else {
                &classes[cid].hits
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }

        // Compute pass: the missing classes sweep their columns of the
        // *same* fused block — resident in cache after the first class's
        // walk — all from the same pinned epoch and one scratch buffer.
        if !miss.is_empty() {
            let mut scratch = Scratch::default();
            for &j in &miss {
                let mut list = RankedList::new();
                snap.rank_into(class_ids[j], q, k, &mut scratch, &mut list);
                out[j] = Arc::new(list);
            }

            // Fill pass: second single lock round-trip, stamped with the
            // generations of the snapshot the results came from.
            if self.cfg.cache_capacity > 0 {
                let mut cache = self.cache.lock();
                for &j in &miss {
                    let cid = class_ids[j];
                    let gen = snap.generation(cid, q.0);
                    cache.put(Self::cache_key(cid, q.0, k), (gen, Arc::clone(&out[j])));
                }
            }
        }
        Ok(out)
    }

    /// Ranks a batch of queries rayon-parallel, returning one list per
    /// query in input order. Records the batch's wall time in the latency
    /// histogram. Panics on an unknown class id;
    /// [`QueryServer::try_rank_batch`] is the non-panicking form.
    ///
    /// The batch pins one epoch snapshot per distinct shard up front; a
    /// delta landing mid-batch is simply not observed by this batch, and
    /// cache fills stamp each result with the generation of the snapshot
    /// that produced it.
    pub fn rank_batch(
        &self,
        class_id: usize,
        queries: &[NodeId],
        k: usize,
    ) -> Vec<Arc<RankedList>> {
        self.try_rank_batch(class_id, queries, k)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`QueryServer::rank_batch`] with a typed error on an unknown class
    /// id instead of a panic.
    pub fn try_rank_batch(
        &self,
        class_id: usize,
        queries: &[NodeId],
        k: usize,
    ) -> Result<Vec<Arc<RankedList>>, QueryError> {
        // The single-class case of the shared grid protocol: with one
        // class the row-major grid IS the per-query result vector.
        self.try_rank_grid(&[class_id], queries, k)
    }

    /// Single-threaded, cache-bypassing reference path: ranks each query
    /// in order with one reused scratch. Used by differential tests and
    /// the `bench_serving` baseline comparisons.
    pub fn rank_batch_sequential(
        &self,
        class_id: usize,
        queries: &[NodeId],
        k: usize,
    ) -> Vec<Arc<RankedList>> {
        let _ = self.class(class_id);
        let mut scratch = Scratch::default();
        queries
            .iter()
            .map(|&q| {
                let mut list = RankedList::new();
                self.snapshot(q.0)
                    .rank_into(class_id, q, k, &mut scratch, &mut list);
                Arc::new(list)
            })
            .collect()
    }

    /// The batch form of [`QueryServer::rank_multi`]: ranks every query
    /// for every class in `class_ids`, returning `result[i][j]` for query
    /// `i` under class `class_ids[j]`. Pins one epoch snapshot per
    /// distinct shard up front (shared by all classes), runs one cache
    /// pass over the whole query × class grid, coalesces duplicate
    /// `(query, class)` misses, and fans the distinct ones across rayon
    /// workers. Records one latency histogram entry, like
    /// [`QueryServer::rank_batch`]. Panics on an unknown class id;
    /// [`QueryServer::try_rank_multi_batch`] is the non-panicking form.
    pub fn rank_multi_batch(
        &self,
        class_ids: &[usize],
        queries: &[NodeId],
        k: usize,
    ) -> Vec<Vec<Arc<RankedList>>> {
        self.try_rank_multi_batch(class_ids, queries, k)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`QueryServer::rank_multi_batch`] with a typed error on an unknown
    /// class id instead of a panic — the front-end's execution primitive.
    /// Nothing is computed (and no counter moves) unless every class id
    /// validates.
    pub fn try_rank_multi_batch(
        &self,
        class_ids: &[usize],
        queries: &[NodeId],
        k: usize,
    ) -> Result<Vec<Vec<Arc<RankedList>>>, QueryError> {
        if class_ids.is_empty() {
            return Ok(queries.iter().map(|_| Vec::new()).collect());
        }
        let mut flat = self.try_rank_grid(class_ids, queries, k)?.into_iter();
        Ok((0..queries.len())
            .map(|_| flat.by_ref().take(class_ids.len()).collect())
            .collect())
    }

    /// The shared batched-ranking core: ranks every query under every
    /// class, returning the row-major grid (`result[i * n_classes + j]`
    /// is query `i` under class `class_ids[j]`). One epoch snapshot per
    /// distinct shard (covering all classes), one cache critical section
    /// over the whole grid, duplicate `(query, class)` misses coalesced,
    /// distinct misses fanned across per-worker chunks (lock-free — the
    /// workers read only the pinned snapshots, one reusable scratch
    /// each), one stamped cache fill, one latency histogram entry. Both
    /// public batch entry points are thin views of this grid, so the
    /// generation-stamp protocol lives exactly once.
    ///
    /// Degenerate inputs are handled here once for both entry points:
    /// every class id validates before anything is computed, and `k == 0`
    /// fills the whole grid from the shared empty list without touching
    /// the cache, the hit/miss counters or the latency histogram.
    fn try_rank_grid(
        &self,
        class_ids: &[usize],
        queries: &[NodeId],
        k: usize,
    ) -> Result<Vec<Arc<RankedList>>, QueryError> {
        let t0 = Instant::now();
        let classes = self.classes.load_full();
        for &cid in class_ids {
            if cid >= classes.len() {
                return Err(QueryError::UnknownClass(cid));
            }
        }
        if k == 0 {
            return Ok(vec![
                Arc::clone(&self.empty);
                queries.len() * class_ids.len()
            ]);
        }
        let n_classes = class_ids.len();
        let n_shards = self.n_shards;
        let mut out: Vec<Option<Arc<RankedList>>> = vec![None; queries.len() * n_classes];

        // Snapshot pass: clone the epoch of every shard this grid reads.
        let mut snaps: FxHashMap<usize, Arc<Shard>> = FxHashMap::default();
        for q in queries {
            let sid = q.0 as usize % n_shards;
            snaps.entry(sid).or_insert_with(|| self.snapshot_shard(sid));
        }

        // Cache pass: one critical section for the whole grid. Entries
        // stamped with an outdated anchor generation are stale (postings
        // patched since) and fall through to recompute.
        let mut miss_idx: Vec<usize> = Vec::new();
        if self.cfg.cache_capacity > 0 {
            let mut cache = self.cache.lock();
            for (i, q) in queries.iter().enumerate() {
                let snap = &snaps[&(q.0 as usize % n_shards)];
                for (j, &cid) in class_ids.iter().enumerate() {
                    let gen = snap.generation(cid, q.0);
                    match cache.get(&Self::cache_key(cid, q.0, k)) {
                        Some((stamp, hit)) if *stamp == gen => {
                            out[i * n_classes + j] = Some(Arc::clone(hit))
                        }
                        _ => miss_idx.push(i * n_classes + j),
                    }
                }
            }
        } else {
            miss_idx.extend(0..queries.len() * n_classes);
        }
        let total = (queries.len() * n_classes) as u64;
        self.hits
            .fetch_add(total - miss_idx.len() as u64, Ordering::Relaxed);
        self.misses
            .fetch_add(miss_idx.len() as u64, Ordering::Relaxed);
        let mut miss_per_class = vec![0u64; n_classes];
        for &slot in &miss_idx {
            miss_per_class[slot % n_classes] += 1;
        }
        for (j, &cid) in class_ids.iter().enumerate() {
            let c = &classes[cid];
            c.hits
                .fetch_add(queries.len() as u64 - miss_per_class[j], Ordering::Relaxed);
            c.misses.fetch_add(miss_per_class[j], Ordering::Relaxed);
        }

        // Coalesce duplicate (query, class) misses: a batch repeating a
        // hot key computes each distinct pair once and fans the Arc out.
        let mut slot_of: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        let mut unique: Vec<(NodeId, usize)> = Vec::new();
        for &slot in &miss_idx {
            let (q, cid) = (queries[slot / n_classes], class_ids[slot % n_classes]);
            slot_of.entry((q.0, cid as u32)).or_insert_with(|| {
                unique.push((q, cid));
                unique.len() - 1
            });
        }

        // Compute pass: per-worker chunks over the distinct misses. The
        // miss list is row-major, so a query missing several classes
        // occupies a consecutive run and its later classes sweep a
        // block the first class just pulled into cache.
        let mut computed: Vec<Option<Arc<RankedList>>> = vec![None; unique.len()];
        if !unique.is_empty() {
            let chunk = unique.len().div_ceil(self.workers);
            let snaps_ref = &snaps;
            rayon::scope(|s| {
                for (qs, outs) in unique.chunks(chunk).zip(computed.chunks_mut(chunk)) {
                    s.spawn(move |_| {
                        let mut scratch = Scratch::default();
                        for (slot, &(q, cid)) in outs.iter_mut().zip(qs) {
                            let mut list = RankedList::new();
                            snaps_ref[&(q.0 as usize % n_shards)].rank_into(
                                cid,
                                q,
                                k,
                                &mut scratch,
                                &mut list,
                            );
                            *slot = Some(Arc::new(list));
                        }
                    });
                }
            });
        }

        // Merge + cache fill: second short critical section. Stamps come
        // from the same snapshots the results were computed from.
        if self.cfg.cache_capacity > 0 && !unique.is_empty() {
            let mut cache = self.cache.lock();
            for ((q, cid), result) in unique.iter().zip(computed.iter()) {
                let result = result.as_ref().expect("worker filled every slot");
                let gen = snaps[&(q.0 as usize % n_shards)].generation(*cid, q.0);
                cache.put(Self::cache_key(*cid, q.0, k), (gen, Arc::clone(result)));
            }
        }
        for slot in miss_idx {
            let (q, cid) = (queries[slot / n_classes], class_ids[slot % n_classes]);
            let u = slot_of[&(q.0, cid as u32)];
            out[slot] = Some(Arc::clone(
                computed[u].as_ref().expect("worker filled every slot"),
            ));
        }

        self.latency.lock().record(t0.elapsed());
        Ok(out
            .into_iter()
            .map(|slot| slot.expect("every query × class answered"))
            .collect())
    }

    /// Applies an index delta to a registered class **without pausing
    /// serving**: re-dots only the touched anchors/pairs against the
    /// (already-updated) `index`, rebuilds/patches just the affected
    /// posting entries in copy-on-write clones of the touched shards,
    /// epoch-swaps each clone in with one pointer write, and bumps the
    /// invalidation generation of exactly the anchors whose result sets
    /// changed — cached entries for untouched queries keep serving, and
    /// concurrent `rank`/`rank_batch` calls keep flowing throughout,
    /// each observing every shard either pre- or post-delta, never torn.
    ///
    /// Concurrent deltas to the *same* class serialise on a per-class
    /// ingest lock; deltas to different classes run in parallel.
    ///
    /// `index` must be the class's vector index *after*
    /// `VectorIndex::apply_delta` returned `touch`, and the class's
    /// weights are the ones it was registered with (deltas never retrain).
    /// Results afterwards are bit-identical to re-registering the class
    /// from the updated index (asserted by tests and the
    /// `bench_incremental` acceptance check). Panics on an unknown class
    /// id.
    pub fn apply_delta(
        &self,
        class_id: usize,
        index: &VectorIndex,
        touch: &IndexTouch,
    ) -> DeltaStats {
        let fused = self.apply_delta_fused(&[ClassDelta {
            class_id,
            index,
            touch,
        }]);
        fused.per_class[0]
    }

    /// Applies one graph event's index deltas to **several classes in one
    /// pass**: plans every class's posting ops first (each under its
    /// per-class ingest lock, taken in ascending class-id order), then
    /// visits each affected shard **once** — one copy-on-write clone, one
    /// replay covering every class's ops and generation bumps, one
    /// pointer swap — instead of the `classes × shards` clone/swap cycles
    /// sequential [`QueryServer::apply_delta`] calls would pay. Readers
    /// keep flowing throughout, exactly as for the single-class path; a
    /// query observes each shard either wholly pre- or wholly post-swap
    /// (and since all classes land in the same swap, a multi-class query
    /// pinning one snapshot sees the delta atomically across classes).
    ///
    /// Each update's `index` must be that class's vector index *after*
    /// `VectorIndex::apply_delta` returned its `touch` (typically all
    /// patched from one shared `mgp_index::IndexDeltaBatch`). Results
    /// afterwards are bit-identical to applying the updates one class at
    /// a time, which in turn equals re-registering each class from its
    /// updated index. Per-class stats come back in input order;
    /// `swapped_shards` counts the shards *that class* changed, while
    /// [`FusedDeltaStats::fused_shard_visits`] counts the actual
    /// clone/swap cycles paid — one per affected shard, however many
    /// classes patch (or drop postings in) it.
    ///
    /// After planning, the affected shards are **independent**: each
    /// clone/replay/swap touches only its own slot. A wide delta
    /// therefore fans the shard patching across the rayon pool (one
    /// reusable scratch per worker);
    /// [`QueryServer::apply_delta_fused_sequential`] is the
    /// single-threaded replay the benches and differential tests compare
    /// against.
    ///
    /// # Panics
    /// Panics on an unknown class id or a class appearing twice.
    pub fn apply_delta_fused(&self, updates: &[ClassDelta<'_>]) -> FusedDeltaStats {
        self.apply_delta_fused_inner(updates, true)
    }

    /// [`QueryServer::apply_delta_fused`] with the per-shard patching
    /// replayed sequentially on the calling thread — the differential
    /// baseline for the parallel fan-out (bit-identical results and
    /// stats, minus the parallelism). `bench_incremental`'s wide-ingest
    /// section measures the speedup between the two.
    pub fn apply_delta_fused_sequential(&self, updates: &[ClassDelta<'_>]) -> FusedDeltaStats {
        self.apply_delta_fused_inner(updates, false)
    }

    fn apply_delta_fused_inner(
        &self,
        updates: &[ClassDelta<'_>],
        parallel: bool,
    ) -> FusedDeltaStats {
        // Lock order: writer locks in ascending class id (so concurrent
        // fused writers with overlapping class sets cannot deadlock),
        // then per-shard patch locks, at most one held per worker.
        let mut order: Vec<usize> = (0..updates.len()).collect();
        order.sort_unstable_by_key(|&s| updates[s].class_id);
        for w in order.windows(2) {
            assert!(
                updates[w[0]].class_id != updates[w[1]].class_id,
                "class id {} appears twice in a fused delta",
                updates[w[1]].class_id
            );
        }
        // Pin the class table once for the whole application: the writer
        // guards below borrow the pinned entries, and ids stay valid
        // across a concurrent registration (which only appends).
        let classes = self.classes.load_full();
        let mut plans: Vec<ClassPlan<'_>> = Vec::with_capacity(updates.len());
        for &input_slot in &order {
            let u = updates[input_slot];
            let class = classes
                .get(u.class_id)
                .unwrap_or_else(|| panic!("{}", QueryError::UnknownClass(u.class_id)));
            let mut guard = class.writer.lock();
            let mut stats = DeltaStats::default();
            let (ops, bumps) =
                plan_class_delta(&mut guard, u.index, u.touch, self.n_shards, &mut stats);
            plans.push(ClassPlan {
                input_slot,
                class_id: u.class_id,
                index: u.index,
                guard,
                ops,
                bumps,
                stats,
            });
        }

        // Phase 5, fused epoch swap: for each shard any class affects,
        // clone the current snapshot once (block and generation maps of
        // `Arc`s — shallow until an op actually touches an entry), replay
        // every class's ops, bump every class's generations, and install
        // the new epoch with one pointer swap — the only writer step a
        // reader can ever observe.
        //
        // A shard with a dropped-posting op also has a generation bump
        // for that anchor (its result set changed), so collecting both
        // key sets — then deduping — counts a shard that is patched AND
        // loses postings as ONE visit, matching the clone/swap cycles
        // actually paid.
        let mut affected: Vec<usize> = plans
            .iter()
            .flat_map(|p| p.ops.keys().chain(p.bumps.keys()).copied())
            .collect();
        affected.sort_unstable();
        affected.dedup();
        let fused_shard_visits = affected.len();

        // Split each plan's op map into per-shard rows up front so the
        // borrows fan out cleanly: workers get disjoint `&mut` rows of
        // ops and stats, plus a shared read-only replay context per class
        // (the writer guard is only *read* during replay).
        let n_plans = plans.len();
        let pos_of: FxHashMap<usize, usize> = affected
            .iter()
            .enumerate()
            .map(|(i, &sid)| (sid, i))
            .collect();
        let mut shard_ops: Vec<Vec<Vec<Op>>> = affected
            .iter()
            .map(|_| (0..n_plans).map(|_| Vec::new()).collect())
            .collect();
        for (pi, plan) in plans.iter_mut().enumerate() {
            for (sid, ops) in plan.ops.drain() {
                shard_ops[pos_of[&sid]][pi] = ops;
            }
        }
        let ctx: Vec<ReplayCtx<'_>> = plans
            .iter()
            .map(|p| ReplayCtx {
                class_id: p.class_id,
                index: p.index,
                writer: &p.guard,
                bumps: &p.bumps,
            })
            .collect();
        let mut stats_grid: Vec<Vec<DeltaStats>> = affected
            .iter()
            .map(|_| vec![DeltaStats::default(); n_plans])
            .collect();

        // The affected shards are independent (each worker touches only
        // its own slots), so a wide delta fans the clone+replay+swap
        // across the rayon pool in contiguous chunks, one reusable
        // scratch per worker. Narrow deltas (or the sequential baseline)
        // replay inline — no pool round-trip for the common 1-shard case.
        let workers = if parallel {
            self.workers.min(affected.len()).max(1)
        } else {
            1
        };
        if workers <= 1 {
            let mut scratch = PatchScratch::default();
            for ((&sid, ops_row), stats_row) in affected
                .iter()
                .zip(shard_ops.iter_mut())
                .zip(stats_grid.iter_mut())
            {
                self.patch_shard(sid, ops_row, &ctx, stats_row, &mut scratch);
            }
        } else {
            let chunk = affected.len().div_ceil(workers);
            let ctx = &ctx;
            rayon::scope(|s| {
                for ((sid_chunk, ops_chunk), stats_chunk) in affected
                    .chunks(chunk)
                    .zip(shard_ops.chunks_mut(chunk))
                    .zip(stats_grid.chunks_mut(chunk))
                {
                    s.spawn(move |_| {
                        let mut scratch = PatchScratch::default();
                        for ((&sid, ops_row), stats_row) in
                            sid_chunk.iter().zip(ops_chunk).zip(stats_chunk)
                        {
                            self.patch_shard(sid, ops_row, ctx, stats_row, &mut scratch);
                        }
                    });
                }
            });
        }
        drop(ctx);

        // Fold the replay stats back into the planning stats. Every
        // counter is a sum, so the shard fold order cannot change the
        // per-class totals — parallel and sequential replay report
        // identical stats.
        for stats_row in stats_grid {
            for (pi, st) in stats_row.into_iter().enumerate() {
                plans[pi].stats += st;
            }
        }

        let mut per_class = vec![DeltaStats::default(); updates.len()];
        for plan in plans {
            per_class[plan.input_slot] = plan.stats;
        }
        FusedDeltaStats {
            per_class,
            fused_shard_visits,
        }
    }

    /// Phase-5 worker: clone, replay, and swap **one** shard for every
    /// class of a fused delta. `ops_by_plan[pi]`/`out[pi]` are plan
    /// `pi`'s ops for this shard and its stats slot (written by exactly
    /// one worker — the grid rows are disjoint across workers).
    fn patch_shard(
        &self,
        sid: usize,
        ops_by_plan: &mut [Vec<Op>],
        ctx: &[ReplayCtx<'_>],
        out: &mut [DeltaStats],
        scratch: &mut PatchScratch,
    ) {
        let slot = &self.shards[sid];
        // Per-shard writer exclusion: a concurrent delta to *other*
        // classes must not clone the same epoch and lose this swap.
        let _patch = slot.patch.lock();
        let cur = slot.current.load_full();
        let mut next = Shard {
            blocks: cur.blocks.clone(),
            generations: cur.generations.clone(),
        };
        for (pi, ops) in ops_by_plan.iter_mut().enumerate() {
            let c = &ctx[pi];
            let bumps = c.bumps.get(&sid);
            if ops.is_empty() && bumps.is_none() {
                continue;
            }
            let stats = &mut out[pi];
            for op in ops.drain(..) {
                match op {
                    Op::Rebuild(x) => rebuild_block_column(
                        &mut next.blocks,
                        c.class_id,
                        x,
                        c.index,
                        c.writer,
                        stats,
                        scratch,
                    ),
                    Op::Patch(q, v) => {
                        patch_block_entry(&mut next.blocks, c.class_id, q, v, c.writer, stats)
                    }
                    Op::Remove(q, v) => {
                        remove_block_entry(&mut next.blocks, c.class_id, q, v, stats)
                    }
                }
            }
            if let Some(bumps) = bumps {
                if next.generations.len() <= c.class_id {
                    next.generations
                        .resize_with(c.class_id + 1, Default::default);
                }
                let g = Arc::make_mut(&mut next.generations[c.class_id]);
                for &q in bumps {
                    *g.entry(q).or_insert(0) += 1;
                }
            }
            stats.swapped_shards += 1;
        }
        // Swap first, drop after: `cur` (and `prev`, the same epoch)
        // keep the old shard alive across the pointer swap, so its
        // teardown — potentially thousands of Arc'd blocks — happens out
        // here (or in the shim's graveyard if a reader still pins it),
        // never on a reader's load path.
        let prev = slot.current.swap(Arc::new(next));
        let weak = Arc::downgrade(&prev);
        drop(prev);
        drop(cur);
        let mut retired = slot.retired.lock();
        retired.push(weak);
        retired.retain(|w| w.strong_count() > 0);
    }

    /// The invalidation generation of an anchor in a class (0 until a
    /// delta changes the anchor's result set). Cached results are stamped
    /// with this at fill time; a stamp behind the current generation is
    /// stale. Exposed so tests and operators can verify that a delta
    /// invalidated exactly the anchors it should have.
    pub fn anchor_generation(&self, class_id: usize, q: NodeId) -> u64 {
        let _ = self.class(class_id);
        self.snapshot(q.0).generation(class_id, q.0)
    }

    /// Sizes of a class's serving tables (postings, dot tables). A churn
    /// sequence that nets to nothing restores these exactly — no leaked
    /// empty entries. Panics on an unknown class id.
    ///
    /// Serialises with in-flight deltas on the per-class ingest lock, so
    /// the reported totals always describe one delta boundary — never a
    /// mix of shards from different epochs (a concurrent call blocks
    /// until the in-flight delta finishes; readers are unaffected).
    pub fn table_stats(&self, class_id: usize) -> TableStats {
        let class = self.class(class_id);
        // Ingest lock first, shard reads second — the same order
        // `apply_delta` takes them, so no deadlock and no torn totals.
        let w = class.writer.lock();
        let mut t = TableStats {
            n_node_dots: w.node_dots.len(),
            n_pair_dots: w.pair_dots.len(),
            ..Default::default()
        };
        for sid in 0..self.n_shards {
            let snap = self.snapshot_shard(sid);
            // A "posting" in the fused layout is a block column with at
            // least one present entry; churn that nets to nothing must
            // restore both counts exactly (no lingering all-absent
            // columns, no tombstoned candidate rows).
            for block in snap.blocks.values() {
                let entries = block.column_entries(class_id);
                if entries > 0 {
                    t.n_postings += 1;
                    t.n_posting_entries += entries;
                }
            }
        }
        t
    }

    /// Copy-on-write memory gauges for retired epochs: how many replaced
    /// shard snapshots are still alive because slow readers pin their
    /// `Arc`, and how much posting data those snapshots keep that the
    /// live epoch no longer shares. A healthy server with no in-flight
    /// readers reports all zeros — every swap's predecessor dies as soon
    /// as its last reader drops it (asserted by a unit test). Under churn
    /// with long-running batches, these gauges bound the transient memory
    /// amplification of the epoch-swap design.
    ///
    /// The byte figure is approximate: unshared block payloads (candidate
    /// ids plus every score column) plus a nominal per-map-slot overhead
    /// for the retired epoch's own maps.
    pub fn epoch_stats(&self) -> EpochStats {
        /// Nominal hash-map slot overhead (key + `Arc` pointer + control
        /// byte, rounded up) for the approximate byte gauge.
        const MAP_SLOT_BYTES: usize = 24;
        let mut s = EpochStats::default();
        for slot in &self.shards {
            // Drain the swap shim's deferred-reclamation list first: a
            // replaced epoch whose readers are all gone may still be
            // parked there, and it must count as dead, not retained.
            slot.current.collect();
            let mut retired = slot.retired.lock();
            retired.retain(|w| w.strong_count() > 0);
            if retired.is_empty() {
                continue;
            }
            let cur = slot.current.load_full();
            for weak in retired.iter() {
                let Some(old) = weak.upgrade() else { continue };
                s.retained_epochs += 1;
                for (q, block) in &old.blocks {
                    // A block shared with the live epoch costs nothing
                    // beyond the Arc — skip it entirely.
                    let shared = cur.blocks.get(q).is_some_and(|lb| Arc::ptr_eq(lb, block));
                    if shared {
                        continue;
                    }
                    s.retained_postings += 1;
                    s.retained_posting_entries += block.candidates.len();
                    s.approx_retained_bytes += block.candidates.len() * std::mem::size_of::<u32>()
                        + block.columns.iter().map(Vec::len).sum::<usize>()
                            * std::mem::size_of::<f64>();
                }
                let unshared_gens = old
                    .generations
                    .iter()
                    .enumerate()
                    .filter(|(cid, g)| {
                        !cur.generations
                            .get(*cid)
                            .is_some_and(|lg| Arc::ptr_eq(lg, g))
                    })
                    .map(|(_, g)| g.len())
                    .sum::<usize>();
                s.approx_retained_bytes += (old.blocks.len() + unshared_gens) * MAP_SLOT_BYTES;
            }
        }
        s
    }

    /// Per-class cache counters (the totals across classes are in
    /// [`QueryServer::stats`]). Panics on an unknown class id.
    pub fn class_stats(&self, class_id: usize) -> ClassCacheStats {
        let class = self.class(class_id);
        ClassCacheStats {
            hits: class.hits.load(Ordering::Relaxed),
            misses: class.misses.load(Ordering::Relaxed),
        }
    }

    /// Cache and latency counters accumulated since construction.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            latency: self.latency.lock().snapshot(),
        }
    }

    /// Drops every cached result (stats are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_index::{Transform, VectorIndex};
    use mgp_matching::AnchorCounts;

    /// Small consistent index: M0 links (1,2) and (1,3); M1 links (2,3)
    /// and (1,2) with different counts — enough for distinct rankings.
    fn sample_index() -> VectorIndex {
        let mut c0 = AnchorCounts::default();
        let mut c1 = AnchorCounts::default();
        let ins = |c: &mut AnchorCounts, x: u32, y: u32, n: u64| {
            c.per_pair
                .insert(mgp_graph::ids::pack_pair(NodeId(x), NodeId(y)), n);
            *c.per_node.entry(x).or_insert(0) += n;
            *c.per_node.entry(y).or_insert(0) += n;
        };
        ins(&mut c0, 1, 2, 4);
        ins(&mut c0, 1, 3, 1);
        ins(&mut c1, 2, 3, 2);
        ins(&mut c1, 1, 2, 1);
        VectorIndex::from_counts(&[c0, c1], Transform::Raw)
    }

    fn server(cache: usize) -> (QueryServer, VectorIndex, Vec<f64>) {
        let idx = sample_index();
        let w = vec![0.7, 0.3];
        let mut srv = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: cache,
        });
        srv.add_class("demo", &idx, &w);
        (srv, idx, w)
    }

    fn reference(idx: &VectorIndex, w: &[f64], q: NodeId, k: usize) -> RankedList {
        mgp_learning::mgp::rank_with_scores(idx, q, w, k)
    }

    #[test]
    fn export_import_roundtrip_is_bit_identical() {
        let (srv, idx, w) = server(0);
        let postings = srv.export_postings();
        assert!(!postings.is_empty());
        // Re-shard on import: 5 shards instead of 3.
        let back = QueryServer::from_parts(
            ServeConfig {
                workers: 2,
                shards: 5,
                cache_capacity: 0,
            },
            &[ClassExport {
                name: "demo",
                index: &idx,
                weights: &w,
            }],
            postings.clone(),
        )
        .unwrap();
        assert_eq!(back.class_id("demo"), Some(0));
        for q in 0..6u32 {
            for k in [0, 1, 2, 10] {
                assert_eq!(*back.rank(0, NodeId(q), k), *srv.rank(0, NodeId(q), k));
            }
        }
        assert_eq!(back.table_stats(0), srv.table_stats(0));
        // A second export from the rebuilt server is identical too.
        assert_eq!(back.export_postings(), postings);
    }

    #[test]
    fn from_parts_rejects_corrupt_blocks() {
        let (srv, idx, w) = server(0);
        let classes = [ClassExport {
            name: "demo",
            index: &idx,
            weights: &w,
        }];
        let cfg = || ServeConfig {
            workers: 1,
            shards: 2,
            cache_capacity: 0,
        };
        let good = srv.export_postings();

        let mut unsorted = good.clone();
        unsorted[0].candidates.reverse();
        let mut short_col = good.clone();
        short_col[0].columns[0].pop();
        let mut extra_col = good.clone();
        let n = extra_col[0].candidates.len();
        extra_col[0].columns = vec![vec![0.0; n]; 3];
        let mut dup = good.clone();
        let copy = dup[0].clone();
        dup.push(copy);
        for (what, bad) in [
            ("unsorted candidates", unsorted),
            ("short column", short_col),
            ("too many columns", extra_col),
            ("duplicate anchor", dup),
        ] {
            assert!(
                QueryServer::from_parts(cfg(), &classes, bad).is_err(),
                "{what} accepted"
            );
        }
        assert!(QueryServer::from_parts(cfg(), &classes, good).is_ok());
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryServer>();
        assert_send_sync::<ServerHandle>();
    }

    #[test]
    fn matches_reference_ranker_exactly() {
        let (srv, idx, w) = server(0);
        for q in 0..6u32 {
            for k in [0, 1, 2, 10] {
                let got = srv.rank(0, NodeId(q), k);
                let want = reference(&idx, &w, NodeId(q), k);
                assert_eq!(*got, want, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_and_reference() {
        let (srv, idx, w) = server(0);
        let queries: Vec<NodeId> = (0..40).map(|i| NodeId(i % 5)).collect();
        let batch = srv.rank_batch(0, &queries, 3);
        let seq = srv.rank_batch_sequential(0, &queries, 3);
        assert_eq!(batch.len(), queries.len());
        for ((b, s), &q) in batch.iter().zip(&seq).zip(&queries) {
            assert_eq!(**b, **s);
            assert_eq!(**b, reference(&idx, &w, q, 3));
        }
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let (srv, _, _) = server(16);
        let q = NodeId(1);
        let a = srv.rank(0, q, 2);
        let b = srv.rank(0, q, 2);
        assert_eq!(*a, *b);
        // Same Arc served from cache.
        assert!(Arc::ptr_eq(&a, &b));
        let stats = srv.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        // Different k is a different cache entry.
        let _ = srv.rank(0, q, 1);
        assert_eq!(srv.stats().cache_misses, 2);
    }

    #[test]
    fn batch_cache_interplay() {
        let (srv, _, _) = server(16);
        let queries: Vec<NodeId> = vec![NodeId(1), NodeId(2), NodeId(1), NodeId(3)];
        // First batch: 1 is deduped through the cache? No — the cache is
        // filled after the compute pass, so the first batch misses all 4.
        let first = srv.rank_batch(0, &queries, 2);
        let s1 = srv.stats();
        assert_eq!(s1.cache_misses, 4);
        // Second identical batch: all hits, equal values; duplicates now
        // share one cached Arc.
        let second = srv.rank_batch(0, &queries, 2);
        let s2 = srv.stats();
        assert_eq!(s2.cache_hits, 4);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(**a, **b);
        }
        assert!(Arc::ptr_eq(&second[0], &second[2]));
        assert_eq!(s2.latency.count, 2, "two batches recorded");
    }

    #[test]
    fn cache_eviction_keeps_serving_correct() {
        let (srv, idx, w) = server(2);
        for round in 0..3 {
            for q in 0..5u32 {
                let got = srv.rank(0, NodeId(q), 2);
                assert_eq!(
                    *got,
                    reference(&idx, &w, NodeId(q), 2),
                    "round {round} q={q}"
                );
            }
        }
    }

    #[test]
    fn unknown_query_is_empty_not_error() {
        let (srv, _, _) = server(4);
        assert!(srv.rank(0, NodeId(999), 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown class id")]
    fn unknown_class_panics() {
        let (srv, _, _) = server(0);
        let _ = srv.rank(7, NodeId(1), 1);
    }

    #[test]
    fn try_rank_rejects_unknown_class_without_moving_counters() {
        let (srv, _, _) = server(16);
        assert_eq!(
            srv.try_rank(7, NodeId(1), 1).unwrap_err(),
            QueryError::UnknownClass(7)
        );
        // A mixed list fails atomically: the valid class is not queried.
        assert_eq!(
            srv.try_rank_multi(&[0, 7], NodeId(1), 1).unwrap_err(),
            QueryError::UnknownClass(7)
        );
        assert_eq!(
            srv.try_rank_multi_batch(&[7], &[NodeId(1)], 1).unwrap_err(),
            QueryError::UnknownClass(7)
        );
        assert_eq!(
            srv.try_rank_batch(9, &[NodeId(1)], 1).unwrap_err(),
            QueryError::UnknownClass(9)
        );
        let s = srv.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (0, 0));
        assert_eq!(s.latency.count, 0);
        assert_eq!(
            srv.try_rank(7, NodeId(1), 1).unwrap_err().to_string(),
            "unknown class id 7"
        );
        assert!(srv.has_class(0) && !srv.has_class(7));
        assert_eq!(srv.n_classes(), 1);
        // The happy path answers through the same entry points.
        assert_eq!(
            *srv.try_rank(0, NodeId(1), 2).unwrap(),
            *srv.rank(0, NodeId(1), 2)
        );
    }

    #[test]
    fn k_zero_is_empty_and_never_touches_the_cache() {
        let (srv, _, _) = server(16);
        let a = srv.rank(0, NodeId(1), 0);
        assert!(a.is_empty());
        // Neither a hit nor a miss, no cache fill, no latency entry.
        let s = srv.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (0, 0));
        // All entry points share the one preallocated empty list.
        let multi = srv.rank_multi(&[0, 0], NodeId(1), 0);
        let grid = srv.rank_multi_batch(&[0], &[NodeId(1), NodeId(2)], 0);
        assert!(multi.iter().all(|r| Arc::ptr_eq(r, &a)));
        assert!(grid.iter().flatten().all(|r| Arc::ptr_eq(r, &a)));
        assert_eq!(srv.stats().latency.count, 0);
        // And the k == 0 entry cannot have displaced or poisoned real
        // keys: a k = 2 lookup computes fresh and a repeat hits.
        let _ = srv.rank(0, NodeId(1), 2);
        let _ = srv.rank(0, NodeId(1), 2);
        let s = srv.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (1, 1));
    }

    #[test]
    fn huge_k_saturates_instead_of_truncating_into_k_zero() {
        let (srv, idx, w) = server(16);
        // Before the fix `k as u32` truncated: k = 2³² + 17 landed in the
        // k = 17 slot and k = 2³² landed in the k = 0 slot. Saturating at
        // u32::MAX is lossless — no posting list has 2³² entries — so all
        // huge ks share one (correct, full-list) cache entry.
        let huge = (u32::MAX as usize).saturating_add(17);
        let full = srv.rank(0, NodeId(1), huge);
        assert_eq!(*full, reference(&idx, &w, NodeId(1), huge));
        let also = srv.rank(0, NodeId(1), (u32::MAX as usize).saturating_add(99));
        assert_eq!(*full, *also);
        // A degenerate k = 0 request after the huge-k fill stays empty.
        assert!(srv.rank(0, NodeId(1), 0).is_empty());
        assert_eq!(
            *srv.rank(0, NodeId(1), 17),
            reference(&idx, &w, NodeId(1), 17)
        );
    }

    #[test]
    fn pin_epoch_is_a_public_slow_reader() {
        let (srv, mut idx, _) = server(16);
        assert_eq!(srv.epoch_stats(), EpochStats::default());
        let pin = srv.pin_epoch(NodeId(1));
        let touch = idx.apply_delta(&count_delta(&[(1, 2), (2, 2)], &[((1, 2), 2)], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        let held = srv.epoch_stats();
        assert!(held.retained_epochs >= 1, "{held}");
        drop(pin);
        assert_eq!(srv.epoch_stats(), EpochStats::default());
    }

    #[test]
    fn replacing_a_class_clears_its_cache() {
        let (mut srv, idx, _) = server(16);
        let before = srv.rank(0, NodeId(1), 2);
        // Re-register with flipped weights: ranking changes.
        let w2 = vec![0.0, 1.0];
        let id = srv.add_class("demo", &idx, &w2);
        assert_eq!(id, 0);
        let after = srv.rank(0, NodeId(1), 2);
        assert_eq!(*after, reference(&idx, &w2, NodeId(1), 2));
        assert_ne!(*before, *after);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (srv, _, _) = server(4);
        assert!(srv.rank_batch(0, &[], 3).is_empty());
    }

    /// Applies a count delta to both the index and the server, asserting
    /// the server now answers identically to a freshly registered class
    /// over the updated index. `apply_delta` goes through `&self` — the
    /// server is shared, not exclusively borrowed.
    fn apply_and_check(
        srv: &QueryServer,
        idx: &mut VectorIndex,
        w: &[f64],
        delta: mgp_index::IndexDelta,
    ) -> DeltaStats {
        let touch = idx.apply_delta(&delta);
        let stats = srv.apply_delta(0, idx, &touch);
        let mut fresh = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 0,
        });
        fresh.add_class("fresh", idx, w);
        for q in 0..8u32 {
            for k in [1, 3, 10] {
                assert_eq!(
                    *srv.rank(0, NodeId(q), k),
                    *fresh.rank(0, NodeId(q), k),
                    "q={q} k={k} after delta"
                );
                assert_eq!(
                    *srv.rank(0, NodeId(q), k),
                    reference(idx, w, NodeId(q), k),
                    "q={q} k={k} vs reference"
                );
            }
        }
        stats
    }

    fn count_delta(
        node: &[(u32, i64)],
        pairs: &[((u32, u32), i64)],
        coord: usize,
        n: usize,
    ) -> mgp_index::IndexDelta {
        let mut d = mgp_index::IndexDelta::empty(n);
        for &(x, c) in node {
            d.counts[coord].per_node.insert(x, c);
        }
        for &((x, y), c) in pairs {
            d.counts[coord]
                .per_pair
                .insert(mgp_graph::ids::pack_pair(NodeId(x), NodeId(y)), c);
        }
        d
    }

    #[test]
    fn delta_patch_matches_full_reregistration() {
        let (srv, mut idx, w) = server(16);
        // Bump an existing pair (1,2) on coordinate 0.
        let stats = apply_and_check(
            &srv,
            &mut idx,
            &w,
            count_delta(&[(1, 2), (2, 2)], &[((1, 2), 2)], 0, 2),
        );
        assert_eq!(stats.redotted_nodes, 2);
        assert_eq!(stats.redotted_pairs, 1);
        assert_eq!(stats.rebuilt_postings, 2);
        // Nodes 1, 2 rebuilt; partner entries pointing at them patched.
        assert!(stats.patched_entries > 0);
        assert!(stats.invalidated_anchors >= 2);
        // Every invalidated anchor's shard was epoch-swapped (3 shards,
        // anchors 1, 2, 3 all changed → all 3 swapped).
        assert!(stats.swapped_shards >= 1 && stats.swapped_shards <= 3);
    }

    #[test]
    fn delta_with_new_pair_and_new_node() {
        let (srv, mut idx, w) = server(16);
        // Node 4 never seen before; new pair (3,4) on coordinate 1.
        apply_and_check(
            &srv,
            &mut idx,
            &w,
            count_delta(&[(3, 1), (4, 1)], &[((3, 4), 1)], 1, 2),
        );
        // 4 is now rankable and 3's posting gained an entry.
        assert_eq!(srv.rank(0, NodeId(4), 5).len(), 1);
        assert!(srv
            .rank(0, NodeId(3), 5)
            .iter()
            .any(|&(v, _)| v == NodeId(4)));
    }

    #[test]
    fn delta_invalidates_only_changed_queries() {
        let (srv, mut idx, w) = server(32);
        // Warm the cache for all anchors.
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let before = srv.stats();
        assert_eq!(before.cache_misses, 3);

        // Touch only the pair (2,3): anchors 2 and 3 change; their node
        // dots also move, patching entries that point at them (1 holds an
        // entry for 2 → 1's results change too in general). Use a delta
        // touching only node 3's count instead for a clean split: anchors
        // with 3 in their partner list are 1 (via M1) and 2 (via M1).
        let touch = idx.apply_delta(&count_delta(&[(3, 5)], &[], 1, 2));
        srv.apply_delta(0, &idx, &touch);

        // Anchor 3 and its partners 1, 2 were invalidated...
        let s1 = srv.stats();
        let _ = srv.rank(0, NodeId(3), 2);
        assert_eq!(srv.stats().cache_misses, s1.cache_misses + 1);
        // ...and recomputed answers match a fresh registration.
        let mut fresh = QueryServer::new(ServeConfig::default());
        fresh.add_class("fresh", &idx, &w);
        for q in 1..4u32 {
            assert_eq!(*srv.rank(0, NodeId(q), 2), *fresh.rank(0, NodeId(q), 2));
        }
    }

    #[test]
    fn untouched_queries_keep_their_cache_entries() {
        let (srv, mut idx, _) = server(32);
        // Anchor 1's partners are 2 and 3; a delta touching node 9 (an
        // isolated newcomer with no pairs) changes nobody's results.
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let touch = idx.apply_delta(&count_delta(&[(9, 1)], &[], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        let before = srv.stats();
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let after = srv.stats();
        // 9 has no partners: every repeat query was a cache hit except 9's
        // own (rebuilt, empty) posting — queries 1..4 all hit.
        assert_eq!(after.cache_hits, before.cache_hits + 3);
        assert_eq!(after.cache_misses, before.cache_misses);
    }

    #[test]
    #[should_panic(expected = "unknown class id")]
    fn delta_on_unknown_class_panics() {
        let (srv, idx, _) = server(4);
        let touch = mgp_index::IndexTouch::default();
        let _ = srv.apply_delta(9, &idx, &touch);
    }

    #[test]
    fn deletion_patch_matches_full_reregistration() {
        let (srv, mut idx, w) = server(16);
        // Kill pair (1,3) on coordinate 0 (its only coordinate): its
        // entries must vanish from both endpoints' postings.
        let stats = apply_and_check(
            &srv,
            &mut idx,
            &w,
            count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2),
        );
        assert_eq!(stats.redotted_nodes, 2);
        assert_eq!(stats.redotted_pairs, 1);
        // 1 and 3 remain partners through M1's pair (1,3)? No — the
        // sample index pairs are (1,2),(1,3) on M0 and (2,3),(1,2) on M1;
        // killing (1,3) on M0 removes the pair entirely.
        assert!(!srv
            .rank(0, NodeId(1), 5)
            .iter()
            .any(|&(v, _)| v == NodeId(3)));
        assert!(!srv
            .rank(0, NodeId(3), 5)
            .iter()
            .any(|&(v, _)| v == NodeId(1)));
    }

    #[test]
    fn deletion_that_empties_an_anchor_drops_its_posting() {
        let (srv, mut idx, w) = server(16);
        let before = srv.table_stats(0);
        // Remove every contribution node 3 has: pair (1,3) on M0 and
        // pair (2,3) on M1, with the matching node decrements.
        let mut d = count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2);
        let d2 = count_delta(&[(2, -2), (3, -2)], &[((2, 3), -2)], 1, 2);
        d.counts[1] = d2.counts[1].clone();
        apply_and_check(&srv, &mut idx, &w, d);
        // Node 3 is unrankable and holds no serving state at all.
        assert!(srv.rank(0, NodeId(3), 5).is_empty());
        let after = srv.table_stats(0);
        assert_eq!(after.n_postings, before.n_postings - 1);
        assert_eq!(after.n_pair_dots, before.n_pair_dots - 2);
        assert_eq!(after.n_node_dots, before.n_node_dots - 1);
    }

    #[test]
    fn churn_roundtrip_restores_tables_exactly() {
        let (srv, mut idx, w) = server(16);
        let before = srv.table_stats(0);
        // Forward: kill pair (1,3), add brand-new pair (4,5).
        let mut fwd = count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2);
        fwd.counts[1] = count_delta(&[(4, 3), (5, 3)], &[((4, 5), 3)], 1, 2).counts[1].clone();
        apply_and_check(&srv, &mut idx, &w, fwd);
        assert_ne!(srv.table_stats(0), before);
        // Backward: exact inverse.
        let mut bwd = count_delta(&[(1, 1), (3, 1)], &[((1, 3), 1)], 0, 2);
        bwd.counts[1] = count_delta(&[(4, -3), (5, -3)], &[((4, 5), -3)], 1, 2).counts[1].clone();
        apply_and_check(&srv, &mut idx, &w, bwd);
        // Tables restored exactly: same posting/dot footprint, no leaked
        // empties from the churn.
        assert_eq!(srv.table_stats(0), before);
        assert!(srv.rank(0, NodeId(4), 5).is_empty());
    }

    /// Satellite: a query whose result set is unchanged by a delta keeps
    /// serving from cache — its generation stamp is untouched — for both
    /// an insertion-only and a deletion-only delta.
    #[test]
    fn unchanged_result_set_still_serves_from_cache() {
        let (srv, mut idx, _) = server(32);
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let gens: Vec<u64> = (1..4)
            .map(|q| srv.anchor_generation(0, NodeId(q)))
            .collect();

        // Insertion far away: brand-new pair (8,9) on coordinate 0.
        let touch = idx.apply_delta(&count_delta(&[(8, 1), (9, 1)], &[((8, 9), 1)], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        for (i, q) in (1..4u32).enumerate() {
            assert_eq!(srv.anchor_generation(0, NodeId(q)), gens[i], "insert");
        }
        let s0 = srv.stats();
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        assert_eq!(srv.stats().cache_hits, s0.cache_hits + 3);
        assert_eq!(srv.stats().cache_misses, s0.cache_misses);

        // Deletion of the same far-away pair: still nobody's result set
        // in 1..4 changed — still all cache hits, stamps untouched.
        let touch = idx.apply_delta(&count_delta(&[(8, -1), (9, -1)], &[((8, 9), -1)], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        for (i, q) in (1..4u32).enumerate() {
            assert_eq!(srv.anchor_generation(0, NodeId(q)), gens[i], "delete");
        }
        let s1 = srv.stats();
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        assert_eq!(srv.stats().cache_hits, s1.cache_hits + 3);
        assert_eq!(srv.stats().cache_misses, s1.cache_misses);
        // ...while the churned anchors 8/9 were invalidated and emptied.
        assert!(srv.rank(0, NodeId(8), 2).is_empty());
        assert!(srv.anchor_generation(0, NodeId(8)) > 0);
    }

    #[test]
    fn multiple_classes_are_independent() {
        let idx = sample_index();
        let mut srv = QueryServer::new(ServeConfig::default());
        let a = srv.add_class("m0", &idx, &[1.0, 0.0]);
        let b = srv.add_class("m1", &idx, &[0.0, 1.0]);
        assert_eq!(srv.class_names(), vec!["m0", "m1"]);
        assert_eq!(srv.class_id("m1"), Some(b));
        let ra = srv.rank(a, NodeId(2), 1);
        let rb = srv.rank(b, NodeId(2), 1);
        // Under M0-only weights node 2's best is 1; under M1-only it's 3.
        assert_eq!(ra[0].0, NodeId(1));
        assert_eq!(rb[0].0, NodeId(3));
    }

    /// Tentpole: queries flow while a delta lands. Readers hammer the
    /// shared server from other threads while this thread applies a
    /// delta through `&self` — no `&mut` anywhere after registration.
    #[test]
    fn rank_batch_runs_concurrently_with_apply_delta() {
        let (srv, mut idx, w) = server(64);
        let srv = Arc::new(srv);
        let queries: Vec<NodeId> = (0..6u32).map(NodeId).collect();
        let stop = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let batch = srv.rank_batch(0, &queries, 3);
                        assert_eq!(batch.len(), queries.len());
                    }
                });
            }
            // Writer: a burst of forward/backward deltas on pair (1,2).
            for round in 0..20 {
                let sign = if round % 2 == 0 { 1 } else { -1 };
                let touch = idx.apply_delta(&count_delta(
                    &[(1, sign), (2, sign)],
                    &[((1, 2), sign)],
                    0,
                    2,
                ));
                let stats = srv.apply_delta(0, &idx, &touch);
                assert!(stats.swapped_shards > 0);
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Settled state answers like a fresh registration.
        let mut fresh = QueryServer::new(ServeConfig::default());
        fresh.add_class("fresh", &idx, &w);
        for &q in &queries {
            assert_eq!(*srv.rank(0, q, 3), *fresh.rank(0, q, 3));
        }
    }

    /// A two-class server over the sample index with distinct weights —
    /// the fused-path fixture.
    fn two_class_server(cache: usize) -> (QueryServer, VectorIndex, Vec<f64>, Vec<f64>) {
        let idx = sample_index();
        let (wa, wb) = (vec![0.7, 0.3], vec![0.2, 0.8]);
        let mut srv = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: cache,
        });
        srv.add_class("a", &idx, &wa);
        srv.add_class("b", &idx, &wb);
        (srv, idx, wa, wb)
    }

    #[test]
    fn rank_multi_matches_per_class_rank() {
        let (srv, idx, wa, wb) = two_class_server(16);
        for q in 0..6u32 {
            for k in [1, 2, 10] {
                let multi = srv.rank_multi(&[0, 1], NodeId(q), k);
                assert_eq!(multi.len(), 2);
                assert_eq!(*multi[0], reference(&idx, &wa, NodeId(q), k), "a q={q}");
                assert_eq!(*multi[1], reference(&idx, &wb, NodeId(q), k), "b q={q}");
                assert_eq!(*multi[0], *srv.rank(0, NodeId(q), k));
                assert_eq!(*multi[1], *srv.rank(1, NodeId(q), k));
            }
        }
        // Duplicate class ids are answered per slot.
        let dup = srv.rank_multi(&[1, 1], NodeId(2), 2);
        assert_eq!(*dup[0], *dup[1]);
    }

    #[test]
    fn rank_multi_shares_cache_entries_with_rank() {
        let (srv, _, _, _) = two_class_server(32);
        // rank_multi fills (class, q, k) entries that rank then hits...
        let first = srv.rank_multi(&[0, 1], NodeId(1), 2);
        let s0 = srv.stats();
        assert_eq!(s0.cache_misses, 2);
        let a = srv.rank(0, NodeId(1), 2);
        let b = srv.rank(1, NodeId(1), 2);
        assert!(Arc::ptr_eq(&a, &first[0]));
        assert!(Arc::ptr_eq(&b, &first[1]));
        assert_eq!(srv.stats().cache_hits, 2);
        // ...and vice versa: a warmed single-class entry hits in multi.
        let again = srv.rank_multi(&[0, 1], NodeId(1), 2);
        assert!(Arc::ptr_eq(&again[0], &a));
        assert_eq!(srv.stats().cache_hits, 4);
    }

    #[test]
    fn rank_multi_batch_matches_singles() {
        let (srv, idx, wa, wb) = two_class_server(16);
        let queries: Vec<NodeId> = (0..20).map(|i| NodeId(i % 6)).collect();
        let grid = srv.rank_multi_batch(&[0, 1], &queries, 3);
        assert_eq!(grid.len(), queries.len());
        for (row, &q) in grid.iter().zip(&queries) {
            assert_eq!(*row[0], reference(&idx, &wa, q, 3), "a q={q}");
            assert_eq!(*row[1], reference(&idx, &wb, q, 3), "b q={q}");
        }
        assert_eq!(srv.stats().latency.count, 1, "one histogram entry");
        assert!(srv.rank_multi_batch(&[0, 1], &[], 3).is_empty());
    }

    #[test]
    fn fused_apply_matches_sequential_applies() {
        // The same churn (bump pair (1,2) on coordinate 0, kill pair
        // (2,3) on coordinate 1) lands on two servers: one via
        // apply_delta_fused across both classes, one via two sequential
        // single-class apply_delta calls. Both must equal each other and
        // a fresh registration, entry for entry.
        let (fused_srv, mut idx_f, wa, wb) = two_class_server(16);
        let (seq_srv, mut idx_s, _, _) = two_class_server(16);

        let mut d = count_delta(&[(1, 2), (2, 2)], &[((1, 2), 2)], 0, 2);
        d.counts[1] = count_delta(&[(2, -2), (3, -2)], &[((2, 3), -2)], 1, 2).counts[1].clone();

        let touch_f = idx_f.apply_delta(&d);
        let fused = fused_srv.apply_delta_fused(&[
            ClassDelta {
                class_id: 0,
                index: &idx_f,
                touch: &touch_f,
            },
            ClassDelta {
                class_id: 1,
                index: &idx_f,
                touch: &touch_f,
            },
        ]);
        let touch_s = idx_s.apply_delta(&d);
        let sa = seq_srv.apply_delta(0, &idx_s, &touch_s);
        let sb = seq_srv.apply_delta(1, &idx_s, &touch_s);

        // Same per-class work, reported in input order.
        assert_eq!(fused.per_class[0], sa);
        assert_eq!(fused.per_class[1], sb);
        // The fusion saving: every shard visited once, not once per class.
        assert_eq!(
            fused.sequential_shard_visits(),
            sa.swapped_shards + sb.swapped_shards
        );
        assert!(fused.fused_shard_visits < fused.sequential_shard_visits());
        assert!(fused.fused_shard_visits >= sa.swapped_shards.max(sb.swapped_shards));
        let shown = fused.to_string();
        assert!(shown.contains("fused shard visits"), "{shown}");

        // Bit-identical serving state on both paths and vs fresh builds.
        let mut fresh = QueryServer::new(ServeConfig::default());
        fresh.add_class("a", &idx_f, &wa);
        fresh.add_class("b", &idx_f, &wb);
        for cid in 0..2 {
            assert_eq!(fused_srv.table_stats(cid), seq_srv.table_stats(cid));
            for q in 0..8u32 {
                for k in [1, 3, 10] {
                    let want = fresh.rank(cid, NodeId(q), k);
                    assert_eq!(*fused_srv.rank(cid, NodeId(q), k), *want, "fused {cid} {q}");
                    assert_eq!(*seq_srv.rank(cid, NodeId(q), k), *want, "seq {cid} {q}");
                }
            }
        }
        assert_eq!(
            fused.total().redotted_nodes,
            sa.redotted_nodes + sb.redotted_nodes
        );
    }

    #[test]
    fn parallel_and_sequential_fused_replay_are_bit_identical() {
        // The same wide two-class churn (touching anchors in every
        // shard) lands on two servers: one replays phase 5 through the
        // rayon fan-out, the other through the sequential baseline.
        // Stats, tables, and rankings must all be bit-identical.
        let (par, mut idx_p, wa, wb) = two_class_server(0);
        let (seq, mut idx_s, _, _) = two_class_server(0);

        let mut d = count_delta(
            &[(1, 2), (2, 2), (4, 3), (5, 3)],
            &[((1, 2), 2), ((4, 5), 3)],
            0,
            2,
        );
        d.counts[1] = count_delta(
            &[(2, 1), (3, 1), (6, 2), (7, 2)],
            &[((2, 3), 1), ((6, 7), 2)],
            1,
            2,
        )
        .counts[1]
            .clone();

        let tp = idx_p.apply_delta(&d);
        let fp = par.apply_delta_fused(&[
            ClassDelta {
                class_id: 0,
                index: &idx_p,
                touch: &tp,
            },
            ClassDelta {
                class_id: 1,
                index: &idx_p,
                touch: &tp,
            },
        ]);
        let ts = idx_s.apply_delta(&d);
        let fs = seq.apply_delta_fused_sequential(&[
            ClassDelta {
                class_id: 0,
                index: &idx_s,
                touch: &ts,
            },
            ClassDelta {
                class_id: 1,
                index: &idx_s,
                touch: &ts,
            },
        ]);

        assert_eq!(fp.per_class, fs.per_class);
        assert_eq!(fp.fused_shard_visits, fs.fused_shard_visits);
        assert!(fp.fused_shard_visits <= fp.sequential_shard_visits());

        let mut fresh = QueryServer::new(ServeConfig::default());
        fresh.add_class("a", &idx_p, &wa);
        fresh.add_class("b", &idx_p, &wb);
        for cid in 0..2 {
            assert_eq!(par.table_stats(cid), seq.table_stats(cid));
            for q in 0..10u32 {
                let want = fresh.rank(cid, NodeId(q), 4);
                assert_eq!(*par.rank(cid, NodeId(q), 4), *want, "par {cid} q={q}");
                assert_eq!(*seq.rank(cid, NodeId(q), 4), *want, "seq {cid} q={q}");
            }
        }
    }

    /// Satellite: the shard-visit fix. A delta that both rescores an
    /// entry and drops a whole posting **in the same shard** pays (and
    /// reports) one clone/swap cycle, not two.
    #[test]
    fn patch_and_drop_in_one_shard_is_one_visit() {
        let (srv, mut idx, w) = server(0);
        // Grow anchor 6 (shard 0) a posting that points at node 1.
        let t1 = idx.apply_delta(&count_delta(&[(1, 2), (6, 2)], &[((1, 6), 2)], 0, 2));
        srv.apply_delta(0, &idx, &t1);
        // One delta kills anchor 3's last pairs — dropping its posting
        // in shard 0 — while node 1's changed dot rescores entry
        // (6 → 1), also shard 0.
        let mut d = count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2);
        d.counts[1] = count_delta(&[(2, -2), (3, -2)], &[((2, 3), -2)], 1, 2).counts[1].clone();
        let t2 = idx.apply_delta(&d);
        let fused = srv.apply_delta_fused(&[ClassDelta {
            class_id: 0,
            index: &idx,
            touch: &t2,
        }]);
        let st = fused.per_class[0];
        assert!(st.dropped_postings >= 1, "{st}");
        assert!(st.patched_entries >= 1, "{st}");
        assert_eq!(
            fused.fused_shard_visits, st.swapped_shards,
            "a single-class fusion visits each affected shard exactly once"
        );
        assert!(fused.fused_shard_visits <= fused.sequential_shard_visits());

        let mut fresh = QueryServer::new(ServeConfig::default());
        fresh.add_class("demo", &idx, &w);
        for q in 0..8u32 {
            assert_eq!(
                *srv.rank(0, NodeId(q), 5),
                *fresh.rank(0, NodeId(q), 5),
                "q={q}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn fused_apply_rejects_duplicate_class() {
        let (srv, idx, _, _) = two_class_server(0);
        let touch = mgp_index::IndexTouch::default();
        let d = ClassDelta {
            class_id: 0,
            index: &idx,
            touch: &touch,
        };
        let _ = srv.apply_delta_fused(&[d, d]);
    }

    /// Satellite: GC accounting. A reader pinning a pre-delta snapshot
    /// keeps exactly that epoch (and its unshared postings) alive; when
    /// the last reader drops it, the epoch is released and every gauge
    /// returns to zero.
    #[test]
    fn dropping_last_reader_releases_retired_epoch() {
        let (srv, mut idx, _) = server(16);
        assert_eq!(srv.epoch_stats(), EpochStats::default());

        // Pin the shard that anchor 1 lives in, then churn anchor 1.
        let pin = srv.snapshot(1);
        let touch = idx.apply_delta(&count_delta(&[(1, 2), (2, 2)], &[((1, 2), 2)], 0, 2));
        srv.apply_delta(0, &idx, &touch);

        let held = srv.epoch_stats();
        assert!(held.retained_epochs >= 1, "{held}");
        assert!(
            held.retained_postings >= 1,
            "the pinned epoch holds anchor 1's pre-delta posting: {held}"
        );
        assert!(held.retained_posting_entries >= 1);
        assert!(held.approx_retained_bytes > 0);
        assert!(held.to_string().contains("retained epochs"));

        drop(pin);
        assert_eq!(
            srv.epoch_stats(),
            EpochStats::default(),
            "dropping the last reader must release the epoch"
        );
    }

    #[test]
    fn class_stats_track_per_class_hits_and_misses() {
        let (srv, _, _, _) = two_class_server(32);
        let _ = srv.rank(0, NodeId(1), 2); // a: miss
        let _ = srv.rank(0, NodeId(1), 2); // a: hit
        let _ = srv.rank_multi(&[0, 1], NodeId(1), 2); // a: hit, b: miss
        let a = srv.class_stats(0);
        let b = srv.class_stats(1);
        assert_eq!((a.hits, a.misses), (2, 1));
        assert_eq!((b.hits, b.misses), (0, 1));
        assert!((a.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ClassCacheStats::default().hit_rate(), 0.0);
        let s = srv.stats();
        assert_eq!(s.cache_hits, a.hits + b.hits);
        assert_eq!(s.cache_misses, a.misses + b.misses);
    }

    #[test]
    fn delta_stats_display_and_sum() {
        let mut a = DeltaStats {
            redotted_nodes: 2,
            redotted_pairs: 1,
            rebuilt_postings: 2,
            patched_entries: 3,
            removed_entries: 1,
            dropped_postings: 1,
            invalidated_anchors: 4,
            swapped_shards: 2,
        };
        let shown = a.to_string();
        assert!(shown.contains("2 node / 1 pair dots"), "{shown}");
        assert!(shown.contains("2 shard swaps"), "{shown}");
        a += a;
        assert_eq!(a.redotted_nodes, 4);
        assert_eq!(a.swapped_shards, 4);

        let t = TableStats {
            n_postings: 3,
            n_posting_entries: 6,
            n_node_dots: 4,
            n_pair_dots: 3,
        };
        assert_eq!(
            t.to_string(),
            "3 postings (6 entries), 4 node dots, 3 pair dots"
        );
    }

    #[test]
    fn register_class_matches_from_scratch_build() {
        // Live-register a second class on a serving (&self via Arc)
        // server, then compare every answer and every table stat against
        // a server built with both classes from scratch.
        let idx = sample_index();
        let (wa, wb) = (vec![0.7, 0.3], vec![0.2, 0.8]);
        let mut srv = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 16,
        });
        srv.add_class("a", &idx, &wa);
        let srv: ServerHandle = Arc::new(srv);
        assert_eq!(srv.n_classes(), 1);
        let b = srv.register_class("b", &idx, &wb).unwrap();
        assert_eq!(b, 1);
        assert_eq!(srv.n_classes(), 2);
        assert_eq!(srv.class_id("b"), Some(1));
        assert_eq!(srv.class_names(), vec!["a", "b"]);

        let mut fresh = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 16,
        });
        fresh.add_class("a", &idx, &wa);
        fresh.add_class("b", &idx, &wb);
        for q in 0..6u32 {
            for k in [1usize, 3, 10] {
                for cid in 0..2 {
                    assert_eq!(
                        *srv.rank(cid, NodeId(q), k),
                        *fresh.rank(cid, NodeId(q), k),
                        "q={q} k={k} cid={cid}"
                    );
                }
                assert_eq!(
                    srv.rank_multi(&[0, 1], NodeId(q), k)
                        .iter()
                        .map(|r| (**r).clone())
                        .collect::<Vec<_>>(),
                    fresh
                        .rank_multi(&[0, 1], NodeId(q), k)
                        .iter()
                        .map(|r| (**r).clone())
                        .collect::<Vec<_>>(),
                );
            }
        }
        for cid in 0..2 {
            assert_eq!(srv.table_stats(cid), fresh.table_stats(cid));
        }
        // Registration epoch-swapped shards; with no reader pinning the
        // old epochs nothing may be retained.
        assert_eq!(srv.epoch_stats(), EpochStats::default());
    }

    #[test]
    fn register_class_rejects_duplicate_names() {
        let (srv, idx, w) = server(4);
        let err = srv.register_class("demo", &idx, &w).unwrap_err();
        assert_eq!(err, RegisterError::DuplicateName("demo".to_owned()));
        assert!(err.to_string().contains("demo"));
        assert_eq!(srv.n_classes(), 1);
    }

    #[test]
    fn register_class_then_delta_flows_like_any_class() {
        // A runtime-registered class must ride subsequent deltas exactly
        // like a build-time class: patch both through one fused call and
        // compare against full re-registration.
        let idx = sample_index();
        let (wa, wb) = (vec![0.7, 0.3], vec![0.2, 0.8]);
        let mut srv = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 16,
        });
        srv.add_class("a", &idx, &wa);
        srv.register_class("b", &idx, &wb).unwrap();

        // One signed count change: bump pair (1,2) on metagraph 0.
        let mut idx_now = idx.clone();
        let touch = idx_now.apply_delta(&count_delta(&[(1, 2), (2, 2)], &[((1, 2), 2)], 0, 2));
        let fused = srv.apply_delta_fused(&[
            ClassDelta {
                class_id: 0,
                index: &idx_now,
                touch: &touch,
            },
            ClassDelta {
                class_id: 1,
                index: &idx_now,
                touch: &touch,
            },
        ]);
        assert_eq!(fused.per_class.len(), 2);

        let mut fresh = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 0,
        });
        fresh.add_class("a", &idx_now, &wa);
        fresh.add_class("b", &idx_now, &wb);
        for q in 0..6u32 {
            for cid in 0..2 {
                assert_eq!(
                    *srv.rank(cid, NodeId(q), 10),
                    *fresh.rank(cid, NodeId(q), 10),
                    "q={q} cid={cid}"
                );
            }
            assert_eq!(
                srv.table_stats(q as usize % 2),
                fresh.table_stats(q as usize % 2)
            );
        }
    }

    #[test]
    fn register_class_is_readable_mid_traffic() {
        // Readers hammer class 0 while a writer registers classes 1..=4;
        // every successfully-resolved new id must answer correctly
        // immediately (publish-last ordering), and class 0 must never
        // miss a beat.
        let idx = sample_index();
        let w = vec![0.7, 0.3];
        let mut srv = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 16,
        });
        srv.add_class("base", &idx, &w);
        let srv: ServerHandle = Arc::new(srv);
        let expect = (*srv.rank(0, NodeId(1), 10)).clone();

        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let srv = Arc::clone(&srv);
                let stop = Arc::clone(&stop);
                let expect = expect.clone();
                std::thread::spawn(move || {
                    let mut seen_new = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        assert_eq!(*srv.rank(0, NodeId(1), 10), expect);
                        let n = srv.n_classes();
                        for cid in 1..n {
                            // Registered ids must already have postings.
                            let _ = srv.rank(cid, NodeId(1), 10);
                            seen_new += 1;
                        }
                    }
                    seen_new
                })
            })
            .collect();
        for i in 1..=4 {
            let name = format!("extra{i}");
            let wid = vec![0.1 * i as f64, 1.0 - 0.1 * i as f64];
            let cid = srv.register_class(&name, &idx, &wid).unwrap();
            assert_eq!(cid, i);
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // Every registered class answers exactly like a fresh build.
        let mut fresh = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 0,
        });
        fresh.add_class("base", &idx, &w);
        for i in 1..=4 {
            let wid = vec![0.1 * i as f64, 1.0 - 0.1 * i as f64];
            fresh.add_class(&format!("extra{i}"), &idx, &wid);
        }
        for cid in 0..5 {
            for q in 0..6u32 {
                assert_eq!(
                    *srv.rank(cid, NodeId(q), 10),
                    *fresh.rank(cid, NodeId(q), 10)
                );
            }
        }
    }
}

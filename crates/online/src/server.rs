//! The [`QueryServer`]: a batched, concurrent top-k proximity ranker.
//!
//! ## From per-query loop to serving layer
//!
//! The seed's online phase answers one query at a time with
//! `mgp_learning::mgp::rank`: for query `q` it walks `q`'s index partners
//! and evaluates `π(q, v; w) = 2 (m_qv · w) / (m_q · w + m_v · w)` from the
//! sparse vectors, recomputing every dot product per candidate. A trained
//! model's weights are *fixed* at serve time, so all of those dot products
//! are query-independent — the server materialises them once per class:
//!
//! * `m_v · w` for every anchor node → one dense score per node,
//! * `m_qv · w` for every co-occurring pair → one score per posting,
//!
//! and folds both into per-query *posting lists* `q → [(v, π(q, v))]`
//! carrying the **final proximity**, partitioned into shards by `q`. A
//! query then costs one posting copy plus a top-k sort — no arithmetic,
//! no per-candidate lookups. Scores come out bit-identical to the seed
//! path because each dot is evaluated once with the same
//! `mgp_index::dot` accumulation over the same coordinate order, the
//! score uses the same final expression, and the tie-break comparator is
//! copied verbatim.
//!
//! ## Concurrency model
//!
//! [`QueryServer::rank_batch`] first coalesces duplicate queries, then
//! splits the distinct misses into one contiguous chunk per rayon
//! worker. Workers write disjoint slices of the result vector and only
//! *read* the (immutable, unlocked) shard state, so the compute phase is
//! lock-free; each worker reuses a [`Scratch`] buffer across its chunk so
//! the hot loop does no per-query allocation beyond the returned lists.
//! The bounded LRU cache is consulted once before the parallel section and
//! updated once after it (two short critical sections per batch, none per
//! query). Shards bound per-map size and are the natural unit for the
//! roadmap's shard-affine scheduling and incremental update work; today
//! every worker may read any shard.

use crate::cache::LruCache;
use crate::histogram::{LatencyHistogram, LatencySnapshot};
use mgp_graph::{FxHashMap, FxHashSet, NodeId};
use mgp_index::{IndexTouch, VectorIndex};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A ranked result list: `(node, score)` in descending score order.
pub type RankedList = Vec<(NodeId, f64)>;

/// Cache payload: the anchor's invalidation generation at fill time plus
/// the shared result (see the field docs on [`QueryServer`]).
type CachedEntry = (u64, Arc<RankedList>);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads for [`QueryServer::rank_batch`] (0 = available
    /// parallelism).
    pub workers: usize,
    /// Posting-list shards per class (0 = 4 × workers, at least 1).
    pub shards: usize,
    /// Bounded LRU capacity in `(class, query, k)` entries (0 disables
    /// caching).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            shards: 0,
            cache_capacity: 4096,
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            rayon::current_num_threads()
        } else {
            self.workers
        }
    }

    fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            (4 * self.resolved_workers()).max(1)
        } else {
            self.shards
        }
    }
}

/// One shard of a class's posting lists: the anchor nodes `q` with
/// `q mod n_shards == shard_id`, each mapping to its candidate list
/// `[(v, π(q, v))]` in ascending `v` (the partner order of the index).
#[derive(Debug, Default)]
struct Shard {
    postings: FxHashMap<u32, Vec<(u32, f64)>>,
}

/// A registered class: fully precomputed proximity postings sharded by
/// anchor node. For fixed weights the *entire* score
/// `π(q, v) = 2 (m_qv · w) / (m_q · w + m_v · w)` is query-independent,
/// so build time materialises final scores and serving a query is a
/// posting copy plus a top-k sort — no arithmetic, no lookups.
///
/// The dot tables and weights are retained after build so
/// [`QueryServer::apply_delta`] can re-dot only touched anchors/pairs and
/// patch the affected posting entries in place instead of rebuilding.
struct ClassServing {
    name: String,
    shards: Vec<Shard>,
    weights: Vec<f64>,
    node_dots: FxHashMap<u32, f64>,
    pair_dots: FxHashMap<u64, f64>,
    /// Per-anchor invalidation stamp, bumped whenever the anchor's result
    /// set changes under a delta; cached entries remember the stamp they
    /// were computed at. Anchors absent from the map are at generation 0.
    generations: FxHashMap<u32, u64>,
}

impl ClassServing {
    fn build(name: &str, index: &VectorIndex, weights: &[f64], n_shards: usize) -> Self {
        // Dot-product tables, each entry evaluated once with the same
        // `mgp_index::dot` accumulation order the reference ranker uses.
        let mut node_dots: FxHashMap<u32, f64> =
            FxHashMap::with_capacity_and_hasher(index.n_nodes(), Default::default());
        for (x, v) in index.iter_nodes() {
            node_dots.insert(x.0, mgp_index::dot(v, weights));
        }
        let mut pair_dots: FxHashMap<u64, f64> =
            FxHashMap::with_capacity_and_hasher(index.n_pairs(), Default::default());
        for (key, v) in index.iter_pairs() {
            pair_dots.insert(key, mgp_index::dot(v, weights));
        }
        // Postings follow the index's partner order (ascending node id)
        // and carry the final proximity, evaluated with the same
        // expression shape as mgp::proximity (q == v cannot occur in a
        // posting: pairs are strictly unordered distinct nodes).
        let mut shards: Vec<Shard> = (0..n_shards).map(|_| Shard::default()).collect();
        for (q, partners) in index.iter_partners() {
            let posting = posting_for(q, partners, &node_dots, &pair_dots);
            shards[q.0 as usize % n_shards]
                .postings
                .insert(q.0, posting);
        }
        ClassServing {
            name: name.to_owned(),
            shards,
            weights: weights.to_vec(),
            node_dots,
            pair_dots,
            generations: FxHashMap::default(),
        }
    }

    fn generation(&self, q: u32) -> u64 {
        self.generations.get(&q).copied().unwrap_or(0)
    }

    /// Applies an index delta: re-dots the touched nodes/pairs (dropping
    /// dots of entries the delta erased), rebuilds the postings of anchors
    /// whose own `m_q · w` changed (dropping postings of anchors with no
    /// partners left), and patches the individual entries those changes
    /// leak into (a changed node dot alters the denominator of every
    /// posting entry *pointing at* that node; a changed pair dot alters
    /// the two entries of that pair; a *dead* pair removes them).
    ///
    /// `index` is the class's vector index *after*
    /// `VectorIndex::apply_delta`, so "erased" is visible as an empty
    /// vector / missing partner there — churn that nets to nothing leaves
    /// the tables bit-identical to a fresh registration, with no
    /// tombstoned empties.
    fn apply_delta(&mut self, index: &VectorIndex, touch: &IndexTouch, stats: &mut DeltaStats) {
        // Phase 1: refresh the dot tables for exactly the touched set;
        // vanished nodes/pairs leave the tables instead of staying at 0.
        let redot: FxHashSet<u32> = touch.nodes.iter().copied().collect();
        for &x in &touch.nodes {
            let vec = index.node_vec(NodeId(x));
            if vec.is_empty() {
                self.node_dots.remove(&x);
            } else {
                self.node_dots.insert(x, mgp_index::dot(vec, &self.weights));
            }
        }
        stats.redotted_nodes += touch.nodes.len();
        for &key in &touch.pairs {
            let (x, y) = mgp_graph::ids::unpack_pair(key);
            let vec = index.pair_vec(x, y);
            if vec.is_empty() {
                self.pair_dots.remove(&key);
            } else {
                self.pair_dots
                    .insert(key, mgp_index::dot(vec, &self.weights));
            }
        }
        stats.redotted_pairs += touch.pairs.len();

        // Phase 2: rebuild whole postings for anchors with a changed node
        // dot (every entry's denominator moved, and partners may have
        // appeared or vanished). An anchor with no partners left loses
        // its posting list entirely.
        let mut changed: FxHashSet<u32> = FxHashSet::default();
        let n_shards = self.shards.len();
        for &x in &touch.nodes {
            let partners = index.partners(NodeId(x));
            let postings = &mut self.shards[x as usize % n_shards].postings;
            if partners.is_empty() {
                if postings.remove(&x).is_some() {
                    stats.dropped_postings += 1;
                }
            } else {
                let posting = posting_for(NodeId(x), partners, &self.node_dots, &self.pair_dots);
                postings.insert(x, posting);
                stats.rebuilt_postings += 1;
            }
            changed.insert(x);
        }

        // Phase 3: patch single entries. (a) For each anchor x with a
        // changed dot, every surviving partner v of x holds an entry
        // (v → x) whose denominator moved. (b) A touched pair {x, y}
        // where neither dot changed (defensive: deltas normally touch
        // both endpoints' node counts too) needs its two entries rescored
        // — or removed, when the pair died.
        for &x in &touch.nodes {
            // Clone the partner list view cheaply: it lives in the index.
            for &v in index.partners(NodeId(x)) {
                if redot.contains(&v) {
                    continue; // already rebuilt wholesale
                }
                self.patch_entry(v, x, stats);
                changed.insert(v);
            }
        }
        for &key in &touch.pairs {
            let alive = self.pair_dots.contains_key(&key);
            let (x, y) = mgp_graph::ids::unpack_pair(key);
            for (q, v) in [(x.0, y.0), (y.0, x.0)] {
                if redot.contains(&q) {
                    continue;
                }
                if alive {
                    self.patch_entry(q, v, stats);
                } else {
                    self.remove_entry(q, v, stats);
                }
                changed.insert(q);
            }
        }

        // Phase 4: bump invalidation stamps for every anchor whose
        // ranking may have moved.
        stats.invalidated_anchors += changed.len();
        for q in changed {
            *self.generations.entry(q).or_insert(0) += 1;
        }
    }

    /// Rescores (or inserts, for a brand-new partner) the entry for
    /// candidate `v` in anchor `q`'s posting list.
    fn patch_entry(&mut self, q: u32, v: u32, stats: &mut DeltaStats) {
        let score = score_of(q, v, &self.node_dots, &self.pair_dots);
        let n_shards = self.shards.len();
        let posting = self.shards[q as usize % n_shards]
            .postings
            .entry(q)
            .or_default();
        match posting.binary_search_by_key(&v, |&(u, _)| u) {
            Ok(pos) => posting[pos].1 = score,
            Err(pos) => posting.insert(pos, (v, score)),
        }
        stats.patched_entries += 1;
    }

    /// Removes the dead entry for candidate `v` from anchor `q`'s posting
    /// list, dropping the posting entirely when it empties.
    fn remove_entry(&mut self, q: u32, v: u32, stats: &mut DeltaStats) {
        let n_shards = self.shards.len();
        let postings = &mut self.shards[q as usize % n_shards].postings;
        let Some(posting) = postings.get_mut(&q) else {
            return;
        };
        if let Ok(pos) = posting.binary_search_by_key(&v, |&(u, _)| u) {
            posting.remove(pos);
            stats.removed_entries += 1;
        }
        if posting.is_empty() {
            postings.remove(&q);
            stats.dropped_postings += 1;
        }
    }

    /// Ranks one query into `out` using `scratch`, replicating
    /// `mgp_learning::mgp::rank_with_scores` exactly.
    fn rank_into(&self, q: NodeId, k: usize, scratch: &mut Scratch, out: &mut RankedList) {
        out.clear();
        let shard = &self.shards[q.0 as usize % self.shards.len()];
        let Some(posting) = shard.postings.get(&q.0) else {
            return;
        };
        scratch.scored.clear();
        scratch
            .scored
            .extend(posting.iter().map(|&(v, score)| (score, v)));
        // Verbatim tie-break from mgp::rank_with_scores: descending score,
        // then ascending node id.
        scratch
            .scored
            .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        scratch.scored.truncate(k);
        out.extend(scratch.scored.iter().map(|&(s, v)| (NodeId(v), s)));
    }
}

/// Per-worker reusable state: the candidate scoring buffer.
#[derive(Default)]
struct Scratch {
    scored: Vec<(f64, u32)>,
}

/// Final proximity of `(q, v)` from the dot tables — the exact expression
/// shape of `mgp_learning::mgp::proximity` for distinct nodes.
#[inline]
fn score_of(
    q: u32,
    v: u32,
    node_dots: &FxHashMap<u32, f64>,
    pair_dots: &FxHashMap<u64, f64>,
) -> f64 {
    let key = mgp_graph::ids::pack_pair(NodeId(q), NodeId(v));
    let pair_dot = pair_dots.get(&key).copied().unwrap_or(0.0);
    let nq = node_dots.get(&q).copied().unwrap_or(0.0);
    let nv = node_dots.get(&v).copied().unwrap_or(0.0);
    let denom = nq + nv;
    if denom <= 0.0 {
        0.0
    } else {
        2.0 * pair_dot / denom
    }
}

/// Materialises an anchor's posting list in the index's partner order
/// (ascending node id).
fn posting_for(
    q: NodeId,
    partners: &[u32],
    node_dots: &FxHashMap<u32, f64>,
    pair_dots: &FxHashMap<u64, f64>,
) -> Vec<(u32, f64)> {
    partners
        .iter()
        .map(|&v| (v, score_of(q.0, v, node_dots, pair_dots)))
        .collect()
}

/// Work accounting for one [`QueryServer::apply_delta`] call — evidence
/// that a delta stayed proportional to its touch set rather than the
/// class size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Node dot products recomputed.
    pub redotted_nodes: usize,
    /// Pair dot products recomputed.
    pub redotted_pairs: usize,
    /// Posting lists rebuilt wholesale (anchors whose own dot changed).
    pub rebuilt_postings: usize,
    /// Individual posting entries rescored or inserted.
    pub patched_entries: usize,
    /// Individual posting entries removed (dead pairs).
    pub removed_entries: usize,
    /// Whole posting lists dropped (anchors left with no partners).
    pub dropped_postings: usize,
    /// Anchors whose cached results were invalidated (generation bumped).
    pub invalidated_anchors: usize,
}

/// Sizes of one class's precomputed serving tables — observability for
/// capacity planning, and the churn-soak tests' leak detector (a delta
/// sequence that nets to nothing must restore these exactly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Posting lists across all shards (one per anchor with partners).
    pub n_postings: usize,
    /// Total posting entries across all lists.
    pub n_posting_entries: usize,
    /// Entries in the `m_x · w` node-dot table.
    pub n_node_dots: usize,
    /// Entries in the `m_xy · w` pair-dot table.
    pub n_pair_dots: usize,
}

/// Cache hit/miss counters and latency summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Queries answered from the LRU cache.
    pub cache_hits: u64,
    /// Queries computed from the index.
    pub cache_misses: u64,
    /// Per-batch latency summary.
    pub latency: LatencySnapshot,
}

/// A query-serving facade over one or more trained class models.
///
/// Build one via `mgp_core::SearchEngine::serve()` (which registers every
/// trained class) or manually with [`QueryServer::new`] +
/// [`QueryServer::add_class`].
pub struct QueryServer {
    cfg: ServeConfig,
    workers: usize,
    n_shards: usize,
    classes: Vec<ClassServing>,
    /// `(class, query, k) → (anchor generation at fill time, result)`.
    /// Entries whose stamp trails the anchor's current generation are
    /// stale (the anchor's postings were patched by a delta) and are
    /// treated as misses, then overwritten — so a delta invalidates
    /// exactly the keys whose query's result set changed, lazily, without
    /// scanning the cache.
    cache: Mutex<LruCache<(u32, u32, u32), CachedEntry>>,
    latency: Mutex<LatencyHistogram>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryServer {
    /// Creates an empty server.
    pub fn new(cfg: ServeConfig) -> Self {
        let workers = cfg.resolved_workers();
        let n_shards = cfg.resolved_shards();
        let cache = Mutex::new(LruCache::new(cfg.cache_capacity));
        QueryServer {
            cfg,
            workers,
            n_shards,
            classes: Vec::new(),
            cache,
            latency: Mutex::new(LatencyHistogram::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Registers a class model, precomputing its score tables. Returns the
    /// class id used by the ranking entry points. Replaces any same-named
    /// class (and drops its cached results).
    pub fn add_class(&mut self, name: &str, index: &VectorIndex, weights: &[f64]) -> usize {
        let serving = ClassServing::build(name, index, weights, self.n_shards);
        if let Some(i) = self.classes.iter().position(|c| c.name == name) {
            self.classes[i] = serving;
            // Cached entries for the replaced model are stale; class ids
            // are cache keys, so drop everything for safety.
            self.cache.lock().clear();
            i
        } else {
            self.classes.push(serving);
            self.classes.len() - 1
        }
    }

    /// The id of a registered class.
    pub fn class_id(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }

    /// Names of registered classes, in id order.
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name.as_str()).collect()
    }

    /// Number of posting-list shards per class.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Worker threads used by [`QueryServer::rank_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    fn class(&self, class_id: usize) -> &ClassServing {
        self.classes
            .get(class_id)
            .unwrap_or_else(|| panic!("unknown class id {class_id}"))
    }

    /// Ranks a single query (cache-aware). Panics on an unknown class id.
    pub fn rank(&self, class_id: usize, q: NodeId, k: usize) -> Arc<RankedList> {
        let model = self.class(class_id);
        let key = (class_id as u32, q.0, k as u32);
        let gen = model.generation(q.0);
        if self.cfg.cache_capacity > 0 {
            if let Some((stamp, hit)) = self.cache.lock().get(&key) {
                if *stamp == gen {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(hit);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut scratch = Scratch::default();
        let mut out = RankedList::new();
        model.rank_into(q, k, &mut scratch, &mut out);
        let result = Arc::new(out);
        if self.cfg.cache_capacity > 0 {
            self.cache.lock().put(key, (gen, Arc::clone(&result)));
        }
        result
    }

    /// Ranks a batch of queries rayon-parallel, returning one list per
    /// query in input order. Records the batch's wall time in the latency
    /// histogram. Panics on an unknown class id.
    pub fn rank_batch(
        &self,
        class_id: usize,
        queries: &[NodeId],
        k: usize,
    ) -> Vec<Arc<RankedList>> {
        let t0 = Instant::now();
        let model = self.class(class_id);
        let mut out: Vec<Option<Arc<RankedList>>> = vec![None; queries.len()];

        // Cache pass: one critical section for the whole batch. Entries
        // stamped with an outdated anchor generation are stale (postings
        // patched since) and fall through to recompute.
        let mut miss_idx: Vec<usize> = Vec::new();
        if self.cfg.cache_capacity > 0 {
            let mut cache = self.cache.lock();
            for (i, q) in queries.iter().enumerate() {
                match cache.get(&(class_id as u32, q.0, k as u32)) {
                    Some((stamp, hit)) if *stamp == model.generation(q.0) => {
                        out[i] = Some(Arc::clone(hit))
                    }
                    _ => miss_idx.push(i),
                }
            }
        } else {
            miss_idx.extend(0..queries.len());
        }
        self.hits
            .fetch_add((queries.len() - miss_idx.len()) as u64, Ordering::Relaxed);
        self.misses
            .fetch_add(miss_idx.len() as u64, Ordering::Relaxed);

        // Coalesce duplicate misses: a batch repeating a query (hot keys
        // under real traffic, cycled batches in the benches) computes each
        // distinct query once and fans the Arc out.
        let mut slot_of: FxHashMap<u32, usize> = FxHashMap::default();
        let mut unique: Vec<NodeId> = Vec::new();
        for &i in &miss_idx {
            slot_of.entry(queries[i].0).or_insert_with(|| {
                unique.push(queries[i]);
                unique.len() - 1
            });
        }

        // Compute pass: per-worker chunks over the distinct misses,
        // lock-free, one reusable scratch per worker.
        let mut computed: Vec<Option<Arc<RankedList>>> = vec![None; unique.len()];
        if !unique.is_empty() {
            let chunk = unique.len().div_ceil(self.workers);
            rayon::scope(|s| {
                for (qs, outs) in unique.chunks(chunk).zip(computed.chunks_mut(chunk)) {
                    s.spawn(move |_| {
                        let mut scratch = Scratch::default();
                        for (slot, &q) in outs.iter_mut().zip(qs) {
                            let mut list = RankedList::new();
                            model.rank_into(q, k, &mut scratch, &mut list);
                            *slot = Some(Arc::new(list));
                        }
                    });
                }
            });
        }

        // Merge + cache fill: second short critical section.
        if self.cfg.cache_capacity > 0 && !unique.is_empty() {
            let mut cache = self.cache.lock();
            for (q, result) in unique.iter().zip(computed.iter()) {
                let result = result.as_ref().expect("worker filled every slot");
                cache.put(
                    (class_id as u32, q.0, k as u32),
                    (model.generation(q.0), Arc::clone(result)),
                );
            }
        }
        for i in miss_idx {
            let slot = slot_of[&queries[i].0];
            out[i] = Some(Arc::clone(
                computed[slot].as_ref().expect("worker filled every slot"),
            ));
        }

        self.latency.lock().record(t0.elapsed());
        out.into_iter()
            .map(|slot| slot.expect("every query answered"))
            .collect()
    }

    /// Single-threaded, cache-bypassing reference path: ranks each query
    /// in order with one reused scratch. Used by differential tests and
    /// the `bench_serving` baseline comparisons.
    pub fn rank_batch_sequential(
        &self,
        class_id: usize,
        queries: &[NodeId],
        k: usize,
    ) -> Vec<Arc<RankedList>> {
        let model = self.class(class_id);
        let mut scratch = Scratch::default();
        queries
            .iter()
            .map(|&q| {
                let mut list = RankedList::new();
                model.rank_into(q, k, &mut scratch, &mut list);
                Arc::new(list)
            })
            .collect()
    }

    /// Applies an index delta to a registered class *in place*: re-dots
    /// only the touched anchors/pairs against the (already-updated)
    /// `index`, rebuilds/patches just the affected posting entries in the
    /// touched shards, and bumps the invalidation generation of exactly
    /// the anchors whose result sets changed — cached entries for
    /// untouched queries keep serving.
    ///
    /// `index` must be the class's vector index *after*
    /// `VectorIndex::apply_delta` returned `touch`, and the class's
    /// weights are the ones it was registered with (deltas never retrain).
    /// Results afterwards are bit-identical to re-registering the class
    /// from the updated index (asserted by tests and the
    /// `bench_incremental` acceptance check). Panics on an unknown class
    /// id.
    pub fn apply_delta(
        &mut self,
        class_id: usize,
        index: &VectorIndex,
        touch: &IndexTouch,
    ) -> DeltaStats {
        let mut stats = DeltaStats::default();
        let class = self
            .classes
            .get_mut(class_id)
            .unwrap_or_else(|| panic!("unknown class id {class_id}"));
        class.apply_delta(index, touch, &mut stats);
        stats
    }

    /// The invalidation generation of an anchor in a class (0 until a
    /// delta changes the anchor's result set). Cached results are stamped
    /// with this at fill time; a stamp behind the current generation is
    /// stale. Exposed so tests and operators can verify that a delta
    /// invalidated exactly the anchors it should have.
    pub fn anchor_generation(&self, class_id: usize, q: NodeId) -> u64 {
        self.class(class_id).generation(q.0)
    }

    /// Sizes of a class's serving tables (postings, dot tables). A churn
    /// sequence that nets to nothing restores these exactly — no leaked
    /// empty entries. Panics on an unknown class id.
    pub fn table_stats(&self, class_id: usize) -> TableStats {
        let class = self.class(class_id);
        TableStats {
            n_postings: class.shards.iter().map(|s| s.postings.len()).sum(),
            n_posting_entries: class
                .shards
                .iter()
                .flat_map(|s| s.postings.values())
                .map(Vec::len)
                .sum(),
            n_node_dots: class.node_dots.len(),
            n_pair_dots: class.pair_dots.len(),
        }
    }

    /// Cache and latency counters accumulated since construction.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            latency: self.latency.lock().snapshot(),
        }
    }

    /// Drops every cached result (stats are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }
}

// `rank_batch` shares `&ClassServing` and `&[NodeId]` across scoped
// workers; all shared state is read-only there.
#[cfg(test)]
mod tests {
    use super::*;
    use mgp_index::{Transform, VectorIndex};
    use mgp_matching::AnchorCounts;

    /// Small consistent index: M0 links (1,2) and (1,3); M1 links (2,3)
    /// and (1,2) with different counts — enough for distinct rankings.
    fn sample_index() -> VectorIndex {
        let mut c0 = AnchorCounts::default();
        let mut c1 = AnchorCounts::default();
        let ins = |c: &mut AnchorCounts, x: u32, y: u32, n: u64| {
            c.per_pair
                .insert(mgp_graph::ids::pack_pair(NodeId(x), NodeId(y)), n);
            *c.per_node.entry(x).or_insert(0) += n;
            *c.per_node.entry(y).or_insert(0) += n;
        };
        ins(&mut c0, 1, 2, 4);
        ins(&mut c0, 1, 3, 1);
        ins(&mut c1, 2, 3, 2);
        ins(&mut c1, 1, 2, 1);
        VectorIndex::from_counts(&[c0, c1], Transform::Raw)
    }

    fn server(cache: usize) -> (QueryServer, VectorIndex, Vec<f64>) {
        let idx = sample_index();
        let w = vec![0.7, 0.3];
        let mut srv = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: cache,
        });
        srv.add_class("demo", &idx, &w);
        (srv, idx, w)
    }

    fn reference(idx: &VectorIndex, w: &[f64], q: NodeId, k: usize) -> RankedList {
        mgp_learning::mgp::rank_with_scores(idx, q, w, k)
    }

    #[test]
    fn matches_reference_ranker_exactly() {
        let (srv, idx, w) = server(0);
        for q in 0..6u32 {
            for k in [0, 1, 2, 10] {
                let got = srv.rank(0, NodeId(q), k);
                let want = reference(&idx, &w, NodeId(q), k);
                assert_eq!(*got, want, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_and_reference() {
        let (srv, idx, w) = server(0);
        let queries: Vec<NodeId> = (0..40).map(|i| NodeId(i % 5)).collect();
        let batch = srv.rank_batch(0, &queries, 3);
        let seq = srv.rank_batch_sequential(0, &queries, 3);
        assert_eq!(batch.len(), queries.len());
        for ((b, s), &q) in batch.iter().zip(&seq).zip(&queries) {
            assert_eq!(**b, **s);
            assert_eq!(**b, reference(&idx, &w, q, 3));
        }
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let (srv, _, _) = server(16);
        let q = NodeId(1);
        let a = srv.rank(0, q, 2);
        let b = srv.rank(0, q, 2);
        assert_eq!(*a, *b);
        // Same Arc served from cache.
        assert!(Arc::ptr_eq(&a, &b));
        let stats = srv.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        // Different k is a different cache entry.
        let _ = srv.rank(0, q, 1);
        assert_eq!(srv.stats().cache_misses, 2);
    }

    #[test]
    fn batch_cache_interplay() {
        let (srv, _, _) = server(16);
        let queries: Vec<NodeId> = vec![NodeId(1), NodeId(2), NodeId(1), NodeId(3)];
        // First batch: 1 is deduped through the cache? No — the cache is
        // filled after the compute pass, so the first batch misses all 4.
        let first = srv.rank_batch(0, &queries, 2);
        let s1 = srv.stats();
        assert_eq!(s1.cache_misses, 4);
        // Second identical batch: all hits, equal values; duplicates now
        // share one cached Arc.
        let second = srv.rank_batch(0, &queries, 2);
        let s2 = srv.stats();
        assert_eq!(s2.cache_hits, 4);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(**a, **b);
        }
        assert!(Arc::ptr_eq(&second[0], &second[2]));
        assert_eq!(s2.latency.count, 2, "two batches recorded");
    }

    #[test]
    fn cache_eviction_keeps_serving_correct() {
        let (srv, idx, w) = server(2);
        for round in 0..3 {
            for q in 0..5u32 {
                let got = srv.rank(0, NodeId(q), 2);
                assert_eq!(
                    *got,
                    reference(&idx, &w, NodeId(q), 2),
                    "round {round} q={q}"
                );
            }
        }
    }

    #[test]
    fn unknown_query_is_empty_not_error() {
        let (srv, _, _) = server(4);
        assert!(srv.rank(0, NodeId(999), 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown class id")]
    fn unknown_class_panics() {
        let (srv, _, _) = server(0);
        let _ = srv.rank(7, NodeId(1), 1);
    }

    #[test]
    fn replacing_a_class_clears_its_cache() {
        let (mut srv, idx, _) = server(16);
        let before = srv.rank(0, NodeId(1), 2);
        // Re-register with flipped weights: ranking changes.
        let w2 = vec![0.0, 1.0];
        let id = srv.add_class("demo", &idx, &w2);
        assert_eq!(id, 0);
        let after = srv.rank(0, NodeId(1), 2);
        assert_eq!(*after, reference(&idx, &w2, NodeId(1), 2));
        assert_ne!(*before, *after);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (srv, _, _) = server(4);
        assert!(srv.rank_batch(0, &[], 3).is_empty());
    }

    /// Applies a count delta to both the index and the server, asserting
    /// the server now answers identically to a freshly registered class
    /// over the updated index.
    fn apply_and_check(
        srv: &mut QueryServer,
        idx: &mut VectorIndex,
        w: &[f64],
        delta: mgp_index::IndexDelta,
    ) -> DeltaStats {
        let touch = idx.apply_delta(&delta);
        let stats = srv.apply_delta(0, idx, &touch);
        let mut fresh = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 0,
        });
        fresh.add_class("fresh", idx, w);
        for q in 0..8u32 {
            for k in [1, 3, 10] {
                assert_eq!(
                    *srv.rank(0, NodeId(q), k),
                    *fresh.rank(0, NodeId(q), k),
                    "q={q} k={k} after delta"
                );
                assert_eq!(
                    *srv.rank(0, NodeId(q), k),
                    reference(idx, w, NodeId(q), k),
                    "q={q} k={k} vs reference"
                );
            }
        }
        stats
    }

    fn count_delta(
        node: &[(u32, i64)],
        pairs: &[((u32, u32), i64)],
        coord: usize,
        n: usize,
    ) -> mgp_index::IndexDelta {
        let mut d = mgp_index::IndexDelta::empty(n);
        for &(x, c) in node {
            d.counts[coord].per_node.insert(x, c);
        }
        for &((x, y), c) in pairs {
            d.counts[coord]
                .per_pair
                .insert(mgp_graph::ids::pack_pair(NodeId(x), NodeId(y)), c);
        }
        d
    }

    #[test]
    fn delta_patch_matches_full_reregistration() {
        let (mut srv, mut idx, w) = server(16);
        // Bump an existing pair (1,2) on coordinate 0.
        let stats = apply_and_check(
            &mut srv,
            &mut idx,
            &w,
            count_delta(&[(1, 2), (2, 2)], &[((1, 2), 2)], 0, 2),
        );
        assert_eq!(stats.redotted_nodes, 2);
        assert_eq!(stats.redotted_pairs, 1);
        assert_eq!(stats.rebuilt_postings, 2);
        // Nodes 1, 2 rebuilt; partner entries pointing at them patched.
        assert!(stats.patched_entries > 0);
        assert!(stats.invalidated_anchors >= 2);
    }

    #[test]
    fn delta_with_new_pair_and_new_node() {
        let (mut srv, mut idx, w) = server(16);
        // Node 4 never seen before; new pair (3,4) on coordinate 1.
        apply_and_check(
            &mut srv,
            &mut idx,
            &w,
            count_delta(&[(3, 1), (4, 1)], &[((3, 4), 1)], 1, 2),
        );
        // 4 is now rankable and 3's posting gained an entry.
        assert_eq!(srv.rank(0, NodeId(4), 5).len(), 1);
        assert!(srv
            .rank(0, NodeId(3), 5)
            .iter()
            .any(|&(v, _)| v == NodeId(4)));
    }

    #[test]
    fn delta_invalidates_only_changed_queries() {
        let (mut srv, mut idx, w) = server(32);
        // Warm the cache for all anchors.
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let before = srv.stats();
        assert_eq!(before.cache_misses, 3);

        // Touch only the pair (2,3): anchors 2 and 3 change; their node
        // dots also move, patching entries that point at them (1 holds an
        // entry for 2 → 1's results change too in general). Use a delta
        // touching only node 3's count instead for a clean split: anchors
        // with 3 in their partner list are 1 (via M1) and 2 (via M1).
        let touch = idx.apply_delta(&count_delta(&[(3, 5)], &[], 1, 2));
        srv.apply_delta(0, &idx, &touch);

        // Anchor 3 and its partners 1, 2 were invalidated...
        let s1 = srv.stats();
        let _ = srv.rank(0, NodeId(3), 2);
        assert_eq!(srv.stats().cache_misses, s1.cache_misses + 1);
        // ...and recomputed answers match a fresh registration.
        let mut fresh = QueryServer::new(ServeConfig::default());
        fresh.add_class("fresh", &idx, &w);
        for q in 1..4u32 {
            assert_eq!(*srv.rank(0, NodeId(q), 2), *fresh.rank(0, NodeId(q), 2));
        }
    }

    #[test]
    fn untouched_queries_keep_their_cache_entries() {
        let (mut srv, mut idx, _) = server(32);
        // Anchor 1's partners are 2 and 3; a delta touching node 9 (an
        // isolated newcomer with no pairs) changes nobody's results.
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let touch = idx.apply_delta(&count_delta(&[(9, 1)], &[], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        let before = srv.stats();
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let after = srv.stats();
        // 9 has no partners: every repeat query was a cache hit except 9's
        // own (rebuilt, empty) posting — queries 1..4 all hit.
        assert_eq!(after.cache_hits, before.cache_hits + 3);
        assert_eq!(after.cache_misses, before.cache_misses);
    }

    #[test]
    #[should_panic(expected = "unknown class id")]
    fn delta_on_unknown_class_panics() {
        let (mut srv, idx, _) = server(4);
        let touch = mgp_index::IndexTouch::default();
        let _ = srv.apply_delta(9, &idx, &touch);
    }

    #[test]
    fn deletion_patch_matches_full_reregistration() {
        let (mut srv, mut idx, w) = server(16);
        // Kill pair (1,3) on coordinate 0 (its only coordinate): its
        // entries must vanish from both endpoints' postings.
        let stats = apply_and_check(
            &mut srv,
            &mut idx,
            &w,
            count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2),
        );
        assert_eq!(stats.redotted_nodes, 2);
        assert_eq!(stats.redotted_pairs, 1);
        // 1 and 3 remain partners through M1's pair (1,3)? No — the
        // sample index pairs are (1,2),(1,3) on M0 and (2,3),(1,2) on M1;
        // killing (1,3) on M0 removes the pair entirely.
        assert!(!srv
            .rank(0, NodeId(1), 5)
            .iter()
            .any(|&(v, _)| v == NodeId(3)));
        assert!(!srv
            .rank(0, NodeId(3), 5)
            .iter()
            .any(|&(v, _)| v == NodeId(1)));
    }

    #[test]
    fn deletion_that_empties_an_anchor_drops_its_posting() {
        let (mut srv, mut idx, w) = server(16);
        let before = srv.table_stats(0);
        // Remove every contribution node 3 has: pair (1,3) on M0 and
        // pair (2,3) on M1, with the matching node decrements.
        let mut d = count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2);
        let d2 = count_delta(&[(2, -2), (3, -2)], &[((2, 3), -2)], 1, 2);
        d.counts[1] = d2.counts[1].clone();
        apply_and_check(&mut srv, &mut idx, &w, d);
        // Node 3 is unrankable and holds no serving state at all.
        assert!(srv.rank(0, NodeId(3), 5).is_empty());
        let after = srv.table_stats(0);
        assert_eq!(after.n_postings, before.n_postings - 1);
        assert_eq!(after.n_pair_dots, before.n_pair_dots - 2);
        assert_eq!(after.n_node_dots, before.n_node_dots - 1);
    }

    #[test]
    fn churn_roundtrip_restores_tables_exactly() {
        let (mut srv, mut idx, w) = server(16);
        let before = srv.table_stats(0);
        // Forward: kill pair (1,3), add brand-new pair (4,5).
        let mut fwd = count_delta(&[(1, -1), (3, -1)], &[((1, 3), -1)], 0, 2);
        fwd.counts[1] = count_delta(&[(4, 3), (5, 3)], &[((4, 5), 3)], 1, 2).counts[1].clone();
        apply_and_check(&mut srv, &mut idx, &w, fwd);
        assert_ne!(srv.table_stats(0), before);
        // Backward: exact inverse.
        let mut bwd = count_delta(&[(1, 1), (3, 1)], &[((1, 3), 1)], 0, 2);
        bwd.counts[1] = count_delta(&[(4, -3), (5, -3)], &[((4, 5), -3)], 1, 2).counts[1].clone();
        apply_and_check(&mut srv, &mut idx, &w, bwd);
        // Tables restored exactly: same posting/dot footprint, no leaked
        // empties from the churn.
        assert_eq!(srv.table_stats(0), before);
        assert!(srv.rank(0, NodeId(4), 5).is_empty());
    }

    /// Satellite: a query whose result set is unchanged by a delta keeps
    /// serving from cache — its generation stamp is untouched — for both
    /// an insertion-only and a deletion-only delta.
    #[test]
    fn unchanged_result_set_still_serves_from_cache() {
        let (mut srv, mut idx, _) = server(32);
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        let gens: Vec<u64> = (1..4)
            .map(|q| srv.anchor_generation(0, NodeId(q)))
            .collect();

        // Insertion far away: brand-new pair (8,9) on coordinate 0.
        let touch = idx.apply_delta(&count_delta(&[(8, 1), (9, 1)], &[((8, 9), 1)], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        for (i, q) in (1..4u32).enumerate() {
            assert_eq!(srv.anchor_generation(0, NodeId(q)), gens[i], "insert");
        }
        let s0 = srv.stats();
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        assert_eq!(srv.stats().cache_hits, s0.cache_hits + 3);
        assert_eq!(srv.stats().cache_misses, s0.cache_misses);

        // Deletion of the same far-away pair: still nobody's result set
        // in 1..4 changed — still all cache hits, stamps untouched.
        let touch = idx.apply_delta(&count_delta(&[(8, -1), (9, -1)], &[((8, 9), -1)], 0, 2));
        srv.apply_delta(0, &idx, &touch);
        for (i, q) in (1..4u32).enumerate() {
            assert_eq!(srv.anchor_generation(0, NodeId(q)), gens[i], "delete");
        }
        let s1 = srv.stats();
        for q in 1..4u32 {
            let _ = srv.rank(0, NodeId(q), 2);
        }
        assert_eq!(srv.stats().cache_hits, s1.cache_hits + 3);
        assert_eq!(srv.stats().cache_misses, s1.cache_misses);
        // ...while the churned anchors 8/9 were invalidated and emptied.
        assert!(srv.rank(0, NodeId(8), 2).is_empty());
        assert!(srv.anchor_generation(0, NodeId(8)) > 0);
    }

    #[test]
    fn multiple_classes_are_independent() {
        let idx = sample_index();
        let mut srv = QueryServer::new(ServeConfig::default());
        let a = srv.add_class("m0", &idx, &[1.0, 0.0]);
        let b = srv.add_class("m1", &idx, &[0.0, 1.0]);
        assert_eq!(srv.class_names(), vec!["m0", "m1"]);
        assert_eq!(srv.class_id("m1"), Some(b));
        let ra = srv.rank(a, NodeId(2), 1);
        let rb = srv.rank(b, NodeId(2), 1);
        // Under M0-only weights node 2's best is 1; under M1-only it's 3.
        assert_eq!(ra[0].0, NodeId(1));
        assert_eq!(rb[0].0, NodeId(3));
    }
}

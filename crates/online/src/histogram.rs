//! Log-bucketed latency histograms for the serving path.
//!
//! Power-of-two nanosecond buckets (64 of them cover 1 ns .. ~584 years)
//! give ≤ 2× quantile error with a fixed 520-byte footprint — plenty for
//! batch-latency accounting, and recording is one `leading_zeros` plus an
//! increment.

use std::time::Duration;

const BUCKETS: usize = 64;

/// A histogram of durations in power-of-two nanosecond buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

/// A point-in-time summary of a [`LatencyHistogram`].
///
/// ## Empty windows
///
/// A snapshot of a histogram that recorded nothing (`count == 0`) is
/// well-defined, not a bogus bucket: every quantile field (`p50`, `p95`,
/// `p99`), `mean` and `max` are exactly `Duration::ZERO`, and the
/// `try_*` accessors return `None`. The front-end reports per-window
/// percentiles where idle windows are common, so callers that need to
/// distinguish "no traffic" from "all sub-nanosecond" should use
/// [`LatencySnapshot::is_empty`] or the `try_*` accessors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySnapshot {
    /// Number of recorded durations.
    pub count: u64,
    /// Mean duration (`ZERO` when empty).
    pub mean: Duration,
    /// Median (≤ 2× bucket error; `ZERO` when empty).
    pub p50: Duration,
    /// 95th percentile (≤ 2× bucket error; `ZERO` when empty).
    pub p95: Duration,
    /// 99th percentile (≤ 2× bucket error; `ZERO` when empty).
    pub p99: Duration,
    /// Largest recorded duration (exact; `ZERO` when empty).
    pub max: Duration,
}

impl LatencySnapshot {
    /// Whether the window recorded nothing. Empty snapshots report
    /// `Duration::ZERO` from every quantile field, never a bucket value.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Median latency. The quantile fields stay public; these accessors
    /// are the method-style spelling for call sites that chain off
    /// `stats().latency`.
    pub fn p50(&self) -> Duration {
        self.p50
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Duration {
        self.p95
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.p99
    }

    /// Median latency, or `None` for an empty window.
    pub fn try_p50(&self) -> Option<Duration> {
        (!self.is_empty()).then_some(self.p50)
    }

    /// 95th-percentile latency, or `None` for an empty window.
    pub fn try_p95(&self) -> Option<Duration> {
        (!self.is_empty()).then_some(self.p95)
    }

    /// 99th-percentile latency, or `None` for an empty window.
    pub fn try_p99(&self) -> Option<Duration> {
        (!self.is_empty()).then_some(self.p99)
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw power-of-two bucket counts (bucket `i` covers
    /// `[2^i, 2^(i+1))` nanoseconds), for exporters that want more than
    /// the fixed snapshot quantiles.
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    #[inline]
    fn bucket(ns: u64) -> usize {
        // 0 and 1 ns land in bucket 0; otherwise floor(log2(ns)).
        (63 - ns.max(1).leading_zeros() as u64) as usize
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The duration at quantile `q` (0.0..=1.0), as the upper edge of the
    /// containing bucket (so within 2× of the true value).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return Duration::from_nanos(upper.min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Summarises the histogram.
    pub fn snapshot(&self) -> LatencySnapshot {
        let mean = if self.total == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.sum_ns / self.total as u128) as u64)
        };
        LatencySnapshot {
            count: self.total,
            mean,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: Duration::from_nanos(self.max_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count, 0);
        // Every quantile is consistently ZERO — no bogus bucket edge.
        assert_eq!(s.p50, Duration::ZERO);
        assert_eq!(s.p95, Duration::ZERO);
        assert_eq!(s.p99, Duration::ZERO);
        assert_eq!(s.mean, Duration::ZERO);
        assert_eq!(s.max, Duration::ZERO);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::ZERO);
        }
        // The fallible accessors say "no window" rather than 0 ns.
        assert_eq!(s.try_p50(), None);
        assert_eq!(s.try_p95(), None);
        assert_eq!(s.try_p99(), None);
    }

    #[test]
    fn try_accessors_are_some_once_recorded() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(7));
        let s = h.snapshot();
        assert!(!s.is_empty());
        assert_eq!(s.try_p50(), Some(s.p50));
        assert_eq!(s.try_p95(), Some(s.p95));
        assert_eq!(s.try_p99(), Some(s.p99));
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 0);
        assert_eq!(LatencyHistogram::bucket(2), 1);
        assert_eq!(LatencyHistogram::bucket(3), 1);
        assert_eq!(LatencyHistogram::bucket(4), 2);
        assert_eq!(LatencyHistogram::bucket(1024), 10);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bracket_true_values() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        // True p50 is 500µs; bucketed answer within [500µs, 1ms].
        assert!(s.p50 >= Duration::from_micros(500) && s.p50 <= Duration::from_millis(1));
        assert!(s.p99 >= Duration::from_micros(990) && s.p99 <= Duration::from_millis(2));
        assert_eq!(s.max, Duration::from_millis(1));
        assert!(s.mean >= Duration::from_micros(499) && s.mean <= Duration::from_micros(502));
    }

    /// Merging per-worker histograms must be indistinguishable from one
    /// histogram that recorded every duration itself — bucket counts,
    /// total, sum, max, and therefore every quantile and the snapshot.
    /// This is what lets the scenario driver aggregate cross-thread p99
    /// without sharing a histogram between workers.
    #[test]
    fn merge_equals_single_histogram_recording() {
        // A spread designed to cross many log2 buckets, dealt round-robin
        // across 4 "worker" histograms.
        let durations: Vec<Duration> = (0..500u64)
            .map(|i| Duration::from_nanos((i * i * 37 + i + 1) % 5_000_000))
            .collect();
        let mut single = LatencyHistogram::new();
        let mut workers = vec![LatencyHistogram::new(); 4];
        for (i, &d) in durations.iter().enumerate() {
            single.record(d);
            workers[i % 4].record(d);
        }
        let mut merged = LatencyHistogram::new();
        for w in &workers {
            merged.merge(w);
        }
        assert_eq!(merged.bucket_counts(), single.bucket_counts());
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.snapshot(), single.snapshot());
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), single.quantile(q), "q={q}");
        }
        // Merging an empty histogram is the identity.
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged.snapshot(), single.snapshot());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        b.record(Duration::from_micros(2000));
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, Duration::from_micros(2000));
        assert!(s.p50 >= Duration::from_micros(1000));
    }

    #[test]
    fn snapshot_accessors_mirror_fields() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(700));
        let s = h.snapshot();
        assert_eq!(s.p50(), s.p50);
        assert_eq!(s.p95(), s.p95);
        assert_eq!(s.p99(), s.p99);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    }

    #[test]
    fn quantile_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 0..100u64 {
            h.record(Duration::from_nanos(1 << (i % 20)));
        }
        let mut last = Duration::ZERO;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) regressed");
            last = v;
        }
    }
}

//! The async serving front-end: micro-batching, coalescing, admission
//! control and backpressure over a [`ServerHandle`].
//!
//! ## Why a front-end
//!
//! The paper's online result (Table III, ~10⁻⁴ s per query) and this
//! repo's batched server both assume *someone* hands the ranker a
//! pre-formed batch. Production traffic is the opposite: millions of
//! independent `(class, q, k)` requests from independent callers. The
//! [`Frontend`] closes that gap — callers [`Frontend::submit`] single
//! requests and block on a [`Ticket`]; a pool of batcher workers turns
//! the request stream back into the batches the server is fast at.
//!
//! ## Request lifecycle
//!
//! 1. **Admission** — `submit` validates the class id (typed
//!    [`QueryError`], never a panic), reads the cached backpressure
//!    gauge, and enqueues onto a bounded mpmc channel. Past the depth
//!    limit the request is *shed* with a typed
//!    [`FrontendError::Overloaded`] — the queue never grows without
//!    bound, so memory stays bounded no matter the offered load.
//! 2. **Micro-batching** — a batcher worker takes the first queued
//!    request, then keeps accumulating until either the window budget
//!    ([`FrontendConfig::window`], default 1 ms) elapses or
//!    [`FrontendConfig::max_batch`] requests are in hand, whichever
//!    comes first. An idle front-end therefore adds at most one window
//!    of latency, and a busy one fills whole batches with no added wait.
//! 3. **Coalescing** — the batch is grouped by `k`; each group issues
//!    **one** [`QueryServer::try_rank_multi_batch`](crate::QueryServer::try_rank_multi_batch)
//!    execution over its
//!    distinct classes × distinct queries, and the resulting
//!    `Arc<RankedList>`s are fanned back to every waiter — duplicate
//!    queries across callers cost one posting walk however many tickets
//!    asked. Results are bit-identical to calling the server directly:
//!    the front-end *is* a caller of the same entry point.
//! 4. **Completion** — each ticket's oneshot receives the shared `Arc`;
//!    [`Ticket::wait`] returns it.
//!
//! ## Backpressure
//!
//! The epoch-swap design (PR 4/5) retires shard snapshots that slow
//! readers still pin; [`QueryServer::epoch_stats`](crate::QueryServer::epoch_stats)
//! gauges how much
//! copy-on-write memory those retired epochs retain. The front-end
//! treats that gauge as its overload signal: when
//! `approx_retained_bytes` crosses [`FrontendConfig::high_water_bytes`],
//! admission tightens from [`FrontendConfig::queue_depth`] to the much
//! smaller [`FrontendConfig::pressure_queue_depth`] — shedding load
//! while the server is already memory-amplified instead of stacking more
//! pinned epochs on top. The gauge is refreshed by the batcher workers
//! after every executed window (and periodically from `submit`), so the
//! per-request admission check is one atomic load, not an epoch walk;
//! [`Frontend::refresh_pressure`] forces a refresh for tests/operators.
//!
//! Everything here is panic-free by construction (`unwrap`/`expect` are
//! denied lints in this module): degenerate inputs come back as typed
//! errors and a poisoned serving thread cannot happen.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::histogram::{LatencyHistogram, LatencySnapshot};
use crate::server::{QueryError, RankedList, ServerHandle};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use mgp_graph::{FxHashMap, FxHashSet, NodeId};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many `submit` calls between opportunistic backpressure-gauge
/// refreshes (workers also refresh after every executed window, so this
/// only matters for traffic arriving while all workers sit idle).
const PRESSURE_REFRESH_EVERY: u64 = 64;

/// Front-end construction parameters.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Batcher worker threads (0 = 2).
    pub workers: usize,
    /// Micro-batch latency budget: a worker holding a partial batch
    /// waits at most this long for more requests before executing.
    pub window: Duration,
    /// Micro-batch size cap: a full batch executes immediately, before
    /// the window elapses.
    pub max_batch: usize,
    /// Bounded request-queue depth under normal operation; submissions
    /// past it are shed with [`FrontendError::Overloaded`].
    pub queue_depth: usize,
    /// Tightened queue depth while the epoch gauges are past the
    /// high-water mark (must be ≤ `queue_depth` to have any effect).
    pub pressure_queue_depth: usize,
    /// High-water mark on `epoch_stats().approx_retained_bytes` beyond
    /// which admission tightens to `pressure_queue_depth`. `0` means
    /// *any* retained epoch memory counts as pressure.
    pub high_water_bytes: usize,
    /// Whether to coalesce batches through one `try_rank_multi_batch`
    /// per `k` group (`true`, the production path) or execute every
    /// request individually (`false` — the measurement baseline
    /// `bench_frontend` compares against).
    pub coalesce: bool,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            workers: 0,
            window: Duration::from_millis(1),
            max_batch: 64,
            queue_depth: 4096,
            pressure_queue_depth: 256,
            high_water_bytes: 8 << 20,
            coalesce: true,
        }
    }
}

impl FrontendConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            2
        } else {
            self.workers
        }
    }
}

/// Why the front-end rejected a request or could not answer a ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendError {
    /// Admission control shed the request: the bounded queue was at its
    /// current depth limit. `pressured` says which limit applied — the
    /// normal [`FrontendConfig::queue_depth`] or the tightened
    /// [`FrontendConfig::pressure_queue_depth`] (epoch gauges past the
    /// high-water mark). Retry after backing off; a retried request
    /// returns exactly what an unshed one would have.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// Whether the tightened under-pressure limit was in force.
        pressured: bool,
    },
    /// The request itself was invalid (e.g. an unknown class id) —
    /// rejected at submit time, before queuing.
    Query(QueryError),
    /// The front-end shut down before the request completed.
    Closed,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Overloaded { depth, pressured } => {
                let limit = if *pressured {
                    " under epoch pressure"
                } else {
                    ""
                };
                write!(f, "overloaded: request shed at queue depth {depth}{limit}")
            }
            FrontendError::Query(e) => write!(f, "invalid request: {e}"),
            FrontendError::Closed => write!(f, "front-end closed"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<QueryError> for FrontendError {
    fn from(e: QueryError) -> Self {
        FrontendError::Query(e)
    }
}

/// One admitted request travelling from `submit` to a batcher worker.
struct Request {
    class_id: usize,
    q: NodeId,
    k: usize,
    resp: Sender<Result<Arc<RankedList>, FrontendError>>,
}

/// A claim on an in-flight request: block on [`Ticket::wait`] for the
/// shared result. Dropping the ticket abandons the request (the worker's
/// fan-out to it is silently discarded).
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<Arc<RankedList>, FrontendError>>,
}

impl Ticket {
    /// Blocks until the batcher answers, returning the same
    /// `Arc<RankedList>` every co-batched duplicate of this query got.
    pub fn wait(self) -> Result<Arc<RankedList>, FrontendError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(FrontendError::Closed),
        }
    }

    /// Non-blocking probe: `Some` once the batcher has answered.
    pub fn try_wait(&self) -> Option<Result<Arc<RankedList>, FrontendError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(channel::TryRecvError::Empty) => None,
            Err(channel::TryRecvError::Disconnected) => Some(Err(FrontendError::Closed)),
        }
    }
}

/// Log₂-bucketed histogram of observed queue depths (same shape as
/// [`LatencyHistogram`], but over a count instead of a duration) — feeds
/// the `queue_depth_p99` stat. Lock-free: `record` sits on the `submit`
/// fast path of every caller thread, so buckets are independent atomics
/// rather than a shared mutex.
struct DepthHistogram {
    counts: [AtomicU64; 33],
    total: AtomicU64,
    max: AtomicUsize,
}

impl Default for DepthHistogram {
    fn default() -> Self {
        DepthHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            max: AtomicUsize::new(0),
        }
    }
}

impl DepthHistogram {
    fn bucket(depth: usize) -> usize {
        // Depth 0 → bucket 0, otherwise 1 + floor(log2(depth)), capped.
        match depth {
            0 => 0,
            d => (usize::BITS - d.leading_zeros()) as usize,
        }
        .min(32)
    }

    fn record(&self, depth: usize) {
        self.counts[Self::bucket(depth)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(depth, Ordering::Relaxed);
    }

    fn max(&self) -> usize {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper bucket edge at quantile `q` (≤ 2× error), capped at the
    /// exact max; 0 when nothing was recorded.
    fn quantile(&self, q: f64) -> usize {
        let total = self.total.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                let upper = if i == 0 { 0 } else { (1usize << i) - 1 };
                return upper.min(self.max());
            }
        }
        self.max()
    }
}

/// A point-in-time [`Frontend::stats`] snapshot.
#[derive(Debug, Clone)]
pub struct FrontendStats {
    /// Valid requests that reached admission control — admitted *plus*
    /// shed, so `completed + shed() == submitted` once the queue drains
    /// (rejected class ids are not counted; they never reach admission).
    pub submitted: u64,
    /// Requests answered (fanned out to their tickets).
    pub completed: u64,
    /// Requests shed at the normal queue-depth bound.
    pub shed_capacity: u64,
    /// Requests shed at the tightened under-pressure bound.
    pub shed_pressure: u64,
    /// Micro-batch windows executed.
    pub windows: u64,
    /// Requests across all executed windows.
    pub windowed_requests: u64,
    /// Distinct `(class, q, k)` executions after coalescing.
    pub distinct_executed: u64,
    /// Grid cells computed **beyond** the requested `(class, q)` pairs —
    /// a coalesced window executes the full class × query cross product,
    /// and every cell lands in the server's LRU (however small its
    /// capacity — eviction, not admission, is the cache's knob), so
    /// these cells serve later windows' traffic for free. Zero when the
    /// cache or coalescing is disabled.
    pub speculative_fills: u64,
    /// Largest queue depth ever observed at admission.
    pub max_queue_depth: usize,
    /// 99th-percentile queue depth observed at admission (≤ 2× bucket
    /// error), 0 with no traffic.
    pub queue_depth_p99: usize,
    /// Mean window fill `windowed_requests / (windows × max_batch)` in
    /// `[0, 1]` (0 with no windows).
    pub window_fill: f64,
    /// `windowed_requests / distinct_executed` — 1.0 means no duplicate
    /// work was saved, 2.0 means every posting walk served two tickets
    /// on average (1.0 with no traffic; always 1.0 when coalescing is
    /// disabled).
    pub coalesce_ratio: f64,
    /// Wall-time summary over executed windows (empty ⇒ all-zero
    /// percentiles, see [`LatencySnapshot::is_empty`]).
    pub window_latency: LatencySnapshot,
    /// Whether the backpressure gauge currently reads past the
    /// high-water mark.
    pub pressured: bool,
}

impl FrontendStats {
    /// Total shed requests across both admission regimes.
    pub fn shed(&self) -> u64 {
        self.shed_capacity + self.shed_pressure
    }
}

impl fmt::Display for FrontendStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} submitted / {} completed / {} shed ({} under pressure), \
             {} windows ({:.0}% fill, coalesce ×{:.2}, {} speculative fills), \
             queue depth p99 {} (max {})",
            self.submitted,
            self.completed,
            self.shed(),
            self.shed_pressure,
            self.windows,
            100.0 * self.window_fill,
            self.coalesce_ratio,
            self.speculative_fills,
            self.queue_depth_p99,
            self.max_queue_depth,
        )
    }
}

/// State shared between `submit` callers and the batcher workers.
struct Shared {
    server: ServerHandle,
    cfg: FrontendConfig,
    /// Cached backpressure verdict (see module docs — refreshed by
    /// workers per window and periodically by `submit`, read by every
    /// admission check as one atomic load).
    pressured: AtomicBool,
    /// Requests currently buffered in the queue — incremented *before*
    /// enqueue, decremented as workers dequeue, so admitted occupancy
    /// can never exceed the depth limit even with concurrent
    /// submitters: a submitter only proceeds when its pre-increment
    /// reading was below the limit, and backs its increment out when it
    /// sheds. Lock-free — this is the whole admission mechanism.
    queued: AtomicUsize,
    submit_ticks: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    shed_capacity: AtomicU64,
    shed_pressure: AtomicU64,
    windows: AtomicU64,
    windowed_requests: AtomicU64,
    distinct_executed: AtomicU64,
    speculative_fills: AtomicU64,
    depths: DepthHistogram,
    window_latency: Mutex<LatencyHistogram>,
}

impl Shared {
    fn refresh_pressure(&self) -> bool {
        let retained = self.server.epoch_stats().approx_retained_bytes;
        let pressured = retained > 0 && retained >= self.cfg.high_water_bytes;
        self.pressured.store(pressured, Ordering::Relaxed);
        pressured
    }

    /// Workers call this once per dequeued chunk to release admission
    /// slots.
    fn dequeued(&self, n: usize) {
        self.queued.fetch_sub(n, Ordering::Relaxed);
    }
}

/// The async request layer over a [`ServerHandle`] — see the module docs
/// for the full lifecycle. Construct with [`Frontend::new`] or
/// `SearchEngine::serve_frontend[_with]`; share `&Frontend` (or wrap in
/// an `Arc`) across caller threads — [`Frontend::submit`] is `&self`.
/// Dropping the front-end drains the queue, answers every in-flight
/// ticket and joins the workers.
pub struct Frontend {
    shared: Arc<Shared>,
    /// `None` only during shutdown (taken so workers see disconnect).
    tx: Option<Sender<Request>>,
    workers: Vec<JoinHandle<()>>,
}

impl Frontend {
    /// Spawns the batcher pool over `server`.
    pub fn new(server: ServerHandle, cfg: FrontendConfig) -> Frontend {
        let n_workers = cfg.resolved_workers();
        let (tx, rx) = channel::bounded::<Request>(cfg.queue_depth.max(1));
        let shared = Arc::new(Shared {
            server,
            cfg,
            pressured: AtomicBool::new(false),
            queued: AtomicUsize::new(0),
            submit_ticks: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_capacity: AtomicU64::new(0),
            shed_pressure: AtomicU64::new(0),
            windows: AtomicU64::new(0),
            windowed_requests: AtomicU64::new(0),
            distinct_executed: AtomicU64::new(0),
            speculative_fills: AtomicU64::new(0),
            depths: DepthHistogram::default(),
            window_latency: Mutex::new(LatencyHistogram::new()),
        });
        shared.refresh_pressure();
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("mgp-frontend-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .unwrap_or_else(|e| panic!("spawning batcher worker: {e}"))
            })
            .collect();
        Frontend {
            shared,
            tx: Some(tx),
            workers,
        }
    }

    /// The server this front-end serves from (e.g. for a concurrent
    /// churn writer to `apply_delta` through).
    pub fn server(&self) -> &ServerHandle {
        &self.shared.server
    }

    /// The configuration the front-end was built with.
    pub fn config(&self) -> &FrontendConfig {
        &self.shared.cfg
    }

    /// Submits one `(class, q, k)` request. Returns a [`Ticket`] to wait
    /// on, or a typed rejection: [`FrontendError::Query`] for an invalid
    /// class (checked here so batcher workers only ever see valid
    /// requests) or [`FrontendError::Overloaded`] when admission control
    /// sheds the request at the current depth limit.
    pub fn submit(&self, class_id: usize, q: NodeId, k: usize) -> Result<Ticket, FrontendError> {
        let shared = &self.shared;
        let Some(tx) = self.tx.as_ref() else {
            return Err(FrontendError::Closed);
        };
        if !shared.server.has_class(class_id) {
            return Err(QueryError::UnknownClass(class_id).into());
        }
        if shared
            .submit_ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(PRESSURE_REFRESH_EVERY)
        {
            shared.refresh_pressure();
        }
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        let pressured = shared.pressured.load(Ordering::Relaxed);
        let limit = if pressured {
            shared.cfg.pressure_queue_depth.min(shared.cfg.queue_depth)
        } else {
            shared.cfg.queue_depth
        };
        // Lock-free admission: reserve a queue slot by incrementing the
        // depth counter, backing the increment out on a shed. A
        // submitter only proceeds when its pre-increment reading was
        // below the limit, so admitted occupancy can never exceed the
        // limit — the memory bound holds exactly, with no lock on the
        // submit fast path.
        let depth = shared.queued.fetch_add(1, Ordering::Relaxed);
        if depth >= limit {
            shared.queued.fetch_sub(1, Ordering::Relaxed);
            let counter = if pressured {
                &shared.shed_pressure
            } else {
                &shared.shed_capacity
            };
            counter.fetch_add(1, Ordering::Relaxed);
            return Err(FrontendError::Overloaded {
                depth: depth.min(limit),
                pressured,
            });
        }
        let (resp, rx) = channel::bounded(1);
        let req = Request {
            class_id,
            q,
            k,
            resp,
        };
        match tx.try_send(req) {
            Ok(()) => {}
            // The channel's own capacity is `queue_depth`, which the
            // counter never lets admitted occupancy exceed; `Full` here
            // would be a slot-accounting bug, answered as a shed rather
            // than a panic on the serving path.
            Err(TrySendError::Full(_)) => {
                shared.queued.fetch_sub(1, Ordering::Relaxed);
                shared.shed_capacity.fetch_add(1, Ordering::Relaxed);
                return Err(FrontendError::Overloaded { depth, pressured });
            }
            Err(TrySendError::Disconnected(_)) => {
                shared.queued.fetch_sub(1, Ordering::Relaxed);
                return Err(FrontendError::Closed);
            }
        }
        shared.depths.record(depth + 1);
        Ok(Ticket { rx })
    }

    /// Recomputes the backpressure gauge *now* instead of waiting for
    /// the next window/periodic refresh; returns whether the front-end
    /// is pressured. For tests and operators forcing a deterministic
    /// admission state.
    pub fn refresh_pressure(&self) -> bool {
        self.shared.refresh_pressure()
    }

    /// Current counters and percentile summaries.
    pub fn stats(&self) -> FrontendStats {
        let shared = &self.shared;
        let windows = shared.windows.load(Ordering::Relaxed);
        let windowed = shared.windowed_requests.load(Ordering::Relaxed);
        let distinct = shared.distinct_executed.load(Ordering::Relaxed);
        let depths = &shared.depths;
        FrontendStats {
            submitted: shared.submitted.load(Ordering::Relaxed),
            completed: shared.completed.load(Ordering::Relaxed),
            shed_capacity: shared.shed_capacity.load(Ordering::Relaxed),
            shed_pressure: shared.shed_pressure.load(Ordering::Relaxed),
            windows,
            windowed_requests: windowed,
            distinct_executed: distinct,
            speculative_fills: shared.speculative_fills.load(Ordering::Relaxed),
            max_queue_depth: depths.max(),
            queue_depth_p99: depths.quantile(0.99),
            window_fill: if windows == 0 {
                0.0
            } else {
                windowed as f64 / (windows * shared.cfg.max_batch.max(1) as u64) as f64
            },
            coalesce_ratio: if distinct == 0 {
                1.0
            } else {
                windowed as f64 / distinct as f64
            },
            window_latency: shared.window_latency.lock().snapshot(),
            pressured: shared.pressured.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting new requests, drains the queue (every in-flight
    /// ticket still gets its answer), joins the workers and returns the
    /// final stats. Dropping the front-end does the same minus the
    /// stats.
    pub fn shutdown(mut self) -> FrontendStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        // Dropping the last Sender disconnects the channel; workers
        // drain what is buffered, then exit.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.close();
    }
}

/// One batcher worker: block for the first request, accumulate up to
/// `max_batch` within the window budget, execute, fan out, refresh the
/// backpressure gauge, repeat until the channel disconnects. A backlog
/// is drained in chunks (one channel lock per chunk, not per request);
/// `recv_timeout` is only paid when the queue runs dry inside the
/// window. Each dequeue releases admission slots, so "queue depth"
/// bounds requests *waiting*, with at most one partial batch per worker
/// in flight on top.
fn worker_loop(shared: &Shared, rx: &Receiver<Request>) {
    let mut batch: Vec<Request> = Vec::with_capacity(shared.cfg.max_batch.max(1));
    loop {
        batch.clear();
        let Ok(first) = rx.recv() else {
            return; // Disconnected and drained: shutdown.
        };
        shared.dequeued(1);
        batch.push(first);
        let deadline = Instant::now() + shared.cfg.window;
        while batch.len() < shared.cfg.max_batch {
            let want = shared.cfg.max_batch - batch.len();
            match rx.try_recv_many(&mut batch, want) {
                Ok(0) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(req) => {
                            shared.dequeued(1);
                            batch.push(req);
                        }
                        // Timeout: the window budget is spent, run what
                        // we have. Disconnected: run the final partial
                        // batch too.
                        Err(_) => break,
                    }
                }
                Ok(n) => shared.dequeued(n),
                Err(_) => break, // Disconnected and drained.
            }
        }
        execute_window(shared, &batch);
        shared.refresh_pressure();
    }
}

/// Executes one micro-batch and fans the results out to the tickets.
fn execute_window(shared: &Shared, batch: &[Request]) {
    let t0 = Instant::now();
    shared.windows.fetch_add(1, Ordering::Relaxed);
    shared
        .windowed_requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);

    if !shared.cfg.coalesce {
        // Measurement baseline: every request is its own execution.
        shared
            .distinct_executed
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        for req in batch {
            let result = shared
                .server
                .try_rank(req.class_id, req.q, req.k)
                .map_err(FrontendError::from);
            let _ = req.resp.try_send(result);
            shared.completed.fetch_add(1, Ordering::Relaxed);
        }
        shared.window_latency.lock().record(t0.elapsed());
        return;
    }

    // Group by k (k changes result shape), then coalesce each group into
    // one grid execution over its distinct classes × distinct queries.
    let mut by_k: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for (i, req) in batch.iter().enumerate() {
        by_k.entry(req.k as u64).or_default().push(i);
    }
    for group in by_k.values() {
        let mut classes: Vec<usize> = Vec::new();
        let mut class_col: FxHashMap<usize, usize> = FxHashMap::default();
        let mut queries: Vec<NodeId> = Vec::new();
        let mut query_row: FxHashMap<u32, usize> = FxHashMap::default();
        for &i in group {
            let req = &batch[i];
            class_col.entry(req.class_id).or_insert_with(|| {
                classes.push(req.class_id);
                classes.len() - 1
            });
            query_row.entry(req.q.0).or_insert_with(|| {
                queries.push(req.q);
                queries.len() - 1
            });
        }
        let k = batch[group[0]].k;
        // Distinct (class, query) *requested* pairs measure the saved
        // work; the grid may compute extra cross-product cells, which
        // land in the shared cache and serve later traffic.
        let mut seen_pairs: FxHashSet<(usize, u32)> = FxHashSet::default();
        for &i in group {
            seen_pairs.insert((batch[i].class_id, batch[i].q.0));
        }
        shared
            .distinct_executed
            .fetch_add(seen_pairs.len() as u64, Ordering::Relaxed);

        // One execution for the whole group; submit validated every
        // class id, so an error here is structural and is fanned to
        // every waiter instead of panicking a worker.
        let grid = shared.server.try_rank_multi_batch(&classes, &queries, k);
        // Speculative cross-window reuse: the grid computed the full
        // class × query cross product, so the cells nobody asked for are
        // now sitting in the server's LRU, ready to serve later windows.
        // (`k == 0` short-circuits past the cache and fills nothing.)
        if grid.is_ok() && k > 0 && shared.server.config().cache_capacity > 0 {
            let cells = classes.len() * queries.len();
            shared
                .speculative_fills
                .fetch_add((cells - seen_pairs.len()) as u64, Ordering::Relaxed);
        }
        for &i in group {
            let req = &batch[i];
            let result = match &grid {
                Ok(rows) => Ok(Arc::clone(
                    &rows[query_row[&req.q.0]][class_col[&req.class_id]],
                )),
                Err(e) => Err(FrontendError::Query(*e)),
            };
            let _ = req.resp.try_send(result);
            shared.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
    shared.window_latency.lock().record(t0.elapsed());
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic; the serving path may not
mod tests {
    use super::*;
    use crate::server::{QueryServer, ServeConfig};
    use mgp_index::{Transform, VectorIndex};
    use mgp_matching::AnchorCounts;

    fn sample_index() -> VectorIndex {
        let mut c0 = AnchorCounts::default();
        let mut c1 = AnchorCounts::default();
        let ins = |c: &mut AnchorCounts, x: u32, y: u32, n: u64| {
            c.per_pair
                .insert(mgp_graph::ids::pack_pair(NodeId(x), NodeId(y)), n);
            *c.per_node.entry(x).or_insert(0) += n;
            *c.per_node.entry(y).or_insert(0) += n;
        };
        ins(&mut c0, 1, 2, 4);
        ins(&mut c0, 1, 3, 1);
        ins(&mut c1, 2, 3, 2);
        ins(&mut c1, 1, 2, 1);
        VectorIndex::from_counts(&[c0, c1], Transform::Raw)
    }

    fn handle(cache: usize) -> ServerHandle {
        let idx = sample_index();
        let mut srv = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: cache,
        });
        srv.add_class("a", &idx, &[0.7, 0.3]);
        srv.add_class("b", &idx, &[0.2, 0.8]);
        Arc::new(srv)
    }

    #[test]
    fn answers_match_direct_server_calls() {
        let server = handle(64);
        let fe = Frontend::new(Arc::clone(&server), FrontendConfig::default());
        let tickets: Vec<(usize, NodeId, usize, Ticket)> = (0..40u32)
            .map(|i| {
                let (cid, q, k) = ((i % 2) as usize, NodeId(i % 6), 1 + (i % 3) as usize);
                (cid, q, k, fe.submit(cid, q, k).unwrap())
            })
            .collect();
        for (cid, q, k, t) in tickets {
            let got = t.wait().unwrap();
            assert_eq!(*got, *server.rank(cid, q, k), "cid={cid} q={q} k={k}");
        }
        let stats = fe.shutdown();
        assert_eq!(stats.submitted, 40);
        assert_eq!(stats.completed, 40);
        assert_eq!(stats.shed(), 0);
        assert!(stats.windows >= 1);
    }

    #[test]
    fn duplicates_coalesce_to_one_shared_arc() {
        // Cache off: identical Arcs can only come from coalescing.
        let server = handle(0);
        let cfg = FrontendConfig {
            workers: 1,
            window: Duration::from_millis(50),
            max_batch: 8,
            ..FrontendConfig::default()
        };
        let fe = Frontend::new(server, cfg);
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| fe.submit(0, NodeId(1), 2).unwrap())
            .collect();
        let results: Vec<Arc<RankedList>> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        for r in &results[1..] {
            assert!(
                Arc::ptr_eq(&results[0], r),
                "coalesced duplicates share one allocation"
            );
        }
        let stats = fe.shutdown();
        assert_eq!(stats.windowed_requests, 8);
        assert_eq!(stats.distinct_executed, 1);
        assert!(stats.coalesce_ratio >= 7.9, "{stats}");
    }

    #[test]
    fn coalesced_grid_prefills_cross_cells_speculatively() {
        let server = handle(16);
        let cfg = FrontendConfig {
            workers: 1,
            window: Duration::from_millis(100),
            max_batch: 8,
            ..FrontendConfig::default()
        };
        let fe = Frontend::new(Arc::clone(&server), cfg);
        // One window: (class 0, q1) and (class 1, q2). The coalesced
        // grid also computes (class 0, q2) and (class 1, q1) and parks
        // them in the server's LRU.
        let t0 = fe.submit(0, NodeId(1), 2).unwrap();
        let t1 = fe.submit(1, NodeId(2), 2).unwrap();
        t0.wait().unwrap();
        t1.wait().unwrap();
        let stats = fe.shutdown();
        assert_eq!(stats.windows, 1, "both requests must share a window");
        assert_eq!(stats.speculative_fills, 2, "{stats}");
        assert!(stats.to_string().contains("speculative"), "{stats}");
        // The unrequested cells now serve straight from cache.
        let misses = server.stats().cache_misses;
        let _ = server.rank(1, NodeId(1), 2);
        let _ = server.rank(0, NodeId(2), 2);
        assert_eq!(
            server.stats().cache_misses,
            misses,
            "speculatively filled cells must hit"
        );
    }

    #[test]
    fn degenerate_requests_are_typed_not_panics() {
        let fe = Frontend::new(handle(16), FrontendConfig::default());
        assert_eq!(
            fe.submit(9, NodeId(1), 2).unwrap_err(),
            FrontendError::Query(QueryError::UnknownClass(9))
        );
        // k == 0 flows through and answers empty.
        assert!(fe
            .submit(0, NodeId(1), 0)
            .unwrap()
            .wait()
            .unwrap()
            .is_empty());
        // Unknown anchors answer empty, like the server itself.
        assert!(fe
            .submit(0, NodeId(999), 5)
            .unwrap()
            .wait()
            .unwrap()
            .is_empty());
        assert!(fe.stats().to_string().contains("submitted"));
    }

    #[test]
    fn bounded_queue_sheds_with_typed_overloaded() {
        let server = handle(0);
        // Zero-length windows make each request a full execute cycle —
        // far more work per item for the single worker than a submit
        // costs the flooder — so a depth-2 queue must back up and shed.
        let cfg = FrontendConfig {
            workers: 1,
            queue_depth: 2,
            pressure_queue_depth: 2,
            window: Duration::ZERO,
            max_batch: 4,
            ..FrontendConfig::default()
        };
        let fe = Frontend::new(server, cfg);
        let mut shed = 0;
        let mut tickets = Vec::new();
        for i in 0..2000u32 {
            match fe.submit(0, NodeId(i % 6), 3) {
                Ok(t) => tickets.push(t),
                Err(FrontendError::Overloaded { depth, .. }) => {
                    assert!(depth <= 2);
                    shed += 1;
                }
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
        assert!(shed > 0, "flooding a depth-2 queue must shed");
        let stats = fe.stats();
        assert_eq!(stats.shed(), shed);
        assert!(
            stats.max_queue_depth <= 2,
            "bounded queue must bound memory: {stats}"
        );
        // Every admitted request still completes with an answer.
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let stats = fe.shutdown();
        assert_eq!(stats.completed + stats.shed(), stats.submitted);
    }

    #[test]
    fn epoch_pressure_tightens_admission_deterministically() {
        // Build a server, pin an epoch (a slow reader), apply a delta so
        // the retired epoch retains bytes, and watch admission flip to
        // the tightened limit — depth 0 here, so every request sheds.
        let idx = sample_index();
        let mut srv = QueryServer::new(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 16,
        });
        srv.add_class("a", &idx, &[0.7, 0.3]);
        let server: ServerHandle = Arc::new(srv);
        let cfg = FrontendConfig {
            high_water_bytes: 1,
            pressure_queue_depth: 0,
            ..FrontendConfig::default()
        };
        let fe = Frontend::new(Arc::clone(&server), cfg);
        assert!(!fe.refresh_pressure(), "healthy server: no pressure");

        let pin = server.pin_epoch(NodeId(1));
        let mut idx = idx;
        let mut delta = mgp_index::IndexDelta::empty(2);
        delta.counts[0].per_node.insert(1, 2);
        delta.counts[0].per_node.insert(2, 2);
        delta.counts[0]
            .per_pair
            .insert(mgp_graph::ids::pack_pair(NodeId(1), NodeId(2)), 2);
        let touch = idx.apply_delta(&delta);
        server.apply_delta(0, &idx, &touch);

        assert!(fe.refresh_pressure(), "pinned retired epoch is pressure");
        let err = fe.submit(0, NodeId(1), 2).unwrap_err();
        assert_eq!(
            err,
            FrontendError::Overloaded {
                depth: 0,
                pressured: true
            }
        );
        assert!(err.to_string().contains("epoch pressure"));
        assert_eq!(fe.stats().shed_pressure, 1);
        assert!(fe.stats().pressured);

        // The slow reader finishes: pressure clears, and the retried
        // request answers exactly what a direct call does.
        drop(pin);
        assert!(!fe.refresh_pressure());
        let got = fe.submit(0, NodeId(1), 2).unwrap().wait().unwrap();
        assert_eq!(*got, *server.rank(0, NodeId(1), 2));
    }

    #[test]
    fn shutdown_drains_in_flight_tickets() {
        let server = handle(16);
        let fe = Frontend::new(Arc::clone(&server), FrontendConfig::default());
        let stats = fe.shutdown();
        assert_eq!(stats.shed(), 0);
        let fe2 = Frontend::new(server, FrontendConfig::default());
        let t = fe2.submit(0, NodeId(1), 2).unwrap();
        drop(fe2); // shutdown drains: the ticket still answers.
        assert!(t.wait().is_ok());
    }

    #[test]
    fn depth_histogram_quantiles() {
        let h = DepthHistogram::default();
        assert_eq!(h.quantile(0.99), 0);
        for d in 1..=100 {
            h.record(d);
        }
        assert_eq!(h.max(), 100);
        assert!(h.quantile(0.99) >= 64 && h.quantile(0.99) <= 100);
        assert!(h.quantile(0.5) >= 50);
        let z = DepthHistogram::default();
        z.record(0);
        assert_eq!(z.quantile(1.0), 0);
    }
}

//! Replayable operation streams.
//!
//! A [`Trace`] is a named, seeded, fully-materialised workload: an
//! ordered list of [`Op`]s the driver replays against a live
//! engine/front-end pair. Traces have a canonical little-endian byte
//! encoding ([`Trace::to_bytes`]) and a 64-bit FNV-1a fingerprint over
//! it ([`Trace::fingerprint`]) — the determinism tests pin generator
//! output byte-for-byte, so an accidental generator change fails
//! loudly instead of silently shifting every benchmark.

use crate::spec::ClassSpec;
use mgp_graph::{GraphDelta, GraphError, NodeId};

/// Trace-format magic ("MGPS" for scenario).
const TRACE_MAGIC: &[u8; 4] = b"MGPS";
/// Bump when [`Trace::to_bytes`] (or [`ClassSpec`] encoding) changes.
const TRACE_VERSION: u16 = 1;

/// One workload operation.
#[derive(Debug, Clone)]
pub enum Op {
    /// Rank top-`k` for `q` under the class in slot `slot` (slots
    /// `0..n_initial_classes` are the classes present before the trace
    /// starts; each [`Op::Register`] appends the next slot).
    Query {
        /// Class slot (see [`Trace::n_initial_classes`]).
        slot: u32,
        /// Query anchor node.
        q: NodeId,
        /// Result-list length.
        k: u32,
    },
    /// Ingest a graph churn delta through the engine + live server.
    Delta(GraphDelta),
    /// Register a new class on the live engine + server; queries may use
    /// its slot from this point on.
    Register(ClassSpec),
}

/// A named, seeded, replayable workload.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Scenario name (see `Scenario::name`).
    pub scenario: String,
    /// The suite seed the trace was generated from.
    pub seed: u64,
    /// Class slots assumed live before the first op; `Register` ops
    /// extend the slot space by one each, in trace order.
    pub n_initial_classes: u32,
    /// The operation stream, in replay order.
    pub ops: Vec<Op>,
}

impl Trace {
    /// Number of query ops.
    pub fn n_queries(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Query { .. }))
            .count()
    }

    /// Number of delta ops.
    pub fn n_deltas(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Delta(_)))
            .count()
    }

    /// Number of class-registration ops.
    pub fn n_registers(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Register(_)))
            .count()
    }

    /// Canonical byte encoding: header (magic, version, seed, initial
    /// class count, name), then each op tagged `0` (query), `1` (delta,
    /// as the `GraphDelta` journal-record payload) or `2` (class spec).
    /// Two traces are the same workload iff their encodings are equal.
    /// Fails only if an embedded delta exceeds the journal layout's
    /// dimension limits (`u32` counts), which generated traces never do.
    pub fn to_bytes(&self) -> Result<Vec<u8>, GraphError> {
        let mut out = Vec::with_capacity(32 + self.ops.len() * 13);
        out.extend_from_slice(TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.n_initial_classes.to_le_bytes());
        out.extend_from_slice(&(self.scenario.len() as u32).to_le_bytes());
        out.extend_from_slice(self.scenario.as_bytes());
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        for op in &self.ops {
            match op {
                Op::Query { slot, q, k } => {
                    out.push(0);
                    out.extend_from_slice(&slot.to_le_bytes());
                    out.extend_from_slice(&q.0.to_le_bytes());
                    out.extend_from_slice(&k.to_le_bytes());
                }
                Op::Delta(delta) => {
                    out.push(1);
                    let bytes = delta.to_bytes()?;
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(&bytes);
                }
                Op::Register(spec) => {
                    out.push(2);
                    spec.encode(&mut out);
                }
            }
        }
        Ok(out)
    }

    /// FNV-1a fingerprint of [`Trace::to_bytes`] — the golden-trace
    /// tests' one-number summary of the whole workload.
    pub fn fingerprint(&self) -> Result<u64, GraphError> {
        Ok(fnv64(&self.to_bytes()?))
    }
}

/// 64-bit FNV-1a. Stable, dependency-free, and good enough to detect
/// any accidental trace drift (this is a change detector, not a
/// cryptographic commitment).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PatternSelect;
    use mgp_graph::{Graph, GraphBuilder};

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let t = b.add_type("user");
        let u = b.add_node(t, "u0");
        let v = b.add_node(t, "u1");
        b.add_edge(u, v).unwrap();
        b.build()
    }

    #[test]
    fn encoding_round_trips_op_counts() {
        let g = tiny_graph();
        let mut delta = GraphDelta::for_graph(&g);
        delta.remove_edge(NodeId(0), NodeId(1)).unwrap();
        let trace = Trace {
            scenario: "unit".to_owned(),
            seed: 7,
            n_initial_classes: 2,
            ops: vec![
                Op::Query {
                    slot: 0,
                    q: NodeId(1),
                    k: 10,
                },
                Op::Delta(delta),
                Op::Register(ClassSpec::new("rt", PatternSelect::Seeds)),
                Op::Query {
                    slot: 2,
                    q: NodeId(0),
                    k: 5,
                },
            ],
        };
        assert_eq!(trace.n_queries(), 2);
        assert_eq!(trace.n_deltas(), 1);
        assert_eq!(trace.n_registers(), 1);
        let bytes = trace.to_bytes().unwrap();
        assert_eq!(&bytes[..4], TRACE_MAGIC);
        // Same trace, same bytes; any field change moves the fingerprint.
        assert_eq!(bytes, trace.clone().to_bytes().unwrap());
        let mut other = trace.clone();
        other.seed = 8;
        assert_ne!(
            trace.fingerprint().unwrap(),
            other.fingerprint().unwrap(),
            "seed must be part of the fingerprint"
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}

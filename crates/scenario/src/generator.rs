//! Deterministic workload generation.
//!
//! [`TraceGenerator`] turns one suite seed into the named scenario
//! traces of [`Scenario::ALL`]. Determinism is the contract: the same
//! seed over the same starting graph yields byte-identical traces
//! (pinned by the golden-fingerprint tests), so a benchmark regression
//! is always a *code* change, never workload noise. To keep that true
//! across platforms the generator uses only a `ChaCha8Rng` stream and
//! IEEE-exact float operations (`+ - * /`, never `libm` calls like
//! `powf`/`sin`), and every graph delta is generated against an
//! internally-evolved graph copy so it is valid by construction.
//!
//! The generator's graph evolves **across** `generate` calls: a suite
//! is meant to be replayed in generation order against one engine
//! whose graph starts where the generator's did.

use crate::ops::{fnv64, Op, Trace};
use crate::spec::{ClassSpec, PatternSelect};
use mgp_graph::{Graph, GraphDelta, NodeId, TypeId};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The named scenarios, in suite order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Zipfian anchors, fixed `k`, no churn — the cache-friendly
    /// baseline every other scenario is compared against.
    SteadyRead,
    /// Zipfian reads with churn deltas whose size swells and shrinks on
    /// a triangle wave — a day/night load curve compressed into one
    /// trace.
    DiurnalChurn,
    /// Repeated hub storms: one delta attaches a new hub node to many
    /// anchors, queries hammer the churned anchors, one delta then
    /// removes the whole hub — the worst case for per-edge delta
    /// matching and posting patches.
    DeletionStorm,
    /// Uniform permutation sweeps over all anchors with a per-pass `k`
    /// bump, so no `(class, q, k)` key ever repeats — the LRU-hostile
    /// adversary.
    CacheBuster,
    /// One hot tenant class takes most of the traffic at small `k`;
    /// cold tenants scatter uniform queries at 4× the `k` — mixed
    /// per-class load with k-skew.
    TenantSkew,
    /// Steady zipfian reads that register a brand-new class mid-trace
    /// and immediately start querying it.
    RegisterMidTraffic,
}

impl Scenario {
    /// Every scenario, in canonical suite order.
    pub const ALL: [Scenario; 6] = [
        Scenario::SteadyRead,
        Scenario::DiurnalChurn,
        Scenario::DeletionStorm,
        Scenario::CacheBuster,
        Scenario::TenantSkew,
        Scenario::RegisterMidTraffic,
    ];

    /// Stable scenario name (also salts the per-scenario RNG stream).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::SteadyRead => "steady-read",
            Scenario::DiurnalChurn => "diurnal-churn",
            Scenario::DeletionStorm => "deletion-storm",
            Scenario::CacheBuster => "cache-buster",
            Scenario::TenantSkew => "tenant-skew",
            Scenario::RegisterMidTraffic => "register-mid-traffic",
        }
    }
}

/// Suite-generation parameters.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Suite seed; every scenario derives its own stream from it.
    pub seed: u64,
    /// Queries per scenario trace.
    pub queries: usize,
    /// Baseline result-list length.
    pub k: usize,
    /// Class slots live before the suite starts (the engine's
    /// already-registered classes, ids `0..n_classes`).
    pub n_classes: usize,
    /// Queries between churn deltas in [`Scenario::DiurnalChurn`].
    pub churn_every: usize,
    /// Peak edges per churn delta (the triangle wave's crest).
    pub churn_edges: usize,
    /// Edges each [`Scenario::DeletionStorm`] hub attaches (and one
    /// delta later removes).
    ///
    /// **Density caveat**: size this relative to the target graph, not
    /// in absolute terms. Every hub edge seeds delta matching for every
    /// pattern whose edge types it fits, so the *instance* delta a hub
    /// produces grows with the graph's co-neighbour density — on a
    /// dense schema (many shared attributes per anchor pair) a
    /// degree-256 hub can inflate size-5 pattern instance counts
    /// combinatorially even though the wcoj matcher enumerates them in
    /// one shared extension frontier. The default suits sparse test
    /// worlds; dense-schema suites (e.g. the Facebook benchmark) should
    /// set a value near the graph's p99 anchor degree. The generator
    /// additionally caps the hub at half the anchor pool so the storm's
    /// "hammer the churned anchors" phase stays a distinguishable hot
    /// set instead of degenerating into uniform reads.
    pub hub_degree: usize,
    /// Hub add/remove storms per deletion-storm trace.
    pub storms: usize,
    /// Class spec registered by [`Scenario::RegisterMidTraffic`]
    /// (default: all mined patterns, uniform weights, under the name
    /// `"runtime-registered"`).
    pub register_spec: Option<ClassSpec>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 42,
            queries: 2_000,
            k: 10,
            n_classes: 1,
            churn_every: 64,
            churn_edges: 6,
            hub_degree: 256,
            storms: 3,
            register_spec: None,
        }
    }
}

/// Seeded scenario-trace generator over an evolving graph copy.
pub struct TraceGenerator {
    graph: Graph,
    anchor_type: TypeId,
    anchors: Vec<NodeId>,
    attrs: Vec<NodeId>,
    hub_type: TypeId,
    cfg: GeneratorConfig,
}

/// Uniform `[0, 1)` from one RNG draw — IEEE-exact arithmetic only.
fn unit(rng: &mut ChaCha8Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform index in `0..n` (`n > 0`).
fn below(rng: &mut ChaCha8Rng, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

/// Cumulative zipf(s=1) distribution over `n` ranks: rank `r` (0-based)
/// carries weight `1 / (r + 1)` — heavy head, long tail, and only
/// IEEE-exact division, so the sampled stream is platform-independent.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 0..n {
        acc += 1.0 / (r + 1) as f64;
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

fn sample(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

impl TraceGenerator {
    /// Builds a generator over a copy of `graph`. Anchor and attribute
    /// pools are captured once, in deterministic CSR order; hub nodes
    /// take the type of the first non-anchor node (falling back to the
    /// anchor type in a unityped graph).
    pub fn new(graph: &Graph, anchor_type: TypeId, cfg: GeneratorConfig) -> Self {
        let anchors = graph.nodes_of_type(anchor_type).to_vec();
        assert!(!anchors.is_empty(), "graph has no anchor nodes");
        let attrs: Vec<NodeId> = graph
            .nodes()
            .filter(|&v| graph.node_type(v) != anchor_type && graph.degree(v) > 0)
            .collect();
        let hub_type = attrs
            .first()
            .map(|&v| graph.node_type(v))
            .unwrap_or(anchor_type);
        TraceGenerator {
            graph: graph.clone(),
            anchor_type,
            anchors,
            attrs,
            hub_type,
            cfg,
        }
    }

    /// The anchor type queries sample from.
    pub fn anchor_type(&self) -> TypeId {
        self.anchor_type
    }

    /// Generates every scenario of [`Scenario::ALL`], in order.
    pub fn generate_suite(&mut self) -> Vec<Trace> {
        Scenario::ALL
            .map(|s| self.generate(s))
            .into_iter()
            .collect()
    }

    /// Generates one scenario trace. Deltas the trace contains are
    /// applied to the generator's internal graph, so later traces stay
    /// valid when replayed in order.
    pub fn generate(&mut self, scenario: Scenario) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ fnv64(scenario.name().as_bytes()));
        let ops = match scenario {
            Scenario::SteadyRead => self.steady_read(&mut rng),
            Scenario::DiurnalChurn => self.diurnal_churn(&mut rng),
            Scenario::DeletionStorm => self.deletion_storm(&mut rng),
            Scenario::CacheBuster => self.cache_buster(&mut rng),
            Scenario::TenantSkew => self.tenant_skew(&mut rng),
            Scenario::RegisterMidTraffic => self.register_mid_traffic(&mut rng),
        };
        Trace {
            scenario: scenario.name().to_owned(),
            seed: self.cfg.seed,
            n_initial_classes: self.cfg.n_classes as u32,
            ops,
        }
    }

    fn zipf_query(&self, rng: &mut ChaCha8Rng, cdf: &[f64], slot_cdf: &[f64], k: usize) -> Op {
        Op::Query {
            slot: sample(slot_cdf, unit(rng)) as u32,
            q: self.anchors[sample(cdf, unit(rng))],
            k: k as u32,
        }
    }

    /// Applies `delta` to the evolving graph and returns it as an op.
    fn commit(&mut self, delta: GraphDelta) -> Op {
        let ext = self
            .graph
            .apply_delta(&delta)
            .expect("generator deltas are valid by construction");
        self.graph = ext.graph;
        Op::Delta(delta)
    }

    fn steady_read(&mut self, rng: &mut ChaCha8Rng) -> Vec<Op> {
        let cdf = zipf_cdf(self.anchors.len());
        let slots = zipf_cdf(self.cfg.n_classes);
        (0..self.cfg.queries)
            .map(|_| self.zipf_query(rng, &cdf, &slots, self.cfg.k))
            .collect()
    }

    fn diurnal_churn(&mut self, rng: &mut ChaCha8Rng) -> Vec<Op> {
        let cdf = zipf_cdf(self.anchors.len());
        let slots = zipf_cdf(self.cfg.n_classes);
        let n_deltas = (self.cfg.queries / self.cfg.churn_every.max(1)).max(2);
        let mut ops = Vec::with_capacity(self.cfg.queries + n_deltas);
        // Edges this trace added and has not yet removed — removal
        // deltas draw from it, so the churn is self-consistent.
        let mut pool: Vec<(NodeId, NodeId)> = Vec::new();
        let mut emitted = 0usize;
        for j in 0..n_deltas {
            for _ in 0..self.cfg.churn_every {
                if emitted >= self.cfg.queries {
                    break;
                }
                ops.push(self.zipf_query(rng, &cdf, &slots, self.cfg.k));
                emitted += 1;
            }
            // Triangle wave over the delta index: delta size climbs from
            // 1 to the crest at mid-trace and back — the "diurnal" swell.
            let half = n_deltas / 2;
            let phase = if j <= half { j } else { n_deltas - j };
            let size = 1 + self.cfg.churn_edges * phase / half.max(1);
            let mut delta = GraphDelta::for_graph(&self.graph);
            let mut touched: Vec<(NodeId, NodeId)> = Vec::new();
            for _ in 0..size {
                let remove =
                    !pool.is_empty() && (pool.len() > self.cfg.churn_edges || unit(rng) < 0.5);
                if remove {
                    let (u, a) = pool.swap_remove(below(rng, pool.len()));
                    if touched.contains(&(u, a)) {
                        pool.push((u, a));
                        continue;
                    }
                    delta.remove_edge(u, a).expect("pooled edge exists");
                    touched.push((u, a));
                } else if let Some((u, a)) = self.fresh_pair(rng, &touched) {
                    delta.add_edge(u, a).expect("endpoints exist");
                    touched.push((u, a));
                    pool.push((u, a));
                }
            }
            if !delta.is_empty() {
                ops.push(self.commit(delta));
            }
        }
        while emitted < self.cfg.queries {
            ops.push(self.zipf_query(rng, &cdf, &slots, self.cfg.k));
            emitted += 1;
        }
        ops
    }

    /// A not-currently-present (anchor, attribute) edge, avoiding pairs
    /// already touched in the delta under construction.
    fn fresh_pair(
        &self,
        rng: &mut ChaCha8Rng,
        touched: &[(NodeId, NodeId)],
    ) -> Option<(NodeId, NodeId)> {
        if self.attrs.is_empty() {
            return None;
        }
        for _ in 0..32 {
            let u = self.anchors[below(rng, self.anchors.len())];
            let a = self.attrs[below(rng, self.attrs.len())];
            if !self.graph.has_edge(u, a) && !touched.contains(&(u, a)) {
                return Some((u, a));
            }
        }
        None
    }

    fn deletion_storm(&mut self, rng: &mut ChaCha8Rng) -> Vec<Op> {
        let cdf = zipf_cdf(self.anchors.len());
        let slots = zipf_cdf(self.cfg.n_classes);
        let storms = self.cfg.storms.max(1);
        // Cap at half the anchor pool (see the `hub_degree` caveat): a
        // saturating hub would make the churned-anchor read phase
        // indistinguishable from uniform traffic, and the distinct-anchor
        // rejection loop below would degenerate into a coupon collector.
        let degree = self.cfg.hub_degree.min(self.anchors.len() / 2).max(1);
        // Each storm: calm reads, hub attach, reads aimed at the churned
        // anchors, hub removal (every edge in one delta).
        let per_phase = (self.cfg.queries / (storms * 2)).max(1);
        let mut ops = Vec::new();
        let mut emitted = 0usize;
        for s in 0..storms {
            for _ in 0..per_phase {
                ops.push(self.zipf_query(rng, &cdf, &slots, self.cfg.k));
                emitted += 1;
            }
            // Attach a brand-new hub to `degree` distinct anchors.
            let mut delta = GraphDelta::for_graph(&self.graph);
            let hub = delta.add_node(self.hub_type, format!("storm-hub-{}-{s}", self.cfg.seed));
            let mut chosen: Vec<NodeId> = Vec::with_capacity(degree);
            while chosen.len() < degree {
                let a = self.anchors[below(rng, self.anchors.len())];
                if !chosen.contains(&a) {
                    delta.add_edge(hub, a).expect("anchor exists");
                    chosen.push(a);
                }
            }
            ops.push(self.commit(delta));
            // Hammer the anchors whose postings the hub just churned.
            for _ in 0..per_phase {
                ops.push(Op::Query {
                    slot: sample(&slots, unit(rng)) as u32,
                    q: chosen[below(rng, chosen.len())],
                    k: self.cfg.k as u32,
                });
                emitted += 1;
            }
            // The storm: the whole hub — all `degree` edges — in one delta.
            let mut delta = GraphDelta::for_graph(&self.graph);
            delta.remove_node(hub).expect("hub was just added");
            ops.push(self.commit(delta));
        }
        while emitted < self.cfg.queries {
            ops.push(self.zipf_query(rng, &cdf, &slots, self.cfg.k));
            emitted += 1;
        }
        ops
    }

    fn cache_buster(&mut self, rng: &mut ChaCha8Rng) -> Vec<Op> {
        let n = self.anchors.len();
        // A stride coprime with `n` visits every anchor exactly once per
        // pass; each full pass bumps `k`, so no `(class, q, k)` cache
        // key ever recurs.
        fn gcd(a: usize, b: usize) -> usize {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut stride = below(rng, n).max(1);
        while gcd(stride, n) != 1 {
            stride += 1;
        }
        let offset = below(rng, n);
        (0..self.cfg.queries)
            .map(|i| Op::Query {
                slot: (i % self.cfg.n_classes) as u32,
                q: self.anchors[(offset + i * stride) % n],
                k: (self.cfg.k + i / n) as u32,
            })
            .collect()
    }

    fn tenant_skew(&mut self, rng: &mut ChaCha8Rng) -> Vec<Op> {
        let cdf = zipf_cdf(self.anchors.len());
        let hot = below(rng, self.cfg.n_classes);
        (0..self.cfg.queries)
            .map(|_| {
                if self.cfg.n_classes == 1 || unit(rng) < 0.8 {
                    // Hot tenant: zipfian anchors, small k.
                    Op::Query {
                        slot: hot as u32,
                        q: self.anchors[sample(&cdf, unit(rng))],
                        k: self.cfg.k as u32,
                    }
                } else {
                    // Cold tenants: uniform anchors, 4× the k.
                    let mut slot = below(rng, self.cfg.n_classes - 1);
                    if slot >= hot {
                        slot += 1;
                    }
                    Op::Query {
                        slot: slot as u32,
                        q: self.anchors[below(rng, self.anchors.len())],
                        k: (self.cfg.k * 4) as u32,
                    }
                }
            })
            .collect()
    }

    fn register_mid_traffic(&mut self, rng: &mut ChaCha8Rng) -> Vec<Op> {
        let cdf = zipf_cdf(self.anchors.len());
        let slots = zipf_cdf(self.cfg.n_classes);
        let spec = self
            .cfg
            .register_spec
            .clone()
            .unwrap_or_else(|| ClassSpec::new("runtime-registered", PatternSelect::All));
        let new_slot = self.cfg.n_classes as u32;
        let split = self.cfg.queries / 3;
        let mut ops = Vec::with_capacity(self.cfg.queries + 1);
        for _ in 0..split {
            ops.push(self.zipf_query(rng, &cdf, &slots, self.cfg.k));
        }
        ops.push(Op::Register(spec));
        for _ in split..self.cfg.queries {
            if unit(rng) < 0.3 {
                // The freshly-registered class takes a steady share.
                ops.push(Op::Query {
                    slot: new_slot,
                    q: self.anchors[sample(&cdf, unit(rng))],
                    k: self.cfg.k as u32,
                });
            } else {
                ops.push(self.zipf_query(rng, &cdf, &slots, self.cfg.k));
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::GraphBuilder;

    fn world() -> (Graph, TypeId) {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let attr = b.add_type("attr");
        let users: Vec<NodeId> = (0..24).map(|i| b.add_node(user, format!("u{i}"))).collect();
        let attrs: Vec<NodeId> = (0..6).map(|i| b.add_node(attr, format!("a{i}"))).collect();
        for (i, &u) in users.iter().enumerate() {
            b.add_edge(u, attrs[i % attrs.len()]).unwrap();
        }
        (b.build(), TypeId(0))
    }

    fn cfg(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            seed,
            queries: 120,
            n_classes: 2,
            churn_every: 16,
            hub_degree: 8,
            storms: 2,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn scenarios_have_their_signature_op_mix() {
        let (g, anchor) = world();
        let mut gen = TraceGenerator::new(&g, anchor, cfg(1));
        let suite = gen.generate_suite();
        assert_eq!(suite.len(), Scenario::ALL.len());
        for (trace, scenario) in suite.iter().zip(Scenario::ALL) {
            assert_eq!(trace.scenario, scenario.name());
            assert_eq!(trace.n_queries(), 120, "{}", trace.scenario);
            assert_eq!(trace.n_initial_classes, 2);
        }
        assert_eq!(suite[0].n_deltas(), 0, "steady read is churn-free");
        assert!(suite[1].n_deltas() >= 2, "diurnal churn has deltas");
        assert_eq!(suite[2].n_deltas(), 4, "two storms = 4 hub deltas");
        assert_eq!(suite[3].n_deltas(), 0, "cache buster is churn-free");
        assert_eq!(suite[5].n_registers(), 1, "register-mid-traffic");
        // Every query's slot is within the (possibly grown) slot space.
        for trace in &suite {
            let mut live = trace.n_initial_classes;
            for op in &trace.ops {
                match op {
                    Op::Query { slot, .. } => assert!(*slot < live),
                    Op::Register(_) => live += 1,
                    Op::Delta(_) => {}
                }
            }
        }
    }

    #[test]
    fn cache_buster_never_repeats_a_key() {
        let (g, anchor) = world();
        let mut gen = TraceGenerator::new(&g, anchor, cfg(3));
        let trace = gen.generate(Scenario::CacheBuster);
        let mut seen = std::collections::HashSet::new();
        for op in &trace.ops {
            if let Op::Query { slot, q, k } = op {
                assert!(seen.insert((*slot, q.0, *k)), "repeated cache key");
            }
        }
    }

    #[test]
    fn deletion_storm_nets_back_to_the_starting_graph() {
        let (g, anchor) = world();
        let mut gen = TraceGenerator::new(&g, anchor, cfg(5));
        let _ = gen.generate(Scenario::DeletionStorm);
        // Hubs are added and then wholly removed; edge set is restored
        // (the hub node ids remain allocated but detached).
        assert_eq!(gen.graph.n_edges(), g.n_edges());
    }
}

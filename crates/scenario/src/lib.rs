//! # mgp-scenario — runtime query classes + adversarial workload suite
//!
//! The serving stack is benchmarked, but a benchmark only guards the
//! traffic shape it generates. This crate makes the traffic shape a
//! first-class, reproducible artifact, in two layers:
//!
//! * **Runtime class specs** ([`spec`]) — a [`ClassSpec`] names the
//!   metagraph patterns, count transform and weights of a new relevance
//!   class. `mgp_core::SearchEngine::register_class` compiles one
//!   against a *live* engine: the restricted index is built from the
//!   engine's current instance counts, subsequent `ingest` calls fan
//!   deltas to it exactly like build-time classes, and
//!   `QueryServer::register_class` grows every shard's class slice
//!   through the same copy-on-write epoch swaps a delta uses — readers
//!   never pause and never observe a half-registered class.
//! * **Deterministic workloads** ([`generator`], [`ops`]) — one seed
//!   expands into the named scenario traces of
//!   [`Scenario::ALL`](generator::Scenario::ALL): zipfian steady
//!   reads, diurnal churn, hub-heavy deletion storms, cache-busting
//!   uniform sweeps, mixed-tenant k-skew, and register-class-mid-
//!   traffic. Traces are replayable [`Op`] streams with a canonical
//!   byte encoding and FNV fingerprint, so the suite is pinned
//!   byte-for-byte by golden tests.
//! * **A replay driver** ([`driver`]) — [`run_trace`] drives the async
//!   front-end open-loop from worker threads while mutations land
//!   mid-traffic through a [`ScenarioTarget`], and reports per-scenario
//!   QPS, p50/p99 (merged [`mgp_online::LatencyHistogram`]s), cache hit
//!   rate, shed counts and fused-visit stats — the numbers
//!   `bench_scenarios` gates in CI.
//!
//! The crate sits *below* `mgp-core` (which re-exports it as
//! `mgp_core::scenario` and provides the `SearchEngine` glue), so it
//! can be used directly against any `Frontend` + [`ScenarioTarget`]
//! pair.

#![warn(missing_docs)]

pub mod driver;
pub mod generator;
pub mod ops;
pub mod spec;

pub use driver::{
    run_trace, DriverConfig, MatchWork, MutationSummary, ScenarioReport, ScenarioTarget,
    SuiteReport,
};
pub use generator::{GeneratorConfig, Scenario, TraceGenerator};
pub use ops::{fnv64, Op, Trace};
pub use spec::{ClassSpec, PatternSelect, SpecError, WeightSpec};

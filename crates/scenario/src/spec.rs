//! Runtime query-class specifications.
//!
//! A [`ClassSpec`] is everything a `SearchEngine` needs to add a new
//! relevance class *without training*: which metagraph patterns carry
//! the class, how raw instance counts become vector entries, and the
//! per-pattern weights. The engine compiles a spec against its mined
//! pattern set (`SearchEngine::register_class` in `mgp-core`), builds
//! the restricted index from its current counts, and — for a live
//! server — grows every shard's class slice through the same
//! copy-on-write epoch swaps a delta uses.

use mgp_index::Transform;
use mgp_metagraph::Metagraph;
use std::fmt;

/// Which metagraph patterns back a runtime-registered class.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternSelect {
    /// Every pattern the engine has mined.
    All,
    /// The engine's metapath seeds (the cheap chain patterns).
    Seeds,
    /// Explicit indices into the engine's mined pattern set.
    Mined(Vec<usize>),
    /// Caller-supplied metagraphs, appended to the engine's pattern set
    /// and matched on registration. Each must contain the engine's
    /// anchor type.
    Custom(Vec<Metagraph>),
}

/// Per-pattern weights for a runtime-registered class.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightSpec {
    /// Weight `1.0` on every selected pattern.
    Uniform,
    /// One explicit weight per selected pattern, in selection order.
    Explicit(Vec<f64>),
}

/// A runtime class definition: patterns + transform + weights.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Class name (must be new to the engine and the server).
    pub name: String,
    /// Pattern selection.
    pub patterns: PatternSelect,
    /// Count transform for the class's restricted index.
    pub transform: Transform,
    /// Per-pattern weights.
    pub weights: WeightSpec,
}

/// Why a [`ClassSpec`] is malformed on its own terms (engine-dependent
/// checks — unknown pattern indices, duplicate names — are reported by
/// `SearchEngine::register_class`).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The class name is empty.
    EmptyName,
    /// `Mined`/`Custom`/`Explicit` with an empty list.
    EmptyPattern,
    /// An explicit weight is NaN or infinite.
    BadWeight {
        /// Index of the offending weight.
        index: usize,
        /// Its value.
        value: f64,
    },
    /// Explicit weight count disagrees with the selected pattern count
    /// (only checkable locally for `Mined`/`Custom` selections).
    WeightCount {
        /// Selected pattern count.
        expected: usize,
        /// Supplied weight count.
        got: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyName => write!(f, "class name is empty"),
            SpecError::EmptyPattern => write!(f, "pattern selection is empty"),
            SpecError::BadWeight { index, value } => {
                write!(f, "weight {index} is not finite ({value})")
            }
            SpecError::WeightCount { expected, got } => {
                write!(f, "{got} weights for {expected} selected patterns")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl ClassSpec {
    /// A spec with the default transform (`Log1p`) and uniform weights.
    pub fn new(name: impl Into<String>, patterns: PatternSelect) -> Self {
        ClassSpec {
            name: name.into(),
            patterns,
            transform: Transform::Log1p,
            weights: WeightSpec::Uniform,
        }
    }

    /// Sets the count transform.
    pub fn with_transform(mut self, transform: Transform) -> Self {
        self.transform = transform;
        self
    }

    /// Sets explicit weights.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = WeightSpec::Explicit(weights);
        self
    }

    /// Checks everything checkable without an engine: non-empty name and
    /// selection, finite weights, and (for `Mined`/`Custom`) that the
    /// weight count matches the selection.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::EmptyName);
        }
        let known_len = match &self.patterns {
            PatternSelect::All | PatternSelect::Seeds => None,
            PatternSelect::Mined(v) => {
                if v.is_empty() {
                    return Err(SpecError::EmptyPattern);
                }
                Some(v.len())
            }
            PatternSelect::Custom(mgs) => {
                if mgs.is_empty() {
                    return Err(SpecError::EmptyPattern);
                }
                Some(mgs.len())
            }
        };
        if let WeightSpec::Explicit(w) = &self.weights {
            if w.is_empty() {
                return Err(SpecError::EmptyPattern);
            }
            if let Some((index, &value)) = w.iter().enumerate().find(|(_, v)| !v.is_finite()) {
                return Err(SpecError::BadWeight { index, value });
            }
            if let Some(expected) = known_len {
                if w.len() != expected {
                    return Err(SpecError::WeightCount {
                        expected,
                        got: w.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Appends the spec's canonical byte encoding (used by
    /// [`crate::ops::Trace::to_bytes`] — part of the deterministic trace
    /// format, so any change here must bump the trace version).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        match &self.patterns {
            PatternSelect::All => out.push(0),
            PatternSelect::Seeds => out.push(1),
            PatternSelect::Mined(v) => {
                out.push(2);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for &i in v {
                    out.extend_from_slice(&(i as u32).to_le_bytes());
                }
            }
            PatternSelect::Custom(mgs) => {
                out.push(3);
                out.extend_from_slice(&(mgs.len() as u32).to_le_bytes());
                for mg in mgs {
                    let types = mg.node_types();
                    out.extend_from_slice(&(types.len() as u32).to_le_bytes());
                    for t in types {
                        out.extend_from_slice(&t.0.to_le_bytes());
                    }
                    let edges = mg.edges();
                    out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
                    for (u, v) in edges {
                        out.extend_from_slice(&(u as u32).to_le_bytes());
                        out.extend_from_slice(&(v as u32).to_le_bytes());
                    }
                }
            }
        }
        out.push(match self.transform {
            Transform::Raw => 0,
            Transform::Log1p => 1,
            Transform::Binary => 2,
        });
        match &self.weights {
            WeightSpec::Uniform => out.push(0),
            WeightSpec::Explicit(w) => {
                out.push(1);
                out.extend_from_slice(&(w.len() as u32).to_le_bytes());
                for v in w {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::TypeId;

    #[test]
    fn validate_catches_local_defects() {
        assert_eq!(
            ClassSpec::new("", PatternSelect::All).validate(),
            Err(SpecError::EmptyName)
        );
        assert_eq!(
            ClassSpec::new("c", PatternSelect::Mined(vec![])).validate(),
            Err(SpecError::EmptyPattern)
        );
        // NaN payloads never compare equal, so match on the variant.
        assert!(matches!(
            ClassSpec::new("c", PatternSelect::Mined(vec![0, 2]))
                .with_weights(vec![1.0, f64::NAN])
                .validate(),
            Err(SpecError::BadWeight { index: 1, .. })
        ));
        assert_eq!(
            ClassSpec::new("c", PatternSelect::Mined(vec![0, 2]))
                .with_weights(vec![1.0])
                .validate(),
            Err(SpecError::WeightCount {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            ClassSpec::new("c", PatternSelect::Seeds)
                .with_weights(vec![0.5, 2.0])
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn bad_weight_compares_through_nan() {
        // SpecError derives PartialEq; the NaN payload must not make two
        // identical errors unequal in the test above — sanity-check the
        // variant match arms we rely on.
        let e = ClassSpec::new("c", PatternSelect::All)
            .with_weights(vec![f64::INFINITY])
            .validate()
            .unwrap_err();
        assert!(matches!(e, SpecError::BadWeight { index: 0, .. }));
    }

    #[test]
    fn encoding_is_stable_across_equal_specs() {
        let mg = Metagraph::from_edges(&[TypeId(0), TypeId(1), TypeId(0)], &[(0, 1), (1, 2)])
            .expect("valid metagraph");
        let spec = ClassSpec::new("rt", PatternSelect::Custom(vec![mg]))
            .with_transform(Transform::Binary)
            .with_weights(vec![1.5]);
        let mut a = Vec::new();
        let mut b = Vec::new();
        spec.encode(&mut a);
        spec.clone().encode(&mut b);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}

//! Trace replay against a live engine + front-end.
//!
//! [`run_trace`] partitions a trace's queries round-robin across worker
//! threads that drive the async [`Frontend`] open-loop (a bounded
//! number of tickets in flight each), while the caller's thread applies
//! the trace's delta/register mutations through a [`ScenarioTarget`] —
//! gated on query progress, so churn lands *during* traffic, in the
//! same relative position on every run. Per-worker latency histograms
//! merge into one per-scenario summary ([`LatencyHistogram::merge`]),
//! and the report carries QPS, p50/p99, cache hit rate, shed counts and
//! fused-visit stats — the numbers `bench_scenarios` gates in CI.

use crate::ops::{Op, Trace};
use crate::spec::ClassSpec;
use mgp_graph::{GraphDelta, NodeId};
use mgp_online::{Frontend, FrontendError, LatencyHistogram, LatencySnapshot, Ticket};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Delta-matcher work counters for one mutation (or, summed, one
/// scenario) — a dependency-free mirror of `mgp_matching::MatchStats`,
/// so the scenario crate can report matcher effort without depending on
/// the matching crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchWork {
    /// Candidate sets proposed (one per extension level entered).
    pub proposals: u64,
    /// Merge/gallop intersection kernel invocations.
    pub intersections: u64,
    /// Candidate nodes actually bound and recursed into.
    pub extensions: u64,
    /// Instances enumerated (after `|Aut|` division).
    pub instances: u64,
    /// Candidates pruned by the anchor-ownership dedup rule.
    pub dedup_suppressed: u64,
}

impl std::ops::AddAssign for MatchWork {
    fn add_assign(&mut self, rhs: MatchWork) {
        self.proposals += rhs.proposals;
        self.intersections += rhs.intersections;
        self.extensions += rhs.extensions;
        self.instances += rhs.instances;
        self.dedup_suppressed += rhs.dedup_suppressed;
    }
}

impl fmt::Display for MatchWork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proposals {}, intersections {}, extensions {}, instances {}, dedup-suppressed {}",
            self.proposals,
            self.intersections,
            self.extensions,
            self.instances,
            self.dedup_suppressed
        )
    }
}

/// What a mutation did to the serving layer — the slice of
/// `IngestReport` the per-scenario report aggregates.
#[derive(Debug, Clone, Copy, Default)]
pub struct MutationSummary {
    /// Shards the fused patch actually cloned/swapped.
    pub fused_shard_visits: usize,
    /// Shard visits per-class patching would have paid.
    pub sequential_shard_visits: usize,
    /// wcoj delta-matcher work this ingest performed.
    pub match_work: MatchWork,
}

/// The mutable side of a scenario run: whatever owns the engine applies
/// deltas and registers classes; the driver only decides *when*.
/// `mgp-core` implements this for a `SearchEngine` + `ServerHandle`
/// pair (`mgp_core::scenario::LiveTarget`).
pub trait ScenarioTarget {
    /// Ingests one graph delta through engine + live server.
    fn apply_delta(&mut self, delta: &GraphDelta) -> Result<MutationSummary, String>;

    /// Registers a new class on the live engine + server, returning the
    /// class id (which must equal the trace's next slot).
    fn register_class(&mut self, spec: &ClassSpec) -> Result<usize, String>;
}

/// Driver parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Query worker threads.
    pub workers: usize,
    /// Tickets each worker keeps in flight (open-loop depth).
    pub outstanding: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            workers: 2,
            outstanding: 32,
        }
    }
}

/// Per-scenario run summary.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Queries answered (including typed errors; see
    /// [`ScenarioReport::errors`]).
    pub completed: u64,
    /// Queries that came back as typed errors instead of rankings.
    pub errors: u64,
    /// Wall time from first submit to last answer.
    pub wall: Duration,
    /// Submit→answer latency across all workers (merged histograms).
    pub latency: LatencySnapshot,
    /// Server cache hits during the run.
    pub cache_hits: u64,
    /// Server cache misses during the run.
    pub cache_misses: u64,
    /// Admission-control rejections workers absorbed by retrying.
    pub shed_events: u64,
    /// Deltas applied.
    pub deltas: usize,
    /// Classes registered.
    pub registers: usize,
    /// Mutations the target rejected (messages, in trace order) —
    /// always empty on a healthy run.
    pub mutation_failures: Vec<String>,
    /// Fused shard visits across all deltas.
    pub fused_shard_visits: usize,
    /// Shard visits per-class patching would have paid.
    pub sequential_shard_visits: usize,
    /// Delta-matcher work summed across all deltas.
    pub match_work: MatchWork,
}

impl ScenarioReport {
    /// Sustained queries per second over the run.
    pub fn qps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.wall.as_secs_f64()
        }
    }

    /// Cache hit fraction in `[0, 1]` (0 with no traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Whether every query and mutation succeeded.
    pub fn clean(&self) -> bool {
        self.errors == 0 && self.mutation_failures.is_empty()
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:>9.0} qps  p50 {:>9.2?}  p99 {:>9.2?}  hit {:>5.1}%  shed {:>5}  \
             {:>3} deltas  {:>2} reg  fused {:>4}/{:<4}",
            self.scenario,
            self.qps(),
            self.latency.p50,
            self.latency.p99,
            100.0 * self.hit_rate(),
            self.shed_events,
            self.deltas,
            self.registers,
            self.fused_shard_visits,
            self.sequential_shard_visits,
        )
    }
}

/// A whole suite's reports, in run order.
#[derive(Debug, Clone, Default)]
pub struct SuiteReport {
    /// Per-scenario reports.
    pub scenarios: Vec<ScenarioReport>,
}

impl SuiteReport {
    /// The report for a named scenario, if it ran.
    pub fn get(&self, scenario: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|r| r.scenario == scenario)
    }
}

impl fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rows are self-labelling (`… qps`, `p50 …`), so no header.
        for r in &self.scenarios {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

struct QueryOp {
    slot: u32,
    q: NodeId,
    k: u32,
    /// Mutations that must be applied before this query may be
    /// submitted (= mutation ops preceding it in the trace).
    epoch: usize,
}

/// Replays `trace` against `frontend` (queries) and `target`
/// (mutations). Returns the per-scenario report; the run itself never
/// panics on typed rejections — they are counted instead.
pub fn run_trace(
    trace: &Trace,
    target: &mut dyn ScenarioTarget,
    frontend: &Frontend,
    cfg: &DriverConfig,
) -> ScenarioReport {
    let mut queries: Vec<QueryOp> = Vec::with_capacity(trace.ops.len());
    // (queries preceding the mutation, the op) — the gate says how many
    // completed queries the driver waits for before applying it.
    let mut mutations: Vec<(u64, &Op)> = Vec::new();
    for op in &trace.ops {
        match op {
            Op::Query { slot, q, k } => queries.push(QueryOp {
                slot: *slot,
                q: *q,
                k: *k,
                epoch: mutations.len(),
            }),
            other => mutations.push((queries.len() as u64, other)),
        }
    }

    let completed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let applied = AtomicUsize::new(0);
    let workers = cfg.workers.max(1);
    let stats0 = frontend.server().stats();

    let t0 = Instant::now();
    let (histogram, deltas, registers, failures, fused, sequential, match_work) =
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queries = &queries;
                    let (completed, errors, shed, applied) = (&completed, &errors, &shed, &applied);
                    s.spawn(move || {
                        let mut histogram = LatencyHistogram::new();
                        let mut inflight: VecDeque<(Instant, Ticket)> =
                            VecDeque::with_capacity(cfg.outstanding);
                        let resolve =
                            |inflight: &mut VecDeque<(Instant, Ticket)>,
                             histogram: &mut LatencyHistogram| {
                                if let Some((sent, ticket)) = inflight.pop_front() {
                                    if ticket.wait().is_err() {
                                        errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                    histogram.record(sent.elapsed());
                                    completed.fetch_add(1, Ordering::Release);
                                }
                            };
                        for qo in queries.iter().skip(w).step_by(workers) {
                            // A query must not outrun the mutations before it
                            // (its class may not exist yet). While waiting,
                            // drain our in-flight tickets — the mutation gate
                            // may be waiting on exactly those completions.
                            while applied.load(Ordering::Acquire) < qo.epoch {
                                if inflight.is_empty() {
                                    std::thread::yield_now();
                                } else {
                                    resolve(&mut inflight, &mut histogram);
                                }
                            }
                            let sent = Instant::now();
                            let ticket = loop {
                                match frontend.submit(qo.slot as usize, qo.q, qo.k as usize) {
                                    Ok(t) => break Some(t),
                                    Err(FrontendError::Overloaded { .. }) => {
                                        shed.fetch_add(1, Ordering::Relaxed);
                                        resolve(&mut inflight, &mut histogram);
                                        std::thread::yield_now();
                                    }
                                    Err(_) => break None,
                                }
                            };
                            match ticket {
                                Some(t) => {
                                    inflight.push_back((sent, t));
                                    if inflight.len() >= cfg.outstanding {
                                        resolve(&mut inflight, &mut histogram);
                                    }
                                }
                                None => {
                                    // Typed rejection (unknown class, …):
                                    // counts as a completed-with-error query
                                    // so mutation gates keep advancing.
                                    errors.fetch_add(1, Ordering::Relaxed);
                                    completed.fetch_add(1, Ordering::Release);
                                }
                            }
                        }
                        while !inflight.is_empty() {
                            resolve(&mut inflight, &mut histogram);
                        }
                        histogram
                    })
                })
                .collect();

            // The caller's thread is the mutator: apply each delta/register
            // once the queries before it have completed, so churn lands
            // mid-traffic at a reproducible position.
            let mut deltas = 0usize;
            let mut registers = 0usize;
            let mut failures: Vec<String> = Vec::new();
            let mut fused = 0usize;
            let mut sequential = 0usize;
            let mut match_work = MatchWork::default();
            for (gate, op) in &mutations {
                while completed.load(Ordering::Acquire) < *gate {
                    std::thread::yield_now();
                }
                match op {
                    Op::Delta(delta) => match target.apply_delta(delta) {
                        Ok(m) => {
                            deltas += 1;
                            fused += m.fused_shard_visits;
                            sequential += m.sequential_shard_visits;
                            match_work += m.match_work;
                        }
                        Err(e) => failures.push(format!("delta rejected: {e}")),
                    },
                    Op::Register(spec) => match target.register_class(spec) {
                        Ok(_) => registers += 1,
                        Err(e) => failures.push(format!("register {:?} rejected: {e}", spec.name)),
                    },
                    Op::Query { .. } => unreachable!("queries are partitioned out"),
                }
                applied.fetch_add(1, Ordering::Release);
            }

            let mut histogram = LatencyHistogram::new();
            for h in handles {
                histogram.merge(&h.join().expect("scenario worker panicked"));
            }
            (
                histogram, deltas, registers, failures, fused, sequential, match_work,
            )
        });
    let wall = t0.elapsed();
    let stats1 = frontend.server().stats();

    ScenarioReport {
        scenario: trace.scenario.clone(),
        completed: completed.into_inner(),
        errors: errors.into_inner(),
        wall,
        latency: histogram.snapshot(),
        cache_hits: stats1.cache_hits - stats0.cache_hits,
        cache_misses: stats1.cache_misses - stats0.cache_misses,
        shed_events: shed.into_inner(),
        deltas,
        registers,
        mutation_failures: failures,
        fused_shard_visits: fused,
        sequential_shard_visits: sequential,
        match_work,
    }
}

//! Generator determinism: the workload suite is a pure function of
//! (graph, anchor type, config) — same seed ⇒ byte-identical traces,
//! different seed ⇒ different traces — pinned by golden fingerprints so
//! a generator change that silently reshuffles workloads fails loudly.
//! The generator restricts itself to integer RNG draws and IEEE-exact
//! float arithmetic, so these goldens hold across platforms.

use mgp_graph::{Graph, GraphBuilder, NodeId, TypeId};
use mgp_scenario::{fnv64, GeneratorConfig, Scenario, TraceGenerator};

const USER: TypeId = TypeId(0);

/// A fixed bipartite-ish world: 30 users, 8 attributes, deterministic
/// wiring — no RNG involved, so the goldens depend only on the
/// generator itself.
fn world() -> Graph {
    let mut g = GraphBuilder::new();
    let user = g.add_type("user");
    let attr = g.add_type("attr");
    let users: Vec<NodeId> = (0..30).map(|i| g.add_node(user, format!("u{i}"))).collect();
    let attrs: Vec<NodeId> = (0..8).map(|i| g.add_node(attr, format!("a{i}"))).collect();
    for (i, &u) in users.iter().enumerate() {
        g.add_edge(u, attrs[i % attrs.len()]).unwrap();
        g.add_edge(u, attrs[(i * 3 + 1) % attrs.len()]).unwrap();
        if i > 0 {
            g.add_edge(u, users[i - 1]).unwrap();
        }
    }
    g.build()
}

fn config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        seed,
        queries: 300,
        n_classes: 2,
        ..GeneratorConfig::default()
    }
}

#[test]
fn same_seed_is_byte_identical() {
    let g = world();
    let suite_a = TraceGenerator::new(&g, USER, config(42)).generate_suite();
    let suite_b = TraceGenerator::new(&g, USER, config(42)).generate_suite();
    assert_eq!(suite_a.len(), Scenario::ALL.len());
    for (a, b) in suite_a.iter().zip(&suite_b) {
        assert_eq!(
            a.to_bytes().unwrap(),
            b.to_bytes().unwrap(),
            "scenario {} not reproducible",
            a.scenario
        );
    }
}

#[test]
fn different_seed_diverges() {
    let g = world();
    let suite_a = TraceGenerator::new(&g, USER, config(42)).generate_suite();
    let suite_b = TraceGenerator::new(&g, USER, config(43)).generate_suite();
    let diverged = suite_a
        .iter()
        .zip(&suite_b)
        .filter(|(a, b)| a.to_bytes().unwrap() != b.to_bytes().unwrap())
        .count();
    assert_eq!(
        diverged,
        suite_a.len(),
        "every scenario must re-key on the seed"
    );
}

/// Golden snapshot: FNV-1a fingerprints of every trace's canonical
/// encoding at seed 42. Regenerating these is a deliberate act — any
/// change to the generator's draws, the op encoding, or the scenario
/// catalogue shows up here as a diff the reviewer must acknowledge.
#[test]
fn golden_trace_fingerprints() {
    const GOLDEN: [(&str, u64); 6] = [
        ("steady-read", 0x5d4e_f5b8_da5b_0806),
        ("diurnal-churn", 0xed19_1fea_b5e8_9007),
        // Repinned when the storm hub was capped at half the anchor
        // pool (it previously saturated all 30 anchors of this world);
        // the other five streams are independent and unchanged.
        ("deletion-storm", 0x0991_4b7e_099e_d2e1),
        ("cache-buster", 0xa0e8_b62a_ac83_0a28),
        ("tenant-skew", 0xf22d_5d76_c667_4576),
        ("register-mid-traffic", 0x74a5_7723_e8f6_dd28),
    ];
    let g = world();
    let suite = TraceGenerator::new(&g, USER, config(42)).generate_suite();
    for (trace, &(name, want)) in suite.iter().zip(GOLDEN.iter()) {
        assert_eq!(
            trace.scenario, name,
            "scenario order is part of the contract"
        );
        assert_eq!(
            trace.fingerprint().unwrap(),
            want,
            "golden fingerprint diverged for {name} (got {:#x})",
            trace.fingerprint().unwrap()
        );
    }
}

/// The fingerprint is the FNV-1a of the canonical bytes — pin that tie
/// so the two cannot drift apart.
#[test]
fn fingerprint_matches_canonical_bytes() {
    let g = world();
    let suite = TraceGenerator::new(&g, USER, config(7)).generate_suite();
    for trace in &suite {
        assert_eq!(
            trace.fingerprint().unwrap(),
            fnv64(&trace.to_bytes().unwrap())
        );
    }
}

//! The [`SearchEngine`]: offline pipeline plus online query interface.

use crate::timings::Timings;
use mgp_graph::{FxHashMap, Graph, GraphDelta, GraphError, NodeId, TypeId};
use mgp_index::{IndexDeltaBatch, IndexTouch, Transform, VectorIndex};
use mgp_learning::baselines::metapath_indices;
use mgp_learning::{candidate_ranking, train, TrainConfig, TrainingExample};
use mgp_matching::parallel::match_all_timed;
use mgp_matching::{
    wcoj_count_changes, AnchorCounts, CountUnderflow, ExtensionPlan, MatchDelta, MatchStats,
    PatternInfo, SymIso,
};
use mgp_metagraph::Metagraph;
use mgp_mining::{mine, MinerConfig};
use mgp_online::{
    ClassDelta, DeltaStats, Frontend, FrontendConfig, QueryServer, ServeConfig, ServerHandle,
};
use mgp_scenario::{ClassSpec, PatternSelect, WeightSpec};
use std::sync::Arc;
use std::time::Instant;

/// How training budgets metagraph matching.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TrainingStrategy {
    /// Match every mined metagraph up front.
    Full,
    /// Alg. 1: seeds (metapaths) first, then the top `n_candidates` by the
    /// candidate heuristic.
    DualStage {
        /// `|K|` — number of candidate metagraphs to match per class.
        n_candidates: usize,
    },
    /// Multi-stage extension: add candidates in batches of `batch`,
    /// re-ranking with the grown seed set, until the training
    /// log-likelihood improves by less than `min_ll_gain` (relative) or
    /// `max_batches` is hit.
    MultiStage {
        /// Candidates per batch.
        batch: usize,
        /// Maximum number of batches.
        max_batches: usize,
        /// Relative log-likelihood improvement below which to stop.
        min_ll_gain: f64,
    },
}

/// Pipeline configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PipelineConfig {
    /// Miner settings (pattern size, support, anchor constraints).
    pub miner: MinerConfig,
    /// Count transform for the vector index.
    pub transform: Transform,
    /// Trainer hyper-parameters.
    pub train: TrainConfig,
    /// Matching strategy.
    pub strategy: TrainingStrategy,
    /// Matching threads (0 = available parallelism).
    pub threads: usize,
}

impl PipelineConfig {
    /// Sensible defaults for a given anchor type and support threshold.
    pub fn new(anchor_type: TypeId, min_support: u64) -> Self {
        PipelineConfig {
            miner: MinerConfig::paper_defaults(anchor_type, min_support),
            transform: Transform::Log1p,
            train: TrainConfig::default(),
            strategy: TrainingStrategy::Full,
            threads: 0,
        }
    }
}

/// A trained per-class model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ClassModel {
    /// Class name.
    pub name: String,
    /// Global metagraph indices backing the coordinates of `index`/`weights`.
    pub coords: Vec<usize>,
    /// Vector index restricted to `coords`.
    pub index: VectorIndex,
    /// Learned characteristic weights, one per coordinate.
    pub weights: Vec<f64>,
    /// Final training log-likelihood.
    pub log_likelihood: f64,
}

impl ClassModel {
    /// The learned weight of a *global* metagraph index, if selected.
    pub fn weight_of(&self, global_idx: usize) -> Option<f64> {
        self.coords
            .iter()
            .position(|&g| g == global_idx)
            .map(|i| self.weights[i])
    }
}

/// Summary of one [`SearchEngine::ingest`]: what the delta changed and,
/// per trained class, which index entries it touched (the handle a
/// serving layer needs to patch itself).
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Nodes the delta added to the graph.
    pub new_nodes: usize,
    /// Genuinely new edges (deduplicated, previously absent).
    pub new_edges: usize,
    /// Genuinely removed edges (deduplicated, previously present) —
    /// includes edges detached by node removals.
    pub removed_edges: usize,
    /// New pattern instances enumerated across all matched metagraphs.
    pub new_instances: u64,
    /// Doomed pattern instances (destroyed by removals) across all
    /// matched metagraphs.
    pub doomed_instances: u64,
    /// Per trained class: the touched nodes/pairs of its restricted index.
    pub per_class: Vec<(String, IndexTouch)>,
    /// Per served class (filled by [`SearchEngine::ingest_serving`] only):
    /// the serving-table patch work, including per-shard epoch-swap
    /// accounting.
    pub serving: Vec<(String, DeltaStats)>,
    /// Shards the serving layer actually cloned/swapped — **once for all
    /// classes together** via `QueryServer::apply_delta_fused` (filled by
    /// [`SearchEngine::ingest_serving`] only). Compare against the sum of
    /// `swapped_shards` across [`IngestReport::serving`] (what sequential
    /// per-class patching would have paid) to see the fusion saving.
    pub fused_shard_visits: usize,
    /// The wcoj delta matcher's work counters, summed over every pattern
    /// this ingest delta-matched: proposals, intersections, extensions,
    /// instances, and ownership-suppressed candidates — the
    /// propose/intersect win made observable per ingest.
    pub match_stats: MatchStats,
}

impl IngestReport {
    /// The shard visits per-class serving patches would have cost: each
    /// served class's `swapped_shards`, summed — the `classes × shards`
    /// product that [`IngestReport::fused_shard_visits`] collapses.
    pub fn sequential_shard_visits(&self) -> usize {
        self.serving.iter().map(|(_, s)| s.swapped_shards).sum()
    }
}

/// Why [`SearchEngine::ingest`] rejected a delta. Rejection is **atomic**:
/// when `ingest` returns an error, the graph, the count cache, every class
/// model and any live server are exactly as they were before the call —
/// the engine validates the complete delta against every structure it
/// would touch *before* mutating any of them, so a malformed batch can
/// never panic (or half-apply) a long-lived serving process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The graph layer rejected the delta (unknown endpoint, unknown
    /// type, …) before any splicing happened.
    Graph(GraphError),
    /// The delta's signed instance-count changes would drive a cached
    /// count below zero — it was not produced against this engine's
    /// graph. The classic way to get here is [`SearchEngine::import_models`]
    /// with a model trained on a *different* graph, then ingesting
    /// removals the stale model never saw.
    Underflow {
        /// Global index of the metagraph pattern whose counts underflow.
        pattern: usize,
        /// The trained class whose restricted index tripped the check, or
        /// `None` when the shared count cache itself underflows.
        class: Option<String>,
        /// The offending entry and amounts.
        underflow: CountUnderflow,
    },
    /// The attached write-ahead journal (see
    /// `SearchEngine::attach_journal`) failed to append the delta. The
    /// ingest is aborted *before* any in-memory commit, so engine state
    /// is untouched — durability is never silently weaker than promised.
    Journal(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Graph(e) => write!(f, "graph delta rejected: {e}"),
            IngestError::Underflow {
                pattern,
                class,
                underflow,
            } => {
                write!(f, "ingest rejected: pattern {pattern}")?;
                if let Some(class) = class {
                    write!(f, " (class {class:?})")?;
                }
                write!(f, " {underflow}")
            }
            IngestError::Journal(m) => write!(f, "ingest rejected: journal append failed: {m}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Graph(e) => Some(e),
            IngestError::Underflow { .. } => None,
            IngestError::Journal(_) => None,
        }
    }
}

impl From<GraphError> for IngestError {
    fn from(e: GraphError) -> Self {
        IngestError::Graph(e)
    }
}

/// Why [`SearchEngine::register_class`] rejected a
/// [`ClassSpec`]. Rejection is atomic: the
/// engine's pattern set, count cache, model list and any live server
/// are untouched when an error comes back.
#[derive(Debug, Clone, PartialEq)]
pub enum RegisterClassError {
    /// The spec is malformed on its own terms (empty name/selection,
    /// non-finite or miscounted weights).
    Spec(mgp_scenario::SpecError),
    /// A class with this name already exists — a live server cannot
    /// atomically replace a class, so runtime registration never
    /// overwrites (retrain via [`SearchEngine::train_class`] instead).
    DuplicateClass(String),
    /// A `Mined` selection indexes past the mined pattern set.
    UnknownPattern {
        /// The out-of-range index.
        index: usize,
        /// How many patterns the engine has.
        n_mined: usize,
    },
    /// The selection resolved to zero patterns (e.g. `Seeds` on an
    /// engine whose miner produced no metapaths).
    EmptyPattern,
    /// A `Custom` metagraph does not contain the engine's anchor type,
    /// so it can never contribute to anchor proximity.
    NoAnchor {
        /// Position of the offending metagraph in the spec.
        index: usize,
    },
    /// Explicit weight count disagrees with the resolved pattern count.
    WeightMismatch {
        /// Resolved pattern count.
        expected: usize,
        /// Supplied weight count.
        got: usize,
    },
}

impl std::fmt::Display for RegisterClassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterClassError::Spec(e) => write!(f, "invalid class spec: {e}"),
            RegisterClassError::DuplicateClass(name) => {
                write!(f, "class {name:?} is already registered")
            }
            RegisterClassError::UnknownPattern { index, n_mined } => {
                write!(f, "pattern index {index} out of range ({n_mined} mined)")
            }
            RegisterClassError::EmptyPattern => write!(f, "selection resolved to zero patterns"),
            RegisterClassError::NoAnchor { index } => {
                write!(f, "custom metagraph {index} lacks the anchor type")
            }
            RegisterClassError::WeightMismatch { expected, got } => {
                write!(f, "{got} weights for {expected} resolved patterns")
            }
        }
    }
}

impl std::error::Error for RegisterClassError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegisterClassError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

/// The semantic proximity search engine (Fig. 3).
#[derive(Clone)]
pub struct SearchEngine {
    pub(crate) graph: Graph,
    pub(crate) anchor_type: TypeId,
    pub(crate) cfg: PipelineConfig,
    pub(crate) metagraphs: Vec<Metagraph>,
    pub(crate) patterns: Vec<PatternInfo>,
    pub(crate) seed_indices: Vec<usize>,
    pub(crate) counts_cache: FxHashMap<usize, AnchorCounts>,
    /// Compiled wcoj extension plans, keyed like `counts_cache` by global
    /// pattern index. Built lazily on first delta-match of a pattern and
    /// reused for every later ingest (plans depend only on the pattern).
    pub(crate) plan_cache: FxHashMap<usize, ExtensionPlan>,
    pub(crate) models: Vec<ClassModel>,
    pub(crate) timings: Timings,
    /// Write-ahead delta journal (see `crate::persist`): when attached,
    /// every committed [`SearchEngine::ingest`] first appends the delta,
    /// `fsync`ed, so a crash replays it on the next warm start. Shared
    /// (`Arc`) so cloned engines keep appending to the same log.
    pub(crate) journal: Option<Arc<std::sync::Mutex<mgp_persist::Journal>>>,
}

impl SearchEngine {
    /// Runs mining (and, under [`TrainingStrategy::Full`], all matching).
    pub fn build(graph: Graph, cfg: PipelineConfig) -> Self {
        let anchor_type = cfg.miner.anchor_type;
        let t0 = Instant::now();
        let mined = mine(&graph, &cfg.miner);
        let mining = t0.elapsed();
        let metagraphs: Vec<Metagraph> = mined.into_iter().map(|m| m.metagraph).collect();
        let patterns: Vec<PatternInfo> = metagraphs
            .iter()
            .map(|m| PatternInfo::new(m.clone(), anchor_type))
            .collect();
        let seed_indices = metapath_indices(&metagraphs);

        let mut engine = SearchEngine {
            graph,
            anchor_type,
            cfg,
            metagraphs,
            patterns,
            seed_indices,
            counts_cache: FxHashMap::default(),
            plan_cache: FxHashMap::default(),
            models: Vec::new(),
            timings: Timings::default(),
            journal: None,
        };
        engine.timings.mining = mining;
        engine.timings.n_mined = engine.metagraphs.len();

        if matches!(engine.cfg.strategy, TrainingStrategy::Full) {
            let all: Vec<usize> = (0..engine.metagraphs.len()).collect();
            engine.ensure_matched(&all);
        }
        engine
    }

    /// Builds with a caller-supplied metagraph set (skips mining) — used by
    /// experiments that sweep over fixed pattern sets.
    pub fn with_metagraphs(graph: Graph, metagraphs: Vec<Metagraph>, cfg: PipelineConfig) -> Self {
        let anchor_type = cfg.miner.anchor_type;
        let patterns: Vec<PatternInfo> = metagraphs
            .iter()
            .map(|m| PatternInfo::new(m.clone(), anchor_type))
            .collect();
        let seed_indices = metapath_indices(&metagraphs);
        let mut engine = SearchEngine {
            graph,
            anchor_type,
            cfg,
            metagraphs,
            patterns,
            seed_indices,
            counts_cache: FxHashMap::default(),
            plan_cache: FxHashMap::default(),
            models: Vec::new(),
            timings: Timings::default(),
            journal: None,
        };
        engine.timings.n_mined = engine.metagraphs.len();
        if matches!(engine.cfg.strategy, TrainingStrategy::Full) {
            let all: Vec<usize> = (0..engine.metagraphs.len()).collect();
            engine.ensure_matched(&all);
        }
        engine
    }

    /// Matches any not-yet-matched patterns among `indices` (cached).
    fn ensure_matched(&mut self, indices: &[usize]) {
        let todo: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|i| !self.counts_cache.contains_key(i))
            .collect();
        if todo.is_empty() {
            return;
        }
        let pats: Vec<PatternInfo> = todo.iter().map(|&i| self.patterns[i].clone()).collect();
        let matcher = SymIso::new();
        let results = match_all_timed(&self.graph, &pats, &matcher, self.cfg.threads);
        for (&i, (counts, dt)) in todo.iter().zip(results) {
            self.timings.matching += dt;
            self.counts_cache.insert(i, counts);
        }
        self.timings.n_matched = self.counts_cache.len();
    }

    /// Builds a restricted index over the given global metagraph indices.
    fn index_over(&mut self, coords: &[usize]) -> VectorIndex {
        self.ensure_matched(coords);
        let t0 = Instant::now();
        let counts: Vec<AnchorCounts> = coords
            .iter()
            .map(|i| self.counts_cache[i].clone())
            .collect();
        let idx = VectorIndex::from_counts(&counts, self.cfg.transform);
        self.timings.indexing += t0.elapsed();
        idx
    }

    /// Trains a class model from pairwise examples, per the configured
    /// strategy, and stores it under `name` (replacing any previous model).
    pub fn train_class(&mut self, name: &str, examples: &[TrainingExample]) -> &ClassModel {
        let model = match self.cfg.strategy {
            TrainingStrategy::Full => self.train_full(name, examples),
            TrainingStrategy::DualStage { n_candidates } => {
                self.train_dual_stage(name, examples, n_candidates)
            }
            TrainingStrategy::MultiStage {
                batch,
                max_batches,
                min_ll_gain,
            } => self.train_multi_stage(name, examples, batch, max_batches, min_ll_gain),
        };
        self.models.retain(|m| m.name != name);
        self.models.push(model);
        self.models.last().expect("just pushed")
    }

    fn train_full(&mut self, name: &str, examples: &[TrainingExample]) -> ClassModel {
        let coords: Vec<usize> = (0..self.metagraphs.len()).collect();
        let index = self.index_over(&coords);
        let t0 = Instant::now();
        let trained = train(&index, examples, &self.cfg.train);
        self.timings.training += t0.elapsed();
        ClassModel {
            name: name.to_owned(),
            coords,
            index,
            weights: trained.weights,
            log_likelihood: trained.log_likelihood,
        }
    }

    fn train_dual_stage(
        &mut self,
        name: &str,
        examples: &[TrainingExample],
        n_candidates: usize,
    ) -> ClassModel {
        // Seed stage.
        let seeds = self.seed_indices.clone();
        let seed_index = self.index_over(&seeds);
        let t0 = Instant::now();
        let w0 = train(&seed_index, examples, &self.cfg.train);
        self.timings.training += t0.elapsed();

        // Candidate stage.
        let ranked = candidate_ranking(&self.metagraphs, &seeds, &w0.weights);
        let candidates: Vec<usize> = ranked
            .into_iter()
            .take(n_candidates)
            .map(|(j, _)| j)
            .collect();
        let mut coords = seeds;
        coords.extend(candidates);
        let index = self.index_over(&coords);
        let t1 = Instant::now();
        let trained = train(&index, examples, &self.cfg.train);
        self.timings.training += t1.elapsed();
        ClassModel {
            name: name.to_owned(),
            coords,
            index,
            weights: trained.weights,
            log_likelihood: trained.log_likelihood,
        }
    }

    fn train_multi_stage(
        &mut self,
        name: &str,
        examples: &[TrainingExample],
        batch: usize,
        max_batches: usize,
        min_ll_gain: f64,
    ) -> ClassModel {
        let mut coords = self.seed_indices.clone();
        let mut index = self.index_over(&coords);
        let t0 = Instant::now();
        let mut model = train(&index, examples, &self.cfg.train);
        self.timings.training += t0.elapsed();

        for _ in 0..max_batches {
            let ranked = candidate_ranking(&self.metagraphs, &coords, &model.weights);
            let fresh: Vec<usize> = ranked.into_iter().take(batch).map(|(j, _)| j).collect();
            if fresh.is_empty() {
                break;
            }
            coords.extend(fresh);
            index = self.index_over(&coords);
            let t1 = Instant::now();
            let next = train(&index, examples, &self.cfg.train);
            self.timings.training += t1.elapsed();
            let gain = (next.log_likelihood - model.log_likelihood)
                / model.log_likelihood.abs().max(1e-12);
            let stop = gain < min_ll_gain;
            model = next;
            if stop {
                break;
            }
        }
        ClassModel {
            name: name.to_owned(),
            coords,
            index,
            weights: model.weights,
            log_likelihood: model.log_likelihood,
        }
    }

    /// Online search: top-`k` nodes by learned proximity to `q` for a
    /// trained class. Panics if the class has not been trained.
    pub fn search(&self, class: &str, q: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let model = self.model(class).expect("class not trained");
        mgp_learning::mgp::rank_with_scores(&model.index, q, &model.weights, k)
    }

    /// Explains why `v` scores for query `q` under a trained class: the
    /// top-`top` metagraphs by contribution, as `(global metagraph index,
    /// contribution share)`. Empty when the pair shares nothing.
    pub fn explain(&self, class: &str, q: NodeId, v: NodeId, top: usize) -> Vec<(usize, f64)> {
        let model = self.model(class).expect("class not trained");
        mgp_learning::explain(&model.index, q, v, &model.weights, top)
            .into_iter()
            .map(|c| (model.coords[c.metagraph], c.share))
            .collect()
    }

    /// A trained class model by name.
    pub fn model(&self, class: &str) -> Option<&ClassModel> {
        self.models.iter().find(|m| m.name == class)
    }

    /// All mined metagraphs.
    pub fn metagraphs(&self) -> &[Metagraph] {
        &self.metagraphs
    }

    /// Pattern analyses (symmetry, decomposition) per metagraph.
    pub fn patterns(&self) -> &[PatternInfo] {
        &self.patterns
    }

    /// Metapath (seed) indices into [`SearchEngine::metagraphs`].
    pub fn seed_indices(&self) -> &[usize] {
        &self.seed_indices
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The anchor type.
    pub fn anchor_type(&self) -> TypeId {
        self.anchor_type
    }

    /// Accumulated pipeline costs.
    pub fn timings(&self) -> &Timings {
        &self.timings
    }

    /// Instance counts of a matched metagraph (None if not matched yet).
    pub fn counts(&self, global_idx: usize) -> Option<&AnchorCounts> {
        self.counts_cache.get(&global_idx)
    }

    /// Builds a [`QueryServer`] serving every trained class with default
    /// settings — the batched online phase. See [`SearchEngine::serve_with`].
    pub fn serve(&self) -> QueryServer {
        self.serve_with(ServeConfig::default())
    }

    /// Builds a [`QueryServer`] over every trained class model: per-class
    /// score tables are precomputed from the model's restricted index and
    /// learned weights, sharded by anchor node, with batched rayon-parallel
    /// ranking, bounded LRU caching of hot queries, and per-batch latency
    /// histograms (see [`crate::timings::LatencyHistogram`]).
    ///
    /// The server answers identically to [`SearchEngine::search`] (asserted
    /// by tests) but amortises all query-independent work up front, so it
    /// is the entry point for serving real traffic.
    pub fn serve_with(&self, cfg: ServeConfig) -> QueryServer {
        let mut server = QueryServer::new(cfg);
        for m in &self.models {
            server.add_class(&m.name, &m.index, &m.weights);
        }
        server
    }

    /// [`SearchEngine::serve`] wrapped in a [`ServerHandle`]
    /// (`Arc<QueryServer>`): clone the handle into every serving thread
    /// while one writer thread keeps streaming deltas through
    /// [`SearchEngine::ingest_serving`] — ranking and delta application
    /// are both `&self`, so neither side ever waits for the other beyond
    /// a per-shard pointer swap.
    pub fn serve_shared(&self) -> ServerHandle {
        Arc::new(self.serve())
    }

    /// [`SearchEngine::serve_with`] wrapped in a [`ServerHandle`].
    pub fn serve_shared_with(&self, cfg: ServeConfig) -> ServerHandle {
        Arc::new(self.serve_with(cfg))
    }

    /// Builds the async serving front-end over a fresh shared server with
    /// default settings — see [`SearchEngine::serve_frontend_with`].
    pub fn serve_frontend(&self) -> Frontend {
        self.serve_frontend_with(ServeConfig::default(), FrontendConfig::default())
    }

    /// [`SearchEngine::serve_shared_with`] wrapped in a
    /// [`Frontend`]: a pool of batcher threads that
    /// accumulate concurrent `(class, query, k)` requests into
    /// micro-batches under a latency budget, coalesce duplicates into one
    /// ranking execution, and shed load with a typed rejection when the
    /// bounded queue fills (tightening under retained-epoch memory
    /// pressure). Callers submit from any thread and block on a
    /// [`Ticket`](mgp_online::Ticket); the underlying [`ServerHandle`] is
    /// reachable via `Frontend::server` for [`SearchEngine::ingest_serving`]
    /// so churn keeps landing while the front-end serves.
    pub fn serve_frontend_with(&self, cfg: ServeConfig, fcfg: FrontendConfig) -> Frontend {
        Frontend::new(self.serve_shared_with(cfg), fcfg)
    }

    /// Ingests a graph churn delta — insertions *and* removals, mixed in
    /// one batch — through the whole offline chain without any
    /// from-scratch work: the CSR is spliced in place of a rebuild, every
    /// already-matched metagraph is *delta-matched* symmetrically (new
    /// instances are enumerated by seeding each inserted edge against the
    /// updated graph, doomed instances by seeding each removed edge
    /// against the *pre*-delete graph — the same seeded backtracking
    /// entry point both ways), the signed changes land in the count
    /// cache **and in one shared `mgp_index::IndexDeltaBatch`**, from
    /// which every trained class model's restricted index is patched
    /// (dropping entries that churn emptied) — the class dimension
    /// multiplies only the cheap coordinate fan-out, never the
    /// delta-matching.
    ///
    /// Model weights are deliberately left untouched — a delta updates
    /// what the graph *contains*, retraining remains an explicit
    /// [`SearchEngine::train_class`] call. After `ingest`, search results
    /// are bit-identical to a full rematch + reindex of the updated graph
    /// with the same weights (asserted by the incremental-equivalence
    /// property test and the churn soak test).
    ///
    /// Live servers built via [`SearchEngine::serve`] are patched with
    /// [`SearchEngine::ingest_serving`].
    ///
    /// # Atomicity
    ///
    /// The call either applies the delta completely or rejects it with a
    /// typed [`IngestError`] **before any state is touched**: the signed
    /// changes are computed for every matched pattern first, validated
    /// against the count cache and every class model's restricted index
    /// (a stale imported model whose counts the delta would drive
    /// negative fails here — see [`IngestError::Underflow`]), and only
    /// then committed. A rejected ingest leaves graph, counts, models and
    /// any live server bit-identical to before the call.
    pub fn ingest(&mut self, delta: &GraphDelta) -> Result<IngestReport, IngestError> {
        let t0 = Instant::now();
        let ext = self.graph.apply_delta(delta)?;
        let mut report = IngestReport {
            new_nodes: ext.new_nodes.len(),
            new_edges: ext.new_edges.len(),
            removed_edges: ext.removed_edges.len(),
            ..Default::default()
        };
        if ext.new_edges.is_empty() && ext.new_nodes.is_empty() && ext.removed_edges.is_empty() {
            self.graph = ext.graph;
            return Ok(report);
        }

        // Phase 1 — compute. Delta-match every pattern that has been
        // matched so far — **exactly once per ingest**, never once per
        // class: a pattern's instance delta is class-independent, so the
        // signed changes land in one shared `IndexDeltaBatch` and fan out
        // below. The cached counts stay equal to a full match on the
        // updated graph. Doomed instances are enumerated against
        // `self.graph` (still the pre-delta graph — the removed edges
        // exist only there), new instances against the updated
        // `ext.graph`. Nothing is mutated yet.
        let mut matched: Vec<usize> = self.counts_cache.keys().copied().collect();
        matched.sort_unstable();
        let mut pending: Vec<(usize, MatchDelta)> = Vec::new();
        for i in matched {
            let (patterns, graph) = (&self.patterns, &self.graph);
            let plan = self
                .plan_cache
                .entry(i)
                .or_insert_with(|| ExtensionPlan::compile(&patterns[i], graph));
            let (m, stats) = wcoj_count_changes(
                &self.graph,
                &ext.graph,
                &self.patterns[i],
                plan,
                &ext.removed_edges,
                &ext.new_edges,
                &ext.new_nodes,
            );
            report.match_stats += stats;
            if !m.is_empty() {
                pending.push((i, m));
            }
        }
        self.timings.matching += t0.elapsed();

        // Phase 2 — validate. Probe the count cache and every trained
        // model's restricted index for underflow without mutating either;
        // the first offender aborts the whole ingest.
        for (i, m) in &pending {
            let counts = self.counts_cache.get(i).expect("key from cache");
            m.changes
                .check_against(counts)
                .map_err(|underflow| IngestError::Underflow {
                    pattern: *i,
                    class: None,
                    underflow,
                })?;
        }
        let mut batch = IndexDeltaBatch::default();
        for (i, m) in &mut pending {
            batch.insert(*i, std::mem::take(&mut m.changes));
        }
        for model in &self.models {
            batch
                .check_against(&model.index, &model.coords)
                .map_err(|e| IngestError::Underflow {
                    pattern: model.coords[e.coordinate as usize],
                    class: Some(model.name.clone()),
                    underflow: e.underflow,
                })?;
        }

        // Phase 2½ — write-ahead. With a journal attached the validated
        // delta is appended and `fsync`ed *before* the in-memory commit:
        // if the append fails the ingest aborts untouched, and once the
        // commit below starts the delta is already durable — a crash at
        // any instant either replays it or never knew it.
        if let Some(journal) = &self.journal {
            journal
                .lock()
                .expect("journal lock")
                .append(delta)
                .map_err(|e| IngestError::Journal(e.to_string()))?;
        }

        // Phase 3 — commit. Everything below is infallible: counts are
        // patched, the spliced graph is swapped in, and the shared
        // per-pattern changes fan out to each trained model's restricted
        // index — the changes are borrowed from the batch, so class count
        // multiplies only the coordinate projection, not the matching
        // work or any cloning.
        for (i, m) in &pending {
            report.doomed_instances += m.doomed_instances;
            report.new_instances += m.new_instances;
            if let Some(changes) = batch.get(*i) {
                changes.apply_to(self.counts_cache.get_mut(i).expect("key from cache"));
            }
        }
        self.graph = ext.graph;

        let t1 = Instant::now();
        for m in &mut self.models {
            let touch = batch.apply_to(&mut m.index, &m.coords);
            report.per_class.push((m.name.clone(), touch));
        }
        self.timings.indexing += t1.elapsed();
        Ok(report)
    }

    /// [`SearchEngine::ingest`], then patches a live [`QueryServer`]'s
    /// registered classes via `QueryServer::apply_delta_fused` — the full
    /// graph-delta → instance-delta → index-delta → posting-patch chain
    /// in one call, with **every served class landing in one pass**: the
    /// fused patch plans all classes' posting ops first and then visits
    /// each affected shard once (one copy-on-write clone, one replay, one
    /// pointer swap) instead of once per class. Classes the server does
    /// not serve are skipped.
    ///
    /// The server is taken by `&self` reference: patches land shard by
    /// shard through epoch swaps, so concurrent `rank`/`rank_batch`/
    /// `rank_multi` callers (other threads holding a [`ServerHandle`]
    /// clone) keep serving throughout, each query observing a consistent
    /// pre- or post-delta shard — and, because all classes share the
    /// swap, a multi-class query sees the delta atomically across
    /// classes. The per-class patch work lands in
    /// [`IngestReport::serving`]; the fused shard-visit count (vs the
    /// per-class sum) in [`IngestReport::fused_shard_visits`].
    pub fn ingest_serving(
        &mut self,
        delta: &GraphDelta,
        server: &QueryServer,
    ) -> Result<IngestReport, IngestError> {
        let mut report = self.ingest(delta)?;
        let mut served: Vec<String> = Vec::new();
        let mut updates: Vec<ClassDelta<'_>> = Vec::new();
        for (name, touch) in &report.per_class {
            if let Some(cid) = server.class_id(name) {
                let model = self.model(name).expect("class was just patched");
                updates.push(ClassDelta {
                    class_id: cid,
                    index: &model.index,
                    touch,
                });
                served.push(name.clone());
            }
        }
        if !updates.is_empty() {
            let fused = server.apply_delta_fused(&updates);
            report.fused_shard_visits = fused.fused_shard_visits;
            for (name, stats) in served.into_iter().zip(fused.per_class) {
                report.serving.push((name, stats));
            }
        }
        Ok(report)
    }

    /// Registers a new relevance class from a runtime
    /// [`ClassSpec`] — no training pass, no
    /// rebuild: the selected patterns' instance counts come from the
    /// engine's cache (custom metagraphs are appended to the pattern
    /// set and matched on the spot), the restricted index is built with
    /// the spec's transform, and the spec's weights are used as-is.
    /// From then on the class is indistinguishable from a build-time
    /// class: [`SearchEngine::ingest`] fans every delta to it, and
    /// [`SearchEngine::serve`] includes it.
    ///
    /// Unlike [`SearchEngine::train_class`], registration never
    /// replaces an existing class ([`RegisterClassError::DuplicateClass`]):
    /// a live server grown by [`SearchEngine::register_class_serving`]
    /// can only ever *append* classes, and the offline path keeps the
    /// same contract. Rejection is atomic — on `Err` the engine is
    /// bit-identical to before the call.
    pub fn register_class(&mut self, spec: &ClassSpec) -> Result<&ClassModel, RegisterClassError> {
        spec.validate().map_err(RegisterClassError::Spec)?;
        if self.models.iter().any(|m| m.name == spec.name) {
            return Err(RegisterClassError::DuplicateClass(spec.name.clone()));
        }
        // Resolve the selection without mutating anything: custom
        // metagraphs are only *staged* here so a later weight-count
        // error cannot leave them appended.
        let mut staged: Vec<Metagraph> = Vec::new();
        let coords: Vec<usize> = match &spec.patterns {
            PatternSelect::All => (0..self.metagraphs.len()).collect(),
            PatternSelect::Seeds => self.seed_indices.clone(),
            PatternSelect::Mined(indices) => {
                if let Some(&index) = indices.iter().find(|&&i| i >= self.metagraphs.len()) {
                    return Err(RegisterClassError::UnknownPattern {
                        index,
                        n_mined: self.metagraphs.len(),
                    });
                }
                indices.clone()
            }
            PatternSelect::Custom(mgs) => {
                if let Some(index) =
                    (0..mgs.len()).find(|&i| mgs[i].count_type(self.anchor_type) == 0)
                {
                    return Err(RegisterClassError::NoAnchor { index });
                }
                staged = mgs.clone();
                (self.metagraphs.len()..self.metagraphs.len() + mgs.len()).collect()
            }
        };
        if coords.is_empty() {
            return Err(RegisterClassError::EmptyPattern);
        }
        let weights: Vec<f64> = match &spec.weights {
            WeightSpec::Uniform => vec![1.0; coords.len()],
            WeightSpec::Explicit(w) => {
                if w.len() != coords.len() {
                    return Err(RegisterClassError::WeightMismatch {
                        expected: coords.len(),
                        got: w.len(),
                    });
                }
                w.clone()
            }
        };
        // Commit: append staged custom patterns, match anything not yet
        // matched (cached — a re-registration of the same patterns is
        // free), and build the class's restricted index with the spec's
        // own transform.
        for mg in staged {
            self.patterns
                .push(PatternInfo::new(mg.clone(), self.anchor_type));
            self.metagraphs.push(mg);
        }
        self.ensure_matched(&coords);
        let t0 = Instant::now();
        let counts: Vec<AnchorCounts> = coords
            .iter()
            .map(|i| self.counts_cache[i].clone())
            .collect();
        let index = VectorIndex::from_counts(&counts, spec.transform);
        self.timings.indexing += t0.elapsed();
        self.models.push(ClassModel {
            name: spec.name.clone(),
            coords,
            index,
            weights,
            log_likelihood: 0.0,
        });
        Ok(self.models.last().expect("model was just pushed"))
    }

    /// [`SearchEngine::register_class`], then grows the live `server`
    /// by the same class via `QueryServer::register_class`: the new
    /// class's score columns are merged into every shard through the
    /// same copy-on-write epoch swaps a delta uses, and the class table
    /// is swapped last — concurrent readers keep serving throughout and
    /// can never observe a half-registered class. Returns the server's
    /// class id; the first query served is bit-identical to a
    /// from-scratch build that had the class all along (pinned by the
    /// `runtime_class_equivalence` proptest). Subsequent
    /// [`SearchEngine::ingest_serving`] calls fan deltas to the class
    /// like any other.
    pub fn register_class_serving(
        &mut self,
        spec: &ClassSpec,
        server: &QueryServer,
    ) -> Result<usize, RegisterClassError> {
        // Pre-check the server so the engine-side registration cannot
        // succeed and then leave the pair out of sync on a name the
        // server already serves (e.g. restored from a snapshot).
        if server.class_id(&spec.name).is_some() {
            return Err(RegisterClassError::DuplicateClass(spec.name.clone()));
        }
        let model = self.register_class(spec)?;
        server
            .register_class(&model.name, &model.index, &model.weights)
            .map_err(|e| match e {
                mgp_online::RegisterError::DuplicateName(name) => {
                    RegisterClassError::DuplicateClass(name)
                }
            })
    }

    /// Serialises all trained class models to JSON. Together with the
    /// mined metagraph set these fully determine online behaviour — the
    /// offline phase need not be repeated to serve queries elsewhere.
    pub fn export_models(&self) -> String {
        serde_json::to_string(&self.models).expect("models serialise")
    }

    /// Restores class models previously produced by
    /// [`SearchEngine::export_models`], replacing same-named models.
    pub fn import_models(&mut self, json: &str) -> Result<usize, serde_json::Error> {
        let models: Vec<ClassModel> = serde_json::from_str(json)?;
        let n = models.len();
        for m in models {
            self.models.retain(|existing| existing.name != m.name);
            self.models.push(m);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
    use mgp_datagen::{ClassId, Dataset};
    use mgp_learning::sample_examples;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dataset() -> Dataset {
        generate_facebook(&FacebookConfig::tiny(42))
    }

    fn examples_for(d: &Dataset, class: ClassId, n: usize, seed: u64) -> Vec<TrainingExample> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let queries = d.labels.queries_of_class(class);
        let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
        sample_examples(
            &queries,
            |q| d.labels.positives_of(q, class),
            |q, v| d.labels.has(q, v, class),
            &anchors,
            n,
            &mut rng,
        )
    }

    fn cfg(d: &Dataset, strategy: TrainingStrategy) -> PipelineConfig {
        let mut c = PipelineConfig::new(d.anchor_type, 5);
        c.train = TrainConfig::fast(1);
        c.strategy = strategy;
        c.threads = 2;
        c
    }

    #[test]
    fn full_pipeline_learns_both_classes() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        assert!(
            engine.metagraphs().len() > 3,
            "mined {} patterns",
            engine.metagraphs().len()
        );
        assert!(!engine.seed_indices().is_empty());

        for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
            let ex = examples_for(&d, class, 200, 9);
            assert!(ex.len() >= 100);
            engine.train_class(name, &ex);
        }

        // Search for family members of a known family query.
        let fam_queries = d.labels.queries_of_class(FAMILY);
        let mut hits = 0;
        let mut total = 0;
        for &q in fam_queries.iter().take(20) {
            let results = engine.search("family", q, 5);
            let positives = d.labels.positives_of(q, FAMILY);
            if results.iter().any(|(v, _)| positives.contains(v)) {
                hits += 1;
            }
            total += 1;
        }
        assert!(
            hits * 2 > total,
            "family search hit rate too low: {hits}/{total}"
        );
    }

    #[test]
    fn dual_stage_matches_fewer_patterns() {
        let d = dataset();
        let ex = examples_for(&d, FAMILY, 150, 3);

        let mut full = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        full.train_class("family", &ex);
        let n_full = full.timings().n_matched;

        let mut dual = SearchEngine::build(
            d.graph.clone(),
            cfg(&d, TrainingStrategy::DualStage { n_candidates: 3 }),
        );
        dual.train_class("family", &ex);
        let n_dual = dual.timings().n_matched;

        assert!(n_dual < n_full, "dual {n_dual} vs full {n_full}");
        assert_eq!(n_full, full.metagraphs().len());
        // Dual-stage matched exactly seeds + candidates.
        assert_eq!(
            n_dual,
            dual.seed_indices().len() + 3.min(full.metagraphs().len() - dual.seed_indices().len())
        );
        let model = dual.model("family").unwrap();
        assert_eq!(model.weights.len(), model.coords.len());
    }

    #[test]
    fn multi_stage_grows_in_batches() {
        let d = dataset();
        let ex = examples_for(&d, CLASSMATE, 150, 4);
        let mut ms = SearchEngine::build(
            d.graph.clone(),
            cfg(
                &d,
                TrainingStrategy::MultiStage {
                    batch: 2,
                    max_batches: 3,
                    min_ll_gain: -1.0, // always continue to max_batches
                },
            ),
        );
        let n_seeds = ms.seed_indices().len();
        ms.train_class("classmate", &ex);
        let model = ms.model("classmate").unwrap();
        assert!(model.coords.len() > n_seeds);
        assert!(model.coords.len() <= n_seeds + 6);
    }

    #[test]
    fn retraining_replaces_model() {
        let d = dataset();
        let ex = examples_for(&d, FAMILY, 80, 5);
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        engine.train_class("family", &ex);
        let ll1 = engine.model("family").unwrap().log_likelihood;
        engine.train_class("family", &ex);
        let ll2 = engine.model("family").unwrap().log_likelihood;
        assert_eq!(ll1, ll2);
        assert_eq!(engine.models.len(), 1);
    }

    #[test]
    fn model_export_import_roundtrip() {
        let d = dataset();
        let ex = examples_for(&d, FAMILY, 120, 21);
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        engine.train_class("family", &ex);
        let q = d.labels.queries_of_class(FAMILY)[0];
        let before = engine.search("family", q, 5);
        let json = engine.export_models();

        // A fresh engine over the same graph, restored from JSON, answers
        // identically without retraining.
        let mut fresh = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        assert_eq!(fresh.import_models(&json).unwrap(), 1);
        let after = fresh.search("family", q, 5);
        assert_eq!(before, after);
        assert!(fresh.import_models("not json").is_err());
    }

    #[test]
    fn explanations_point_at_real_metagraphs() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        let ex = examples_for(&d, FAMILY, 150, 8);
        engine.train_class("family", &ex);
        let q = d.labels.queries_of_class(FAMILY)[0];
        let results = engine.search("family", q, 3);
        assert!(!results.is_empty());
        let (v, score) = results[0];
        if score > 0.0 {
            let expl = engine.explain("family", q, v, 3);
            assert!(!expl.is_empty());
            let total: f64 = engine
                .explain("family", q, v, 0)
                .iter()
                .map(|&(_, s)| s)
                .sum();
            assert!((total - 1.0).abs() < 1e-9);
            for (gi, share) in expl {
                assert!(gi < engine.metagraphs().len());
                assert!(share > 0.0 && share <= 1.0);
            }
        }
    }

    #[test]
    fn serving_matches_search_exactly() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
            let ex = examples_for(&d, class, 150, 11);
            engine.train_class(name, &ex);
        }
        let server = engine.serve();
        assert_eq!(server.class_names(), vec!["family", "classmate"]);

        let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
        for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
            let cid = server.class_id(name).unwrap();
            let queries: Vec<NodeId> = d
                .labels
                .queries_of_class(class)
                .iter()
                .chain(anchors.iter().take(10))
                .copied()
                .collect();
            // Batched answers equal the engine's per-query search.
            let batch = server.rank_batch(cid, &queries, 10);
            for (&q, got) in queries.iter().zip(&batch) {
                assert_eq!(**got, engine.search(name, q, 10), "class {name} q {q}");
            }
        }
        let stats = server.stats();
        assert!(stats.cache_misses > 0);
        assert_eq!(stats.latency.count, 2, "one histogram entry per batch");
    }

    #[test]
    fn serving_cache_serves_repeats() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        let ex = examples_for(&d, FAMILY, 100, 13);
        engine.train_class("family", &ex);
        let server = engine.serve_with(mgp_online::ServeConfig {
            cache_capacity: 64,
            ..Default::default()
        });
        let cid = server.class_id("family").unwrap();
        let queries = d.labels.queries_of_class(FAMILY);
        let q = queries[0];
        let first = server.rank(cid, q, 5);
        let second = server.rank(cid, q, 5);
        assert_eq!(*first, *second);
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn ingest_serving_matches_full_rebuild() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        let ex = examples_for(&d, FAMILY, 150, 17);
        engine.train_class("family", &ex);
        let server = engine.serve();
        let cid = server.class_id("family").unwrap();
        let model = engine.model("family").unwrap();
        let (coords, weights) = (model.coords.clone(), model.weights.clone());

        // A delta: one new user wired into existing attribute nodes, plus
        // new edges among existing nodes (one may duplicate an existing
        // edge — deduplication is part of the contract).
        let g = engine.graph().clone();
        let anchors: Vec<NodeId> = g.nodes_of_type(d.anchor_type).to_vec();
        let attrs: Vec<NodeId> = g
            .nodes()
            .filter(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 0)
            .take(2)
            .collect();
        let mut delta = GraphDelta::for_graph(&g);
        let nu = delta.add_node(d.anchor_type, "new-user");
        delta.add_edge(nu, attrs[0]).unwrap();
        delta.add_edge(nu, attrs[1]).unwrap();
        delta.add_edge(anchors[0], attrs[1]).unwrap();
        delta.add_edge(anchors[1], attrs[0]).unwrap();
        let report = engine.ingest_serving(&delta, &server).unwrap();
        assert_eq!(report.new_nodes, 1);
        assert!(report.new_edges >= 2);
        assert_eq!(report.per_class.len(), 1);

        // Reference: full rematch of the same metagraph set on the
        // updated graph, same weights.
        let fresh = SearchEngine::with_metagraphs(
            engine.graph().clone(),
            engine.metagraphs().to_vec(),
            cfg(&d, TrainingStrategy::Full),
        );
        let counts: Vec<AnchorCounts> = coords
            .iter()
            .map(|&i| fresh.counts(i).unwrap().clone())
            .collect();
        let fresh_idx = VectorIndex::from_counts(&counts, engine.cfg.transform);
        for &q in anchors.iter().take(40).chain([nu].iter()) {
            let want = mgp_learning::mgp::rank_with_scores(&fresh_idx, q, &weights, 10);
            assert_eq!(engine.search("family", q, 10), want, "engine q={q}");
            assert_eq!(*server.rank(cid, q, 10), want, "server q={q}");
        }
    }

    #[test]
    fn churn_ingest_serving_matches_full_rebuild() {
        // Mixed insert + delete batch, then a node detach — the full
        // deletion path through graph → matching → index → serving.
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        let ex = examples_for(&d, FAMILY, 150, 23);
        engine.train_class("family", &ex);
        let server = engine.serve();
        let cid = server.class_id("family").unwrap();
        let model = engine.model("family").unwrap();
        let (coords, weights) = (model.coords.clone(), model.weights.clone());

        let g = engine.graph().clone();
        let anchors: Vec<NodeId> = g.nodes_of_type(d.anchor_type).to_vec();
        // A user with attribute edges to detach, an existing edge to
        // remove, and a new edge to insert — all in one delta. The insert
        // endpoint must differ from the detached user, or net semantics
        // would let it keep that edge (and regain instances).
        let busy = *anchors.iter().max_by_key(|&&u| g.degree(u)).unwrap();
        let other = *anchors.iter().find(|&&u| u != busy).unwrap();
        let (va, vb) = g.edges().find(|&(a, b)| a != busy && b != busy).unwrap();
        let attr = g
            .nodes()
            .find(|&v| g.node_type(v) != d.anchor_type && !g.has_edge(other, v))
            .unwrap();
        let mut delta = GraphDelta::for_graph(&g);
        delta.remove_node(busy).unwrap();
        delta.remove_edge(va, vb).unwrap();
        delta.add_edge(other, attr).unwrap();
        let report = engine.ingest_serving(&delta, &server).unwrap();
        assert!(report.removed_edges >= 1);
        assert!(report.doomed_instances > 0, "busy user must doom instances");

        // Reference: full rematch of the same metagraph set on the
        // churned graph, same weights.
        let fresh = SearchEngine::with_metagraphs(
            engine.graph().clone(),
            engine.metagraphs().to_vec(),
            cfg(&d, TrainingStrategy::Full),
        );
        let counts: Vec<AnchorCounts> = coords
            .iter()
            .map(|&i| fresh.counts(i).unwrap().clone())
            .collect();
        let fresh_idx = VectorIndex::from_counts(&counts, engine.cfg.transform);
        for &q in anchors.iter().take(40).chain([busy].iter()) {
            let want = mgp_learning::mgp::rank_with_scores(&fresh_idx, q, &weights, 10);
            assert_eq!(engine.search("family", q, 10), want, "engine q={q}");
            assert_eq!(*server.rank(cid, q, 10), want, "server q={q}");
        }
        // The detached user fell out of the count caches entirely.
        for &i in &coords {
            assert!(!engine.counts(i).unwrap().per_node.contains_key(&busy.0));
        }
    }

    /// Runtime class registration: specs compile atomically against a
    /// live engine (typed rejections stage nothing), a custom metagraph
    /// matched on the spot answers identically to the same mined
    /// pattern, and a class grown onto a live server serves
    /// bit-identically to the engine — before and after a later delta.
    #[test]
    fn register_class_compiles_specs_atomically() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        let n_mined = engine.metagraphs().len();
        let seeds = engine.seed_indices().to_vec();

        // Seeds selection: coords are exactly the seed set, uniform
        // weights, no training pass.
        let model = engine
            .register_class(&ClassSpec::new("seed-class", PatternSelect::Seeds))
            .unwrap();
        assert_eq!(model.coords, seeds);
        assert!(model.weights.iter().all(|&w| w == 1.0));

        // Typed rejections — and each leaves the engine untouched.
        assert!(matches!(
            engine.register_class(&ClassSpec::new("seed-class", PatternSelect::All)),
            Err(RegisterClassError::DuplicateClass(name)) if name == "seed-class"
        ));
        assert!(matches!(
            engine.register_class(&ClassSpec::new("", PatternSelect::All)),
            Err(RegisterClassError::Spec(_))
        ));
        assert!(matches!(
            engine.register_class(&ClassSpec::new("bad", PatternSelect::Mined(vec![0, 999]))),
            Err(RegisterClassError::UnknownPattern { index: 999, .. })
        ));
        assert!(matches!(
            engine
                .register_class(&ClassSpec::new("bad", PatternSelect::All).with_weights(vec![1.0])),
            Err(RegisterClassError::WeightMismatch { got: 1, .. })
        ));
        let other_t = d
            .graph
            .nodes()
            .map(|v| d.graph.node_type(v))
            .find(|&t| t != d.anchor_type)
            .unwrap();
        let anchorless = Metagraph::from_edges(&[other_t, other_t], &[(0, 1)]).unwrap();
        assert!(matches!(
            engine.register_class(&ClassSpec::new(
                "bad",
                PatternSelect::Custom(vec![anchorless])
            )),
            Err(RegisterClassError::NoAnchor { index: 0 })
        ));
        assert_eq!(
            engine.metagraphs().len(),
            n_mined,
            "failures staged nothing"
        );
        assert_eq!(engine.models.len(), 1);

        // A custom metagraph identical to mined pattern 0 is appended,
        // matched on the spot, and answers exactly like the mined one.
        let mg0 = engine.metagraphs()[0].clone();
        engine
            .register_class(&ClassSpec::new(
                "custom-0",
                PatternSelect::Custom(vec![mg0]),
            ))
            .unwrap();
        assert_eq!(engine.metagraphs().len(), n_mined + 1);
        engine
            .register_class(&ClassSpec::new("mined-0", PatternSelect::Mined(vec![0])))
            .unwrap();
        let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
        for &q in anchors.iter().take(30) {
            assert_eq!(
                engine.search("custom-0", q, 10),
                engine.search("mined-0", q, 10),
                "q={q}"
            );
        }

        // Growing a live server: the runtime class serves bit-identically
        // to the engine, the duplicate pre-check guards the pair, and a
        // subsequent ingest fans the delta to it like a build-time class.
        let server = engine.serve();
        let cid = engine
            .register_class_serving(&ClassSpec::new("served-rt", PatternSelect::Seeds), &server)
            .unwrap();
        assert_eq!(server.class_id("served-rt"), Some(cid));
        assert!(matches!(
            engine
                .register_class_serving(&ClassSpec::new("served-rt", PatternSelect::All), &server),
            Err(RegisterClassError::DuplicateClass(_))
        ));
        for &q in anchors.iter().take(30) {
            assert_eq!(*server.rank(cid, q, 10), engine.search("served-rt", q, 10));
        }
        let g = engine.graph().clone();
        let attr = g
            .nodes()
            .find(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 1)
            .unwrap();
        let fresh_user = *anchors.iter().find(|&&u| !g.has_edge(u, attr)).unwrap();
        let mut delta = GraphDelta::for_graph(&g);
        delta.add_edge(fresh_user, attr).unwrap();
        let report = engine.ingest_serving(&delta, &server).unwrap();
        assert!(report.per_class.iter().any(|(n, _)| n == "served-rt"));
        assert!(report.serving.iter().any(|(n, _)| n == "served-rt"));
        for &q in anchors.iter().take(30) {
            assert_eq!(
                *server.rank(cid, q, 10),
                engine.search("served-rt", q, 10),
                "post-delta q={q}"
            );
        }
    }

    /// Tentpole: one ingest fans out to every served class through one
    /// matching pass and one fused serving patch — and the fused path's
    /// answers (single- and multi-class alike) match per-class rebuilds.
    #[test]
    fn fused_multiclass_ingest_patches_all_classes_in_one_pass() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
            let ex = examples_for(&d, class, 150, 19);
            engine.train_class(name, &ex);
        }
        let server = engine.serve();
        let cids: Vec<usize> = ["family", "classmate"]
            .iter()
            .map(|n| server.class_id(n).unwrap())
            .collect();

        let g = engine.graph().clone();
        let anchors: Vec<NodeId> = g.nodes_of_type(d.anchor_type).to_vec();
        let attr = g
            .nodes()
            .find(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 1)
            .unwrap();
        let fresh_user = *anchors.iter().find(|&&u| !g.has_edge(u, attr)).unwrap();
        let mut delta = GraphDelta::for_graph(&g);
        delta.add_edge(fresh_user, attr).unwrap();
        let report = engine.ingest_serving(&delta, &server).unwrap();

        // Both classes were patched, through one fused pass: the shard
        // visits paid are at most (and typically well under) the
        // per-class sum, and at least each class's own touch set.
        assert_eq!(report.serving.len(), 2);
        assert!(report.fused_shard_visits > 0);
        let sequential = report.sequential_shard_visits();
        assert!(
            report.fused_shard_visits <= sequential,
            "fused {} vs sequential {sequential}",
            report.fused_shard_visits
        );
        for (_, stats) in &report.serving {
            assert!(report.fused_shard_visits >= stats.swapped_shards);
        }

        // Fused answers equal per-class reference rebuilds, via both the
        // single-class and the multi-class query paths.
        let fresh = SearchEngine::with_metagraphs(
            engine.graph().clone(),
            engine.metagraphs().to_vec(),
            cfg(&d, TrainingStrategy::Full),
        );
        for (name, &cid) in ["family", "classmate"].iter().zip(&cids) {
            let model = engine.model(name).unwrap();
            let counts: Vec<AnchorCounts> = model
                .coords
                .iter()
                .map(|&i| fresh.counts(i).unwrap().clone())
                .collect();
            let fresh_idx = VectorIndex::from_counts(&counts, engine.cfg.transform);
            for &q in anchors.iter().take(25) {
                let want = mgp_learning::mgp::rank_with_scores(&fresh_idx, q, &model.weights, 10);
                assert_eq!(*server.rank(cid, q, 10), want, "{name} q={q}");
                let multi = server.rank_multi(&cids, q, 10);
                let j = cids.iter().position(|c| c == &cid).unwrap();
                assert_eq!(*multi[j], want, "rank_multi {name} q={q}");
            }
        }
    }

    #[test]
    fn empty_ingest_is_a_noop() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        let delta = GraphDelta::for_graph(engine.graph());
        let report = engine.ingest(&delta).unwrap();
        assert_eq!(report.new_nodes, 0);
        assert_eq!(report.new_edges, 0);
        assert_eq!(report.new_instances, 0);
        assert!(report.per_class.is_empty());
    }

    #[test]
    fn ingest_before_training_updates_counts_only() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        let n0: u64 = (0..engine.metagraphs().len())
            .map(|i| engine.counts(i).unwrap().n_instances)
            .sum();
        let g = engine.graph().clone();
        let anchors: Vec<NodeId> = g.nodes_of_type(d.anchor_type).to_vec();
        let attr = g
            .nodes()
            .find(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 1)
            .unwrap();
        let mut delta = GraphDelta::for_graph(&g);
        let fresh_user = anchors.iter().find(|&&u| !g.has_edge(u, attr)).unwrap();
        delta.add_edge(*fresh_user, attr).unwrap();
        let report = engine.ingest(&delta).unwrap();
        assert_eq!(report.new_edges, 1);
        assert!(report.per_class.is_empty(), "no trained classes yet");
        let n1: u64 = (0..engine.metagraphs().len())
            .map(|i| engine.counts(i).unwrap().n_instances)
            .sum();
        assert!(n1 >= n0);
        assert_eq!(report.new_instances, n1 - n0);
    }

    #[test]
    fn timings_populated() {
        let d = dataset();
        let mut engine = SearchEngine::build(d.graph.clone(), cfg(&d, TrainingStrategy::Full));
        let ex = examples_for(&d, FAMILY, 50, 6);
        engine.train_class("family", &ex);
        let t = engine.timings();
        assert!(t.n_mined > 0);
        assert_eq!(t.n_matched, t.n_mined);
        assert!(t.matching > std::time::Duration::ZERO);
        assert!(t.training > std::time::Duration::ZERO);
    }
}

//! Snapshot + journal orchestration for [`SearchEngine`]: what the
//! durable artifacts *contain* (the format layer itself lives in
//! [`mgp_persist`]).
//!
//! A snapshot holds everything the online phase needs, laid out as typed
//! columns the loader views **directly over the mmap** — no per-entry
//! parsing on warm start:
//!
//! | section | type | contents |
//! |---------|------|----------|
//! | `META` | JSON | config, metagraphs, model/count/posting directories, covered journal sequence |
//! | `GRAPH` | bytes | the CSR graph's binary encoding |
//! | `CNTNKEY`/`CNTNVAL` | `u32`/`u64` | count-cache per-node entries, concatenated per pattern |
//! | `CNTPKEY`/`CNTPVAL` | `u64`/`u64` | count-cache per-pair entries |
//! | `VIXNKEY`/`VIXNLEN`/`VIXNCRD`/`VIXNCNT` | mixed | per-model node raw vectors |
//! | `VIXPKEY`/`VIXPLEN`/`VIXPCRD`/`VIXPCNT` | mixed | per-model pair raw vectors |
//! | `PSTANCH`/`PSTNCAN`/`PSTNCOL`/`PSTCAND`/`PSTSCOR` | mixed | fused posting blocks (only with [`SearchEngine::save_snapshot_with`]) |
//!
//! Alongside the snapshot sits a write-ahead journal (snapshot path +
//! `.journal`): every committed ingest appends its [`mgp_graph::GraphDelta`] there,
//! `fsync`ed, *before* the in-memory commit. The snapshot records the
//! last journal sequence it covers, so [`SearchEngine::open_snapshot`]
//! replays only the tail — and a record torn by a crash mid-append is
//! truncated, never fatal.

use crate::engine::{ClassModel, PipelineConfig, SearchEngine};
use crate::timings::Timings;
use mgp_graph::{FxHashMap, TypeId};
use mgp_index::{RawVec, Transform, VectorIndex};
use mgp_matching::{AnchorCounts, PatternInfo};
use mgp_metagraph::Metagraph;
use mgp_online::{ClassExport, PostingExport, QueryServer, ServeConfig};
use mgp_persist::{Journal, PersistError, Snapshot, SnapshotWriter};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const SNAPSHOT_VERSION: u32 = 1;

/// Everything [`SearchEngine::open_snapshot`] restores.
pub struct SnapshotLoad {
    /// The warm engine: graph, matched counts, trained models — with the
    /// journal re-attached so subsequent ingests stay durable.
    pub engine: SearchEngine,
    /// A serving table, if the snapshot was taken with
    /// [`SearchEngine::save_snapshot_with`] — posting blocks imported
    /// bit-for-bit, then patched by any replayed journal tail.
    pub server: Option<QueryServer>,
    /// Journal records replayed on top of the snapshot (the tail).
    pub replayed: usize,
    /// Bytes of a torn final journal record that were truncated away.
    pub truncated_bytes: u64,
}

/// Per-pattern directory entry for the count-cache columns.
#[derive(serde::Serialize, serde::Deserialize)]
struct CountsDir {
    pattern: usize,
    n_nodes: u64,
    n_pairs: u64,
    n_instances: u64,
}

/// Per-model directory entry for the index columns.
#[derive(serde::Serialize, serde::Deserialize)]
struct ModelDir {
    name: String,
    coords: Vec<usize>,
    weights: Vec<f64>,
    log_likelihood: f64,
    n_metagraphs: usize,
    transform: Transform,
    n_node_entries: u64,
    n_pair_entries: u64,
}

/// Directory for the posting sections: the server's construction
/// parameters and its class order (block columns are indexed by class
/// id, so order is part of the format).
#[derive(serde::Serialize, serde::Deserialize)]
struct ServingDir {
    workers: usize,
    shards: usize,
    cache_capacity: usize,
    class_names: Vec<String>,
    n_blocks: u64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct MetaV1 {
    version: u32,
    anchor_type: u16,
    cfg: PipelineConfig,
    metagraphs: Vec<Metagraph>,
    seed_indices: Vec<usize>,
    /// Last journal sequence whose effects this snapshot already
    /// contains; [`SearchEngine::open_snapshot`] replays only beyond it.
    journal_seq: u64,
    counts: Vec<CountsDir>,
    models: Vec<ModelDir>,
    serving: Option<ServingDir>,
}

/// The write-ahead journal that pairs with a snapshot at `path`:
/// `<path>.journal`, next to it.
pub fn journal_path_for(path: impl AsRef<Path>) -> PathBuf {
    let p = path.as_ref();
    let mut name = p.file_name().unwrap_or_default().to_os_string();
    name.push(".journal");
    p.with_file_name(name)
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

/// Slices `n` elements off the front of a column, advancing the cursor;
/// a directory/column length mismatch is typed corruption, not a panic.
fn take<'a, T>(col: &'a [T], at: &mut usize, n: u64, what: &str) -> Result<&'a [T], PersistError> {
    let n = usize::try_from(n).map_err(|_| corrupt(format!("{what} count overflows")))?;
    let end = at
        .checked_add(n)
        .filter(|&e| e <= col.len())
        .ok_or_else(|| corrupt(format!("{what} column shorter than its directory claims")))?;
    let s = &col[*at..end];
    *at = end;
    Ok(s)
}

/// Checks a column was consumed exactly — extra bytes mean the
/// directory and the columns disagree.
fn drained<T>(col: &[T], at: usize, what: &str) -> Result<(), PersistError> {
    if at != col.len() {
        return Err(corrupt(format!(
            "{what} column has {} trailing entries",
            col.len() - at
        )));
    }
    Ok(())
}

/// Sorted `(key, value)` view of a count map, so snapshot bytes are
/// deterministic for identical state regardless of hash-map iteration.
fn sorted_entries<K: Ord + Copy, V: Copy>(map: &FxHashMap<K, V>) -> Vec<(K, V)> {
    let mut v: Vec<(K, V)> = map.iter().map(|(&k, &val)| (k, val)).collect();
    v.sort_unstable_by_key(|&(k, _)| k);
    v
}

impl SearchEngine {
    /// Writes a warm-start snapshot of the engine — graph, matched
    /// pattern counts, every trained model's raw index columns — to
    /// `path`, atomically (temp file + rename: a crash mid-save leaves
    /// any previous snapshot intact).
    ///
    /// If no journal is attached yet, a fresh one is created at
    /// [`journal_path_for`]`(path)` and attached, so every ingest after
    /// this call is write-ahead logged and
    /// [`SearchEngine::open_snapshot`] replays exactly the tail.
    pub fn save_snapshot(&mut self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_snapshot_inner(path.as_ref(), None)
    }

    /// [`SearchEngine::save_snapshot`] plus the live server's fused
    /// posting blocks, exported bit-for-bit — warm start then skips the
    /// posting build too and serves the imported tables directly.
    pub fn save_snapshot_with(
        &mut self,
        path: impl AsRef<Path>,
        server: &QueryServer,
    ) -> Result<(), PersistError> {
        self.save_snapshot_inner(path.as_ref(), Some(server))
    }

    fn save_snapshot_inner(
        &mut self,
        path: &Path,
        server: Option<&QueryServer>,
    ) -> Result<(), PersistError> {
        let journal_seq = match &self.journal {
            Some(j) => j.lock().expect("journal lock").last_seq(),
            None => 0,
        };
        let mut w = SnapshotWriter::new();

        // Count-cache columns, patterns in ascending order.
        let mut counts_dir = Vec::new();
        let (mut cnk, mut cnv, mut cpk, mut cpv) = (vec![], vec![], vec![], vec![]);
        let mut patterns: Vec<usize> = self.counts_cache.keys().copied().collect();
        patterns.sort_unstable();
        for i in patterns {
            let c = &self.counts_cache[&i];
            let nodes = sorted_entries(&c.per_node);
            let pairs = sorted_entries(&c.per_pair);
            counts_dir.push(CountsDir {
                pattern: i,
                n_nodes: nodes.len() as u64,
                n_pairs: pairs.len() as u64,
                n_instances: c.n_instances,
            });
            cnk.extend(nodes.iter().map(|&(k, _)| k));
            cnv.extend(nodes.iter().map(|&(_, v)| v));
            cpk.extend(pairs.iter().map(|&(k, _)| k));
            cpv.extend(pairs.iter().map(|&(_, v)| v));
        }

        // Per-model raw index columns (entry-sorted; each raw vector is
        // already coordinate-sorted — `VectorIndex::from_raw_parts`
        // re-validates that on load).
        let mut models_dir = Vec::new();
        let (mut vnk, mut vnl, mut vncrd, mut vncnt) = (vec![], vec![], vec![], vec![]);
        let (mut vpk, mut vpl, mut vpcrd, mut vpcnt) = (vec![], vec![], vec![], vec![]);
        for m in &self.models {
            let mut nodes: Vec<(u32, &[(u32, u64)])> =
                m.index.iter_node_raw().map(|(x, v)| (x.0, v)).collect();
            nodes.sort_unstable_by_key(|&(k, _)| k);
            let mut pairs: Vec<(u64, &[(u32, u64)])> = m.index.iter_pair_raw().collect();
            pairs.sort_unstable_by_key(|&(k, _)| k);
            models_dir.push(ModelDir {
                name: m.name.clone(),
                coords: m.coords.clone(),
                weights: m.weights.clone(),
                log_likelihood: m.log_likelihood,
                n_metagraphs: m.index.n_metagraphs(),
                transform: m.index.transform(),
                n_node_entries: nodes.len() as u64,
                n_pair_entries: pairs.len() as u64,
            });
            for (k, raw) in nodes {
                vnk.push(k);
                vnl.push(raw.len() as u64);
                vncrd.extend(raw.iter().map(|&(c, _)| c));
                vncnt.extend(raw.iter().map(|&(_, n)| n));
            }
            for (k, raw) in pairs {
                vpk.push(k);
                vpl.push(raw.len() as u64);
                vpcrd.extend(raw.iter().map(|&(c, _)| c));
                vpcnt.extend(raw.iter().map(|&(_, n)| n));
            }
        }

        // Fused posting blocks, flattened to columns.
        let mut serving_dir = None;
        let (mut pa, mut pnc, mut pncol, mut pcand, mut pscor) =
            (vec![], vec![], vec![], vec![], Vec::<f64>::new());
        if let Some(server) = server {
            let blocks = server.export_postings();
            let cfg = server.config();
            serving_dir = Some(ServingDir {
                workers: cfg.workers,
                shards: cfg.shards,
                cache_capacity: cfg.cache_capacity,
                class_names: server.class_names().iter().map(|s| s.to_string()).collect(),
                n_blocks: blocks.len() as u64,
            });
            for b in &blocks {
                pa.push(b.anchor);
                pnc.push(b.candidates.len() as u64);
                pncol.push(b.columns.len() as u64);
                pcand.extend_from_slice(&b.candidates);
                for col in &b.columns {
                    pscor.extend_from_slice(col);
                }
            }
        }

        let meta = MetaV1 {
            version: SNAPSHOT_VERSION,
            anchor_type: self.anchor_type.0,
            cfg: self.cfg.clone(),
            metagraphs: self.metagraphs.clone(),
            seed_indices: self.seed_indices.clone(),
            journal_seq,
            counts: counts_dir,
            models: models_dir,
            serving: serving_dir,
        };
        let meta_json = serde_json::to_string(&meta)
            .map_err(|e| corrupt(format!("meta serialisation failed: {e}")))?
            .into_bytes();

        w.add_section("META", meta_json)?;
        w.add_section("GRAPH", mgp_graph::binary::encode(&self.graph)?.to_vec())?;
        w.add_u32s("CNTNKEY", &cnk)?;
        w.add_u64s("CNTNVAL", &cnv)?;
        w.add_u64s("CNTPKEY", &cpk)?;
        w.add_u64s("CNTPVAL", &cpv)?;
        w.add_u32s("VIXNKEY", &vnk)?;
        w.add_u64s("VIXNLEN", &vnl)?;
        w.add_u32s("VIXNCRD", &vncrd)?;
        w.add_u64s("VIXNCNT", &vncnt)?;
        w.add_u64s("VIXPKEY", &vpk)?;
        w.add_u64s("VIXPLEN", &vpl)?;
        w.add_u32s("VIXPCRD", &vpcrd)?;
        w.add_u64s("VIXPCNT", &vpcnt)?;
        if meta.serving.is_some() {
            w.add_u32s("PSTANCH", &pa)?;
            w.add_u64s("PSTNCAN", &pnc)?;
            w.add_u64s("PSTNCOL", &pncol)?;
            w.add_u32s("PSTCAND", &pcand)?;
            w.add_f64s("PSTSCOR", &pscor)?;
        }
        w.finish(path)?;

        if self.journal.is_none() {
            let journal = Journal::create(journal_path_for(path))?;
            self.journal = Some(Arc::new(Mutex::new(journal)));
        }
        Ok(())
    }

    /// Warm-starts an engine from a snapshot: the file is memory-mapped,
    /// checksum-verified, and read as typed columns — no mining, no
    /// matching, no training. If the paired journal
    /// ([`journal_path_for`]) exists, its tail (records past the
    /// sequence the snapshot covers) is replayed through the normal
    /// ingest path — patching the restored server too, when one is
    /// present — and a record torn by a crash mid-append is truncated,
    /// not an error. The journal is re-attached to the returned engine.
    pub fn open_snapshot(path: impl AsRef<Path>) -> Result<SnapshotLoad, PersistError> {
        let path = path.as_ref();
        let snap = Snapshot::open(path)?;
        let meta_str = std::str::from_utf8(snap.require("META")?)
            .map_err(|e| corrupt(format!("meta section is not utf-8: {e}")))?;
        let meta: MetaV1 =
            serde_json::from_str(meta_str).map_err(|e| corrupt(format!("meta section: {e}")))?;
        if meta.version != SNAPSHOT_VERSION {
            return Err(corrupt(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                meta.version
            )));
        }
        let graph = mgp_graph::binary::decode(mgp_graph::bytes::Bytes::from(
            snap.require("GRAPH")?.to_vec(),
        ))?;

        // Count cache from the CNT columns. Key/value columns advance in
        // lockstep, so equal lengths are checked once up front.
        let (cnk, cnv) = (snap.u32s("CNTNKEY")?, snap.u64s("CNTNVAL")?);
        let (cpk, cpv) = (snap.u64s("CNTPKEY")?, snap.u64s("CNTPVAL")?);
        if cnk.len() != cnv.len() || cpk.len() != cpv.len() {
            return Err(corrupt("count key/value columns differ in length"));
        }
        let mut counts_cache: FxHashMap<usize, AnchorCounts> = FxHashMap::default();
        let (mut nat, mut pat) = (0usize, 0usize);
        for d in &meta.counts {
            let (mut vat, mut pvat) = (nat, pat);
            let keys = take(cnk, &mut nat, d.n_nodes, "CNTNKEY")?;
            let vals = take(cnv, &mut vat, d.n_nodes, "CNTNVAL")?;
            let per_node: FxHashMap<u32, u64> =
                keys.iter().copied().zip(vals.iter().copied()).collect();
            let pkeys = take(cpk, &mut pat, d.n_pairs, "CNTPKEY")?;
            let pvals = take(cpv, &mut pvat, d.n_pairs, "CNTPVAL")?;
            let per_pair: FxHashMap<u64, u64> =
                pkeys.iter().copied().zip(pvals.iter().copied()).collect();
            if counts_cache
                .insert(
                    d.pattern,
                    AnchorCounts {
                        per_node,
                        per_pair,
                        n_instances: d.n_instances,
                    },
                )
                .is_some()
            {
                return Err(corrupt(format!(
                    "duplicate counts for pattern {}",
                    d.pattern
                )));
            }
        }
        drained(cnk, nat, "CNTNKEY")?;
        drained(cpk, pat, "CNTPKEY")?;

        // Models from the VIX columns.
        let (vnk, vnl) = (snap.u32s("VIXNKEY")?, snap.u64s("VIXNLEN")?);
        let (vncrd, vncnt) = (snap.u32s("VIXNCRD")?, snap.u64s("VIXNCNT")?);
        let (vpk, vpl) = (snap.u64s("VIXPKEY")?, snap.u64s("VIXPLEN")?);
        let (vpcrd, vpcnt) = (snap.u32s("VIXPCRD")?, snap.u64s("VIXPCNT")?);
        if vnk.len() != vnl.len() || vncrd.len() != vncnt.len() {
            return Err(corrupt("node index columns differ in length"));
        }
        if vpk.len() != vpl.len() || vpcrd.len() != vpcnt.len() {
            return Err(corrupt("pair index columns differ in length"));
        }
        let mut models = Vec::with_capacity(meta.models.len());
        let (mut ke, mut ce) = (0usize, 0usize);
        let (mut pke, mut pce) = (0usize, 0usize);
        for d in &meta.models {
            let mut node_raw: FxHashMap<u32, RawVec> = FxHashMap::default();
            let mut lat = ke;
            let keys = take(vnk, &mut ke, d.n_node_entries, "VIXNKEY")?;
            let lens = take(vnl, &mut lat, d.n_node_entries, "VIXNLEN")?;
            for (&k, &len) in keys.iter().zip(lens) {
                let mut cat = ce;
                let coords = take(vncrd, &mut ce, len, "VIXNCRD")?;
                let cnts = take(vncnt, &mut cat, len, "VIXNCNT")?;
                node_raw.insert(
                    k,
                    coords.iter().copied().zip(cnts.iter().copied()).collect(),
                );
            }
            let mut pair_raw: FxHashMap<u64, RawVec> = FxHashMap::default();
            let mut lat = pke;
            let keys = take(vpk, &mut pke, d.n_pair_entries, "VIXPKEY")?;
            let lens = take(vpl, &mut lat, d.n_pair_entries, "VIXPLEN")?;
            for (&k, &len) in keys.iter().zip(lens) {
                let mut cat = pce;
                let coords = take(vpcrd, &mut pce, len, "VIXPCRD")?;
                let cnts = take(vpcnt, &mut cat, len, "VIXPCNT")?;
                pair_raw.insert(
                    k,
                    coords.iter().copied().zip(cnts.iter().copied()).collect(),
                );
            }
            let index =
                VectorIndex::from_raw_parts(d.n_metagraphs, d.transform, node_raw, pair_raw)
                    .map_err(|e| corrupt(format!("model {:?}: {e}", d.name)))?;
            if d.weights.len() != d.coords.len() {
                return Err(corrupt(format!(
                    "model {:?}: {} weights for {} coordinates",
                    d.name,
                    d.weights.len(),
                    d.coords.len()
                )));
            }
            models.push(ClassModel {
                name: d.name.clone(),
                coords: d.coords.clone(),
                index,
                weights: d.weights.clone(),
                log_likelihood: d.log_likelihood,
            });
        }
        drained(vnk, ke, "VIXNKEY")?;
        drained(vpk, pke, "VIXPKEY")?;

        let anchor_type = TypeId(meta.anchor_type);
        let patterns: Vec<PatternInfo> = meta
            .metagraphs
            .iter()
            .map(|m| PatternInfo::new(m.clone(), anchor_type))
            .collect();
        let timings = Timings {
            n_mined: meta.metagraphs.len(),
            n_matched: counts_cache.len(),
            ..Timings::default()
        };
        let mut engine = SearchEngine {
            graph,
            anchor_type,
            cfg: meta.cfg,
            metagraphs: meta.metagraphs,
            patterns,
            seed_indices: meta.seed_indices,
            counts_cache,
            plan_cache: FxHashMap::default(),
            models,
            timings,
            journal: None,
        };

        // Serving tables from the PST columns, if exported.
        let server = match &meta.serving {
            None => None,
            Some(dir) => {
                let (pa, pnc) = (snap.u32s("PSTANCH")?, snap.u64s("PSTNCAN")?);
                let pncol = snap.u64s("PSTNCOL")?;
                let (pcand, pscor) = (snap.u32s("PSTCAND")?, snap.f64s("PSTSCOR")?);
                if pa.len() as u64 != dir.n_blocks
                    || pnc.len() != pa.len()
                    || pncol.len() != pa.len()
                {
                    return Err(corrupt("posting block directory/column mismatch"));
                }
                let mut postings = Vec::with_capacity(pa.len());
                let (mut cat, mut sat) = (0usize, 0usize);
                for (i, &anchor) in pa.iter().enumerate() {
                    let candidates = take(pcand, &mut cat, pnc[i], "PSTCAND")?.to_vec();
                    let mut columns = Vec::with_capacity(pncol[i] as usize);
                    for _ in 0..pncol[i] {
                        columns.push(take(pscor, &mut sat, pnc[i], "PSTSCOR")?.to_vec());
                    }
                    postings.push(PostingExport {
                        anchor,
                        candidates,
                        columns,
                    });
                }
                drained(pcand, cat, "PSTCAND")?;
                drained(pscor, sat, "PSTSCOR")?;

                // Class order is part of the posting format: columns are
                // indexed by the class id the server assigned at save time.
                let mut exports = Vec::with_capacity(dir.class_names.len());
                for name in &dir.class_names {
                    let m = engine
                        .models
                        .iter()
                        .find(|m| &m.name == name)
                        .ok_or_else(|| {
                            corrupt(format!("served class {name:?} has no model in snapshot"))
                        })?;
                    exports.push(ClassExport {
                        name: &m.name,
                        index: &m.index,
                        weights: &m.weights,
                    });
                }
                let cfg = ServeConfig {
                    workers: dir.workers,
                    shards: dir.shards,
                    cache_capacity: dir.cache_capacity,
                };
                Some(QueryServer::from_parts(cfg, &exports, postings).map_err(corrupt)?)
            }
        };

        // Journal tail: replay everything past the snapshot's horizon,
        // then attach for future ingests. Replay happens with the
        // journal *detached* so the records are not re-appended.
        let jpath = journal_path_for(path);
        let (mut replayed, mut truncated_bytes) = (0usize, 0u64);
        let journal = if jpath.exists() {
            let (journal, recovery) = Journal::open(&jpath)?;
            truncated_bytes = recovery.truncated_bytes;
            for (seq, delta) in &recovery.records {
                if *seq <= meta.journal_seq {
                    continue;
                }
                let result = match &server {
                    Some(server) => engine.ingest_serving(delta, server),
                    None => engine.ingest(delta),
                };
                result
                    .map_err(|e| corrupt(format!("journal record {seq} failed to apply: {e}")))?;
                replayed += 1;
            }
            journal
        } else {
            Journal::create(&jpath)?
        };
        engine.journal = Some(Arc::new(Mutex::new(journal)));

        Ok(SnapshotLoad {
            engine,
            server,
            replayed,
            truncated_bytes,
        })
    }

    /// Attaches a **fresh** write-ahead journal at `path` (truncating
    /// any existing file): from now on every committed
    /// [`SearchEngine::ingest`] appends its delta, `fsync`ed, before the
    /// in-memory commit. [`SearchEngine::save_snapshot`] and
    /// [`SearchEngine::open_snapshot`] manage the journal automatically;
    /// call this directly to log churn *before* the first snapshot.
    pub fn attach_journal(&mut self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let journal = Journal::create(path)?;
        self.journal = Some(Arc::new(Mutex::new(journal)));
        Ok(())
    }

    /// Crash recovery *without* a snapshot: opens the journal at `path`
    /// (truncating any torn tail), replays **every** record onto this
    /// engine — which must be in the state the journal started from,
    /// e.g. freshly built from the base graph — and attaches it.
    /// Returns `(records replayed, torn bytes truncated)`.
    pub fn replay_journal(&mut self, path: impl AsRef<Path>) -> Result<(usize, u64), PersistError> {
        let (journal, recovery) = Journal::open(path)?;
        for (seq, delta) in &recovery.records {
            self.ingest(delta)
                .map_err(|e| corrupt(format!("journal record {seq} failed to apply: {e}")))?;
        }
        let n = recovery.records.len();
        self.journal = Some(Arc::new(Mutex::new(journal)));
        Ok((n, recovery.truncated_bytes))
    }

    /// The sequence number of the last journaled delta (`0` when no
    /// journal is attached or nothing has been appended).
    pub fn journal_seq(&self) -> u64 {
        match &self.journal {
            Some(j) => j.lock().expect("journal lock").last_seq(),
            None => 0,
        }
    }
}

//! # mgp-core — the end-to-end semantic proximity search engine
//!
//! Wires the substrates into the paper's overall framework (Fig. 3):
//!
//! ```text
//! offline:  mine M  →  match Mᵢ (SymISO, parallel)  →  index m_x, m_xy
//!           →  per class: sample Ω, learn w*        (full or dual-stage)
//! online:   π(q, v; w*) over the index → ranking
//! ```
//!
//! The matching budget is governed by [`TrainingStrategy`]:
//!
//! * [`TrainingStrategy::Full`] matches every mined metagraph once, then
//!   trains each class on the full index (the paper's accuracy experiments,
//!   Fig. 6–7);
//! * [`TrainingStrategy::DualStage`] implements Alg. 1: match only the
//!   metapath seeds `K₀`, train seed weights `w₀`, rank the rest by the
//!   candidate heuristic `H` (Eq. 7), match the top `|K|` candidates, and
//!   retrain on `K₀ ∪ K` (Fig. 8/10);
//! * [`TrainingStrategy::MultiStage`] is the paper's proposed extension
//!   (end of Sect. III-C): candidates are added in batches, treating
//!   previously selected metagraphs as new seeds, stopping when the
//!   training log-likelihood stops improving.
//!
//! Matched instance counts are cached across classes, so two classes that
//! select overlapping candidates only pay for matching once — matching is
//! the dominant offline cost (Table III).
//!
//! Live graphs are followed with [`SearchEngine::ingest`]: a
//! `mgp_graph::GraphDelta` — insertions *and* removals, mixed in one
//! batch — flows through CSR splicing → symmetric delta-rule incremental
//! matching (new instances seeded on inserted edges against the updated
//! graph, doomed instances seeded on removed edges against the
//! pre-delete graph) → signed index patching, and
//! [`SearchEngine::ingest_serving`] additionally patches a running
//! [`QueryServer`]'s posting lists (removing dead entries) and
//! invalidates only the cache entries whose results changed — no
//! from-scratch rebuild anywhere on the chain.
//!
//! New relevance classes need no rebuild either:
//! [`SearchEngine::register_class`] compiles an
//! [`mgp_scenario::ClassSpec`] (patterns + transform + weights) against
//! the live engine — counts come from the cache, custom metagraphs are
//! matched on the spot — and
//! [`SearchEngine::register_class_serving`] additionally grows a live
//! [`QueryServer`] by the class through copy-on-write epoch swaps,
//! while queries keep flowing. The [`scenario`] module re-exports the
//! workload suite (deterministic scenario traces + replay driver) and
//! provides [`scenario::LiveTarget`], the engine-side glue the suite
//! drives.

#![warn(missing_docs)]

pub mod engine;
pub mod persist;
pub mod scenario;
pub mod timings;

pub use engine::{
    ClassModel, IngestError, IngestReport, PipelineConfig, RegisterClassError, SearchEngine,
    TrainingStrategy,
};
pub use mgp_online::{Frontend, FrontendConfig, FrontendError, QueryServer, ServeConfig};
pub use mgp_persist::PersistError;
pub use persist::{journal_path_for, SnapshotLoad};
pub use timings::Timings;

//! Offline/online cost accounting (the paper's Table III), plus the
//! online-serving latency instrumentation.
//!
//! Offline costs are one-shot wall-clock durations ([`Timings`]); the
//! online phase serves an open-ended query stream, so its accounting is a
//! latency *distribution*: [`LatencyHistogram`] (recorded per batch by
//! `mgp_online::QueryServer`, built via `SearchEngine::serve`) with
//! p50/p95/p99 snapshots.

pub use mgp_online::{LatencyHistogram, LatencySnapshot};

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Wall-clock cost of each subproblem of the pipeline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timings {
    /// Metagraph mining (Fig. 3 subproblem 1).
    pub mining: Duration,
    /// Total metagraph matching (subproblem 2) — the dominant cost.
    pub matching: Duration,
    /// Index construction from matched counts.
    pub indexing: Duration,
    /// Supervised training, accumulated over classes (subproblem 3).
    pub training: Duration,
    /// Number of metagraphs matched so far (≤ mined under dual-stage).
    pub n_matched: usize,
    /// Number of metagraphs mined.
    pub n_mined: usize,
}

impl Timings {
    /// Renders a Table III-style row: mining / matching / training seconds.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name}\t{:.1}\t{:.1}\t{:.1}",
            self.mining.as_secs_f64(),
            self.matching.as_secs_f64(),
            self.training.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_row_formats_seconds() {
        let t = Timings {
            mining: Duration::from_millis(1500),
            matching: Duration::from_secs(12),
            training: Duration::from_millis(250),
            ..Default::default()
        };
        assert_eq!(t.table_row("LinkedIn"), "LinkedIn\t1.5\t12.0\t0.2");
    }
}

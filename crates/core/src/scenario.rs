//! Scenario suite glue: re-exports `mgp-scenario` and binds its replay
//! driver to a live [`SearchEngine`].
//!
//! The suite crate sits below `mgp-core`, so it drives mutations
//! through the [`ScenarioTarget`] trait; [`LiveTarget`] is the engine
//! implementation — deltas go through [`SearchEngine::ingest_serving`]
//! (the full graph → matching → index → fused posting-patch chain) and
//! registrations through [`SearchEngine::register_class_serving`]
//! (engine model + live server class growth). [`run_scenarios`] replays
//! a generated suite in order against one engine/front-end pair:
//!
//! ```no_run
//! use mgp_core::scenario::{self, GeneratorConfig, TraceGenerator};
//! # let dataset = mgp_datagen::facebook::generate_facebook(&Default::default());
//! # let mut engine = mgp_core::SearchEngine::build(
//! #     dataset.graph.clone(),
//! #     mgp_core::PipelineConfig::new(dataset.anchor_type, 5),
//! # );
//! let frontend = engine.serve_frontend();
//! let mut generator = TraceGenerator::new(
//!     engine.graph(),
//!     engine.anchor_type(),
//!     GeneratorConfig {
//!         seed: 42,
//!         n_classes: 2,
//!         ..GeneratorConfig::default()
//!     },
//! );
//! let traces = generator.generate_suite();
//! let report = scenario::run_scenarios(
//!     &mut engine,
//!     &frontend,
//!     &traces,
//!     &scenario::DriverConfig::default(),
//! );
//! println!("{report}");
//! ```

pub use mgp_scenario::*;

use crate::engine::SearchEngine;
use mgp_graph::GraphDelta;
use mgp_online::{Frontend, ServerHandle};

/// A live engine + shared server, as the scenario driver's mutation
/// target. Queries go to the front-end directly; this is only the
/// write side.
pub struct LiveTarget<'a> {
    engine: &'a mut SearchEngine,
    server: ServerHandle,
}

impl<'a> LiveTarget<'a> {
    /// Binds an engine to the server it keeps patched (clone the handle
    /// out of `Frontend::server` for a front-end-served engine).
    pub fn new(engine: &'a mut SearchEngine, server: ServerHandle) -> Self {
        LiveTarget { engine, server }
    }
}

impl ScenarioTarget for LiveTarget<'_> {
    fn apply_delta(&mut self, delta: &GraphDelta) -> Result<MutationSummary, String> {
        self.engine
            .ingest_serving(delta, &self.server)
            .map(|report| MutationSummary {
                fused_shard_visits: report.fused_shard_visits,
                sequential_shard_visits: report.sequential_shard_visits(),
                match_work: MatchWork {
                    proposals: report.match_stats.proposals,
                    intersections: report.match_stats.intersections,
                    extensions: report.match_stats.extensions,
                    instances: report.match_stats.instances,
                    dedup_suppressed: report.match_stats.dedup_suppressed,
                },
            })
            .map_err(|e| e.to_string())
    }

    fn register_class(&mut self, spec: &ClassSpec) -> Result<usize, String> {
        self.engine
            .register_class_serving(spec, &self.server)
            .map_err(|e| e.to_string())
    }
}

/// Replays `traces` in order against one engine/front-end pair,
/// returning the per-scenario reports. Traces must be replayed in the
/// order they were generated (the generator's graph evolves across
/// scenarios), which is what this does.
pub fn run_scenarios(
    engine: &mut SearchEngine,
    frontend: &Frontend,
    traces: &[Trace],
    cfg: &DriverConfig,
) -> SuiteReport {
    let mut suite = SuiteReport::default();
    for trace in traces {
        let mut target = LiveTarget::new(engine, frontend.server().clone());
        suite
            .scenarios
            .push(run_trace(trace, &mut target, frontend, cfg));
    }
    suite
}

//! Warm-start persistence: a snapshot + journal pair must restore an
//! engine (and its serving tables) **bit-identically** — every `search`,
//! `rank`, `rank_multi` and `table_stats` answer equal to the live
//! process that wrote it, including after journal-tail replay and after
//! crash-torn journal records.

use mgp_core::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use mgp_core::{journal_path_for, QueryServer};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use mgp_datagen::Dataset;
use mgp_graph::{GraphDelta, NodeId};
use mgp_learning::{sample_examples, TrainConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

const CLASSES: [&str; 2] = ["family", "classmate"];

/// A fresh path under the test temp dir (unique per call, cleaned by the
/// caller).
fn snap_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("mgp_persistence_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}_{}.snap",
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn cleanup(path: &PathBuf) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(journal_path_for(path)).ok();
}

/// One fully built + trained engine, shared (cloned) across tests —
/// mining/matching/training is by far the slowest part of this suite.
fn base() -> (&'static Dataset, SearchEngine) {
    static BASE: OnceLock<(Dataset, SearchEngine)> = OnceLock::new();
    let (d, engine) = BASE.get_or_init(|| {
        let d = generate_facebook(&FacebookConfig::tiny(42));
        let mut cfg = PipelineConfig::new(d.anchor_type, 5);
        cfg.train = TrainConfig::fast(1);
        cfg.strategy = TrainingStrategy::Full;
        cfg.threads = 2;
        let mut engine = SearchEngine::build(d.graph.clone(), cfg);
        for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let queries = d.labels.queries_of_class(class);
            let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
            let ex = sample_examples(
                &queries,
                |q| d.labels.positives_of(q, class),
                |q, v| d.labels.has(q, v, class),
                &anchors,
                150,
                &mut rng,
            );
            engine.train_class(name, &ex);
        }
        (d, engine)
    });
    (d, engine.clone())
}

/// Query nodes to probe: a spread of anchors plus every node id the
/// graph might have grown to (ids past the end are valid queries too —
/// they rank empty).
fn probes(engine: &SearchEngine) -> Vec<NodeId> {
    let anchors = engine.graph().nodes_of_type(engine.anchor_type());
    anchors.iter().step_by(7).copied().take(30).collect()
}

/// Asserts engine + server answers are bit-identical between a live
/// (`want`) and restored (`got`) pair, across classes, queries and k.
fn assert_identical(
    want: (&SearchEngine, &QueryServer),
    got: (&SearchEngine, &QueryServer),
    context: &str,
) {
    let queries = probes(want.0);
    let class_ids: Vec<usize> = CLASSES
        .iter()
        .map(|c| {
            let w = want.1.class_id(c).expect("live class");
            let g = got.1.class_id(c).expect("restored class");
            assert_eq!(w, g, "{context}: class id for {c}");
            w
        })
        .collect();
    for (c, &cid) in CLASSES.iter().zip(&class_ids) {
        assert_eq!(
            want.1.table_stats(cid),
            got.1.table_stats(cid),
            "{context}: table_stats for {c}"
        );
        for &q in &queries {
            for k in [1usize, 3, 10] {
                assert_eq!(
                    want.0.search(c, q, k),
                    got.0.search(c, q, k),
                    "{context}: search {c} q={q} k={k}"
                );
                assert_eq!(
                    *want.1.rank(cid, q, k),
                    *got.1.rank(cid, q, k),
                    "{context}: rank {c} q={q} k={k}"
                );
            }
        }
    }
    for &q in queries.iter().take(10) {
        let w = want.1.rank_multi(&class_ids, q, 5);
        let g = got.1.rank_multi(&class_ids, q, 5);
        assert_eq!(w.len(), g.len());
        for (wi, gi) in w.iter().zip(&g) {
            assert_eq!(**wi, **gi, "{context}: rank_multi q={q}");
        }
    }
}

/// A small churn delta: one new anchor wired to two attributes, one new
/// edge between existing nodes, one removal. `salt` varies the choices.
fn churn_delta(engine: &SearchEngine, salt: usize) -> GraphDelta {
    let g = engine.graph();
    let anchor_type = engine.anchor_type();
    let anchors = g.nodes_of_type(anchor_type);
    let attrs: Vec<NodeId> = g
        .nodes()
        .filter(|&v| g.node_type(v) != anchor_type && g.degree(v) > 0)
        .collect();
    let mut delta = GraphDelta::for_graph(g);
    let nu = delta.add_node(anchor_type, format!("wal-user-{salt}"));
    delta.add_edge(nu, attrs[salt % attrs.len()]).unwrap();
    delta.add_edge(nu, attrs[(salt + 3) % attrs.len()]).unwrap();
    delta
        .add_edge(
            anchors[salt % anchors.len()],
            attrs[(salt + 1) % attrs.len()],
        )
        .unwrap();
    if let Some((a, b)) = g.edges().nth(salt % g.n_edges() as usize) {
        delta.remove_edge(a, b).unwrap();
    }
    delta
}

#[test]
fn snapshot_roundtrip_is_bit_identical() {
    let (_d, mut engine) = base();
    let server = engine.serve();
    let path = snap_path("roundtrip");
    engine.save_snapshot_with(&path, &server).unwrap();

    let load = SearchEngine::open_snapshot(&path).unwrap();
    assert_eq!(load.replayed, 0);
    assert_eq!(load.truncated_bytes, 0);
    let restored_server = load.server.expect("snapshot carried postings");
    assert_identical(
        (&engine, &server),
        (&load.engine, &restored_server),
        "cold roundtrip",
    );

    // The restored engine keeps full function: it can ingest and serve.
    let delta = churn_delta(&load.engine, 1);
    let mut restored = load.engine;
    restored.ingest_serving(&delta, &restored_server).unwrap();
    cleanup(&path);
}

#[test]
fn snapshot_without_server_restores_engine_only() {
    let (_d, mut engine) = base();
    let path = snap_path("engine_only");
    engine.save_snapshot(&path).unwrap();
    let load = SearchEngine::open_snapshot(&path).unwrap();
    assert!(load.server.is_none());
    let queries = probes(&engine);
    for c in CLASSES {
        for &q in &queries {
            assert_eq!(engine.search(c, q, 10), load.engine.search(c, q, 10));
        }
    }
    cleanup(&path);
}

#[test]
fn journal_tail_replays_on_warm_start() {
    let (_d, mut engine) = base();
    let server = engine.serve();
    let path = snap_path("tail");
    engine.save_snapshot_with(&path, &server).unwrap();

    // Post-snapshot churn: journaled, not re-snapshotted.
    for salt in 0..3 {
        let delta = churn_delta(&engine, salt);
        engine.ingest_serving(&delta, &server).unwrap();
    }
    assert_eq!(engine.journal_seq(), 3);

    let load = SearchEngine::open_snapshot(&path).unwrap();
    assert_eq!(load.replayed, 3, "exactly the tail replays");
    assert_eq!(load.truncated_bytes, 0);
    let restored_server = load.server.expect("postings restored");
    assert_identical(
        (&engine, &server),
        (&load.engine, &restored_server),
        "journal tail",
    );

    // A second snapshot advances the horizon: nothing replays after it.
    let mut warm = load.engine;
    warm.save_snapshot_with(&path, &restored_server).unwrap();
    let again = SearchEngine::open_snapshot(&path).unwrap();
    assert_eq!(again.replayed, 0, "snapshot covers the whole journal");
    cleanup(&path);
}

#[test]
fn torn_journal_tail_is_truncated_not_fatal() {
    let (_d, mut engine) = base();
    let server = engine.serve();
    let path = snap_path("torn");
    engine.save_snapshot_with(&path, &server).unwrap();

    // First delta lands fully; capture the expected answers *before* the
    // second delta, whose journal record we will tear.
    let d1 = churn_delta(&engine, 5);
    engine.ingest_serving(&d1, &server).unwrap();
    let queries = probes(&engine);
    let mut expected = Vec::new();
    for c in CLASSES {
        let cid = server.class_id(c).unwrap();
        for &q in &queries {
            expected.push((
                c,
                q,
                engine.search(c, q, 10),
                (*server.rank(cid, q, 10)).clone(),
            ));
        }
    }
    let jpath = journal_path_for(&path);
    let clean_len = std::fs::metadata(&jpath).unwrap().len();

    let d2 = churn_delta(&engine, 11);
    engine.ingest_serving(&d2, &server).unwrap();

    // Simulate a crash mid-append: cut the final record short.
    let bytes = std::fs::read(&jpath).unwrap();
    assert!(bytes.len() as u64 > clean_len);
    let cut = clean_len as usize + (bytes.len() - clean_len as usize) / 2;
    std::fs::write(&jpath, &bytes[..cut]).unwrap();

    let load = SearchEngine::open_snapshot(&path).unwrap();
    assert_eq!(load.replayed, 1, "only the intact record replays");
    assert_eq!(load.truncated_bytes, (cut as u64) - clean_len);
    assert_eq!(
        std::fs::metadata(&jpath).unwrap().len(),
        clean_len,
        "torn record physically truncated"
    );
    let restored_server = load.server.expect("postings restored");
    for (c, q, search, rank) in &expected {
        assert_eq!(
            &load.engine.search(c, *q, 10),
            search,
            "torn: search {c} q={q}"
        );
        let cid = restored_server.class_id(c).unwrap();
        assert_eq!(
            &*restored_server.rank(cid, *q, 10),
            rank,
            "torn: rank {c} q={q}"
        );
    }

    // The recovered journal stays writable at the truncated position.
    let mut warm = load.engine;
    warm.ingest_serving(&d2, &restored_server).unwrap();
    assert_eq!(warm.journal_seq(), 2);
    cleanup(&path);
}

#[test]
fn corrupt_snapshot_bytes_are_rejected() {
    let (_d, mut engine) = base();
    let path = snap_path("corrupt");
    engine.save_snapshot(&path).unwrap();
    let clean = std::fs::read(&path).unwrap();
    // A flip in the header/table region and one deep inside the sections.
    for at in [9usize, 24, clean.len() / 2, clean.len() - 1] {
        let mut bad = clean.clone();
        bad[at] ^= 0x20;
        std::fs::write(&path, &bad).unwrap();
        assert!(
            SearchEngine::open_snapshot(&path).is_err(),
            "flip at {at} accepted"
        );
    }
    cleanup(&path);
}

#[test]
fn replay_journal_recovers_without_a_snapshot() {
    let (_d, mut engine) = base();
    let baseline = engine.clone();
    let path = snap_path("wal_only");
    let jpath = journal_path_for(&path);
    engine.attach_journal(&jpath).unwrap();
    for salt in 0..2 {
        let delta = churn_delta(&engine, salt);
        engine.ingest(&delta).unwrap();
    }

    // "Crash": start over from the pre-journal engine and replay.
    let mut recovered = baseline;
    let (replayed, torn) = recovered.replay_journal(&jpath).unwrap();
    assert_eq!(replayed, 2);
    assert_eq!(torn, 0);
    let queries = probes(&engine);
    for c in CLASSES {
        for &q in &queries {
            assert_eq!(engine.search(c, q, 10), recovered.search(c, q, 10));
        }
    }
    cleanup(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random churn both before and after the snapshot: the snapshot +
    /// journal-tail warm start answers bit-identically to the live
    /// engine, whatever the split.
    #[test]
    fn random_churn_roundtrips(
        salts in prop::collection::vec(0usize..1000, 1..5),
        split in 0usize..5,
    ) {
        let (_d, mut engine) = base();
        let server = engine.serve();
        let path = snap_path("prop");
        let split = split.min(salts.len());
        // Pre-snapshot churn (baked into the sections)…
        for &salt in &salts[..split] {
            let delta = churn_delta(&engine, salt);
            engine.ingest_serving(&delta, &server).unwrap();
        }
        engine.save_snapshot_with(&path, &server).unwrap();
        // …and post-snapshot churn (journal tail only).
        for &salt in &salts[split..] {
            let delta = churn_delta(&engine, salt);
            engine.ingest_serving(&delta, &server).unwrap();
        }

        let load = SearchEngine::open_snapshot(&path).unwrap();
        prop_assert_eq!(load.replayed, salts.len() - split);
        let restored_server = load.server.expect("postings restored");
        assert_identical(
            (&engine, &server),
            (&load.engine, &restored_server),
            "random churn",
        );
        cleanup(&path);
    }
}

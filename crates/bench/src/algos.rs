//! The five compared algorithms of Fig. 6–7, behind one interface.

use crate::context::ExpContext;
use mgp_datagen::ClassId;
use mgp_eval::evaluate_ranker;
use mgp_graph::NodeId;
use mgp_learning::baselines::{
    best_single_metagraph, metapath_indices, single_weights, uniform_weights,
};
use mgp_learning::srw::{srw_rank, train_srw, SrwConfig};
use mgp_learning::{mgp, train, TrainConfig, TrainingExample};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The algorithms compared in the accuracy experiments (Sect. V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Metagraph-based proximity, supervised (ours).
    Mgp,
    /// Metapath-only proximity, supervised.
    Mpp,
    /// MGP with uniform weights.
    MgpU,
    /// MGP with the single best metagraph.
    MgpB,
    /// Supervised random walks.
    Srw,
}

impl Algo {
    /// All five, in the paper's legend order.
    pub const ALL: [Algo; 5] = [Algo::Mgp, Algo::Mpp, Algo::MgpU, Algo::MgpB, Algo::Srw];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Mgp => "MGP",
            Algo::Mpp => "MPP",
            Algo::MgpU => "MGP-U",
            Algo::MgpB => "MGP-B",
            Algo::Srw => "SRW",
        }
    }
}

/// Samples `n` training triples for a class from the given train queries.
///
/// Negatives are drawn from the query's index partners 90 % of the time
/// (hard negatives — the other users `q` is related to, mirroring the
/// paper's labelled-connections supervision) and uniformly otherwise.
pub fn make_examples(
    ctx: &ExpContext,
    class: ClassId,
    train_queries: &[NodeId],
    n: usize,
    seed: u64,
) -> Vec<TrainingExample> {
    let anchors = ctx.anchors();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    mgp_learning::sample_examples_with_pool(
        train_queries,
        |q| ctx.dataset.labels.positives_of(q, class),
        |q, v| ctx.dataset.labels.has(q, v, class),
        &anchors,
        |q| ctx.index.partners(q).iter().map(|&v| NodeId(v)).collect(),
        0.9,
        n,
        &mut rng,
    )
}

/// Trains `algo` on the training split and evaluates NDCG@k / MAP@k on the
/// test queries (paper protocol, k = 10).
#[allow(clippy::too_many_arguments)] // experiment façade mirroring the paper's parameter grid
pub fn eval_algo(
    ctx: &ExpContext,
    algo: Algo,
    class: ClassId,
    train_queries: &[NodeId],
    test_queries: &[NodeId],
    n_examples: usize,
    seed: u64,
    k: usize,
) -> (f64, f64) {
    let idx = &ctx.index;
    let examples = make_examples(ctx, class, train_queries, n_examples, seed);
    let positives = |q: NodeId| ctx.dataset.labels.positives_of(q, class);

    match algo {
        Algo::Mgp => {
            let model = train(idx, &examples, &TrainConfig::fast(seed));
            evaluate_ranker(test_queries, k, positives, |q| {
                mgp::rank(idx, q, &model.weights, k)
            })
        }
        Algo::Mpp => {
            let paths = metapath_indices(&ctx.metagraphs);
            let sub = idx.restrict(&paths);
            let model = train(&sub, &examples, &TrainConfig::fast(seed));
            evaluate_ranker(test_queries, k, positives, |q| {
                mgp::rank(&sub, q, &model.weights, k)
            })
        }
        Algo::MgpU => {
            let w = uniform_weights(idx.n_metagraphs());
            evaluate_ranker(test_queries, k, positives, |q| mgp::rank(idx, q, &w, k))
        }
        Algo::MgpB => {
            let best = best_single_metagraph(idx, train_queries, positives, k);
            let w = single_weights(idx.n_metagraphs(), best);
            evaluate_ranker(test_queries, k, positives, |q| mgp::rank(idx, q, &w, k))
        }
        Algo::Srw => {
            let cfg = SrwConfig::default();
            let model = train_srw(&ctx.dataset.graph, &examples, &cfg);
            evaluate_ranker(test_queries, k, positives, |q| {
                srw_rank(
                    &ctx.dataset.graph,
                    &model,
                    q,
                    ctx.dataset.anchor_type,
                    k,
                    &cfg,
                )
            })
        }
    }
}

//! CSV output under `target/experiments/`.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// Writes experiment series as CSV files alongside the printed tables, so
/// plots can be regenerated without re-running.
pub struct CsvWriter {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl CsvWriter {
    /// Creates `target/experiments/<name>.csv` with a header row.
    pub fn create(name: &str, header: &[&str]) -> std::io::Result<CsvWriter> {
        let dir = PathBuf::from("target/experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut writer = BufWriter::new(File::create(&path)?);
        writeln!(writer, "{}", header.join(","))?;
        Ok(CsvWriter { writer, path })
    }

    /// Appends a data row.
    pub fn row(&mut self, fields: &[String]) -> std::io::Result<()> {
        writeln!(self.writer, "{}", fields.join(","))
    }

    /// Flushes and reports where the file landed.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.writer.flush()?;
        Ok(self.path)
    }
}

/// Formats an `f64` with 4 decimals for tables.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_csv() {
        let mut w = CsvWriter::create("unit_test_output", &["a", "b"]).unwrap();
        w.row(&["1".into(), "2".into()]).unwrap();
        let path = w.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn f4_formats() {
        assert_eq!(f4(0.123456), "0.1235");
    }
}

//! Fig. 4 — sparsity of the optimal characteristic weights.
//!
//! Trains MGP on the full metagraph set (1000 examples) for every class and
//! prints the weights in descending order, reproducing the long-tailed
//! curves of Fig. 4: few high weights, an overwhelming majority of
//! near-zero weights.

use mgp_bench::algos::make_examples;
use mgp_bench::context::Which;
use mgp_bench::output::f4;
use mgp_bench::{parse_args, CsvWriter, ExpContext};
use mgp_eval::repeated_splits;
use mgp_learning::{train, TrainConfig};

fn main() {
    let args = parse_args();
    println!(
        "=== Fig. 4: sparsity of optimal weights (scale {:?}) ===",
        args.scale
    );
    let mut csv = CsvWriter::create("fig4", &["dataset", "class", "rank", "weight"]).expect("csv");

    for which in [Which::LinkedIn, Which::Facebook] {
        let ctx = ExpContext::prepare(which, args.scale, args.seed);
        for class in ctx.dataset.classes() {
            let class_name = &ctx.dataset.class_names[class.0 as usize];
            let queries = ctx.dataset.labels.queries_of_class(class);
            let split = &repeated_splits(&queries, 0.2, 1, args.seed)[0];
            let examples = make_examples(&ctx, class, &split.train, 1000, args.seed);
            let model = train(&ctx.index, &examples, &TrainConfig::default());
            let mut w = model.weights.clone();
            w.sort_by(|a, b| b.partial_cmp(a).unwrap());

            let high = w.iter().filter(|&&x| x > 0.9).count();
            let low = w.iter().filter(|&&x| x < 0.1).count();
            println!(
                "\n{} / {class_name}: |M| = {}, weights > 0.9: {high}, weights < 0.1: {low}",
                ctx.dataset.name,
                w.len()
            );
            print!("ranked weights: ");
            for (i, x) in w.iter().enumerate() {
                if i < 10 || i % (w.len() / 10).max(1) == 0 || i == w.len() - 1 {
                    print!("#{}:{} ", i + 1, f4(*x));
                }
                csv.row(&[
                    ctx.dataset.name.clone(),
                    class_name.clone(),
                    (i + 1).to_string(),
                    f4(*x),
                ])
                .expect("row");
            }
            println!();
        }
    }
    let path = csv.finish().expect("flush");
    println!("\ncsv: {}", path.display());
}

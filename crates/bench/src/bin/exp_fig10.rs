//! Fig. 10 — candidate heuristic (CH) vs reverse candidate heuristic (RCH).
//!
//! If CH's ordering is meaningful, training on the top-|K| candidates must
//! beat training on the bottom-|K| (RCH) for the same |K|.

use mgp_bench::algos::make_examples;
use mgp_bench::context::Which;
use mgp_bench::{parse_args, CsvWriter, ExpContext};
use mgp_eval::{evaluate_ranker, repeated_splits};
use mgp_learning::baselines::metapath_indices;
use mgp_learning::{candidate_ranking, mgp, reverse_candidate_ranking, train, TrainConfig};

fn main() {
    let args = parse_args();
    println!("=== Fig. 10: CH vs RCH (scale {:?}) ===", args.scale);
    let mut csv = CsvWriter::create(
        "fig10",
        &["dataset", "class", "k", "heuristic", "ndcg", "map"],
    )
    .expect("csv");

    for which in [Which::LinkedIn, Which::Facebook] {
        let ctx = ExpContext::prepare(which, args.scale, args.seed);
        let seeds = metapath_indices(&ctx.metagraphs);
        let n_nonseed = ctx.metagraphs.len() - seeds.len();
        let sweep: Vec<usize> = (1..=5).map(|i| i * n_nonseed / 5).collect();

        for class in ctx.dataset.classes() {
            let class_name = ctx.dataset.class_names[class.0 as usize].clone();
            let queries = ctx.dataset.labels.queries_of_class(class);
            let split = &repeated_splits(&queries, 0.2, 1, args.seed)[0];
            let examples = make_examples(&ctx, class, &split.train, 1000, args.seed);
            let positives = |q| ctx.dataset.labels.positives_of(q, class);

            let seed_index = ctx.index.restrict(&seeds);
            let w0 = train(&seed_index, &examples, &TrainConfig::fast(args.seed));
            let ch = candidate_ranking(&ctx.metagraphs, &seeds, &w0.weights);
            let rch = reverse_candidate_ranking(&ctx.metagraphs, &seeds, &w0.weights);

            println!("\n--- {} / {} ---", ctx.dataset.name, class_name);
            println!("|K|\tCH NDCG\tCH MAP\tRCH NDCG\tRCH MAP");
            for &k in &sweep {
                let mut row = vec![ctx.dataset.name.clone(), class_name.clone(), k.to_string()];
                let mut line = format!("{k}");
                for (label, ranking) in [("CH", &ch), ("RCH", &rch)] {
                    let mut coords = seeds.clone();
                    coords.extend(ranking.iter().take(k).map(|&(j, _)| j));
                    let sub = ctx.index.restrict(&coords);
                    let model = train(&sub, &examples, &TrainConfig::fast(args.seed));
                    let (ndcg, map) = evaluate_ranker(&split.test, 10, positives, |q| {
                        mgp::rank(&sub, q, &model.weights, 10)
                    });
                    line += &format!("\t{ndcg:.4}\t{map:.4}");
                    row.push(label.to_owned());
                    row.push(format!("{ndcg:.4}"));
                    row.push(format!("{map:.4}"));
                }
                println!("{line}");
                // Emit two CSV rows, one per heuristic.
                csv.row(&[
                    row[0].clone(),
                    row[1].clone(),
                    row[2].clone(),
                    row[3].clone(),
                    row[4].clone(),
                    row[5].clone(),
                ])
                .expect("row");
                csv.row(&[
                    row[0].clone(),
                    row[1].clone(),
                    row[2].clone(),
                    row[6].clone(),
                    row[7].clone(),
                    row[8].clone(),
                ])
                .expect("row");
            }
        }
    }
    let path = csv.finish().expect("flush");
    println!("\ncsv: {}", path.display());
}

//! Fig. 8 — impact of dual-stage training.
//!
//! For each dataset/class, sweeps the number of candidates |K| and reports
//! the *relative percentage increase* in NDCG@10, MAP@10 and matching time,
//! where 0 % = seeds (metapaths) only and 100 % = all metagraphs — the
//! paper's finding is that accuracy approaches 100 % long before time does.

use mgp_bench::algos::make_examples;
use mgp_bench::context::Which;
use mgp_bench::{parse_args, CsvWriter, ExpContext};
use mgp_eval::{evaluate_ranker, repeated_splits};
use mgp_learning::baselines::metapath_indices;
use mgp_learning::{candidate_ranking, mgp, train, TrainConfig};
use std::time::Duration;

fn main() {
    let args = parse_args();
    println!(
        "=== Fig. 8: impact of dual-stage training (scale {:?}) ===",
        args.scale
    );
    let mut csv = CsvWriter::create(
        "fig8",
        &[
            "dataset", "class", "k", "ndcg_pct", "map_pct", "time_pct", "ndcg", "map", "time_s",
        ],
    )
    .expect("csv");

    for which in [Which::LinkedIn, Which::Facebook] {
        let ctx = ExpContext::prepare(which, args.scale, args.seed);
        let seeds = metapath_indices(&ctx.metagraphs);
        let n_nonseed = ctx.metagraphs.len() - seeds.len();
        let sweep: Vec<usize> = [0, n_nonseed / 8, n_nonseed / 4, n_nonseed / 2, n_nonseed]
            .into_iter()
            .collect();

        for class in ctx.dataset.classes() {
            let class_name = ctx.dataset.class_names[class.0 as usize].clone();
            let queries = ctx.dataset.labels.queries_of_class(class);
            let split = &repeated_splits(&queries, 0.2, 1, args.seed)[0];
            let examples = make_examples(&ctx, class, &split.train, 1000, args.seed);
            let positives = |q| ctx.dataset.labels.positives_of(q, class);

            // Evaluate a coordinate subset: train + test on restricted index.
            let eval_coords = |coords: &[usize]| -> (f64, f64, Duration) {
                let sub = ctx.index.restrict(coords);
                let model = train(&sub, &examples, &TrainConfig::fast(args.seed));
                let (ndcg, map) = evaluate_ranker(&split.test, 10, positives, |q| {
                    mgp::rank(&sub, q, &model.weights, 10)
                });
                let time = coords.iter().map(|&i| ctx.match_times[i]).sum();
                (ndcg, map, time)
            };

            // Anchor points: seeds only and all metagraphs.
            let (ndcg0, map0, time0) = eval_coords(&seeds);
            let all: Vec<usize> = (0..ctx.metagraphs.len()).collect();
            let (ndcg1, map1, time1) = eval_coords(&all);

            // Seed weights drive the candidate heuristic.
            let seed_index = ctx.index.restrict(&seeds);
            let w0 = train(&seed_index, &examples, &TrainConfig::fast(args.seed));
            let ranked = candidate_ranking(&ctx.metagraphs, &seeds, &w0.weights);

            println!(
                "\n--- {} / {} (seeds {}, non-seeds {}) ---",
                ctx.dataset.name,
                class_name,
                seeds.len(),
                n_nonseed
            );
            println!("|K|\tNDCG%\tMAP%\tTime%\t(NDCG\tMAP\tTime s)");
            for &k in &sweep {
                let mut coords = seeds.clone();
                coords.extend(ranked.iter().take(k).map(|&(j, _)| j));
                let (ndcg, map, time) = eval_coords(&coords);
                let pct = |v: f64, lo: f64, hi: f64| {
                    if (hi - lo).abs() < 1e-12 {
                        100.0
                    } else {
                        100.0 * (v - lo) / (hi - lo)
                    }
                };
                let ndcg_pct = pct(ndcg, ndcg0, ndcg1);
                let map_pct = pct(map, map0, map1);
                let time_pct = pct(time.as_secs_f64(), time0.as_secs_f64(), time1.as_secs_f64());
                println!(
                    "{k}\t{ndcg_pct:.0}%\t{map_pct:.0}%\t{time_pct:.0}%\t({ndcg:.4}\t{map:.4}\t{:.3})",
                    time.as_secs_f64()
                );
                csv.row(&[
                    ctx.dataset.name.clone(),
                    class_name.clone(),
                    k.to_string(),
                    format!("{ndcg_pct:.1}"),
                    format!("{map_pct:.1}"),
                    format!("{time_pct:.1}"),
                    format!("{ndcg:.4}"),
                    format!("{map:.4}"),
                    format!("{:.4}", time.as_secs_f64()),
                ])
                .expect("row");
            }
        }
    }
    let path = csv.finish().expect("flush");
    println!("\ncsv: {}", path.display());
}

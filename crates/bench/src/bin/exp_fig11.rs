//! Fig. 11 — average matching time per metagraph, by pattern size.
//!
//! Compares SymISO, SymISO-R (random order ablation), TurboISO-lite, VF2
//! and QuickSI over the mined metagraphs, grouped by |V_M| ∈ {3, 4, 5}.
//! The paper's findings to reproduce: SymISO fastest, the gap growing with
//! pattern size; SymISO-R noticeably slower than SymISO.
//!
//! SymISO-R's penalty explodes with graph size (a disconnected matching
//! order degenerates towards the cartesian candidate space), so it is
//! measured on a bounded sample of patterns per size with a visit budget;
//! the four real matchers always run the full group.

use mgp_bench::context::Which;
use mgp_bench::{parse_args, CsvWriter, ExpContext};
use mgp_matching::{Matcher, QuickSi, SymIso, TurboLite, Vf2};
use std::time::Instant;

/// Counts enumerated assignments, aborting after `budget` visits.
/// Returns `(visits, hit_budget)`.
fn count_with_budget(
    m: &dyn Matcher,
    g: &mgp_graph::Graph,
    p: &mgp_matching::PatternInfo,
    budget: u64,
) -> (u64, bool) {
    let mut n = 0u64;
    m.enumerate(g, p, &mut |_| {
        n += 1;
        n < budget
    });
    (n, n >= budget)
}

fn main() {
    let args = parse_args();
    println!(
        "=== Fig. 11: matching time per metagraph (scale {:?}) ===",
        args.scale
    );
    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(SymIso::new()),
        Box::new(TurboLite),
        Box::new(Vf2),
        Box::new(QuickSi),
    ];
    let symiso_r = SymIso::random_order(args.seed);
    let budget: u64 = 30_000_000;
    let r_sample = 3usize;

    let mut csv = CsvWriter::create(
        "fig11",
        &[
            "dataset",
            "pattern_nodes",
            "matcher",
            "avg_ms",
            "n_patterns",
            "capped",
        ],
    )
    .expect("csv");

    for which in [Which::LinkedIn, Which::Facebook] {
        let ctx = ExpContext::prepare(which, args.scale, args.seed);
        println!(
            "\n--- {} ({} metagraphs) ---",
            ctx.dataset.name,
            ctx.metagraphs.len()
        );
        println!("|V_M|\tMatcher\t\tavg ms/metagraph\t#patterns");
        for size in 3..=5usize {
            let mut group: Vec<usize> = (0..ctx.patterns.len())
                .filter(|&i| ctx.patterns[i].n_nodes() == size)
                .collect();
            // Deterministic order: cheapest instances first, so the
            // SymISO-R sample prefix is the least pathological subset.
            group.sort_by_key(|&i| ctx.counts[i].n_instances);
            if group.is_empty() {
                continue;
            }
            let mut report = |name: &str, idxs: &[usize], capped: bool, avg_ms: f64| {
                println!(
                    "{size}\t{name:<14}\t{avg_ms:.3}\t\t{}{}",
                    idxs.len(),
                    if capped { " (budget hit)" } else { "" }
                );
                csv.row(&[
                    ctx.dataset.name.clone(),
                    size.to_string(),
                    name.to_owned(),
                    format!("{avg_ms:.4}"),
                    idxs.len().to_string(),
                    capped.to_string(),
                ])
                .expect("row");
            };
            for m in &matchers {
                let t0 = Instant::now();
                let mut capped = false;
                for &i in &group {
                    let (_, hit) =
                        count_with_budget(m.as_ref(), &ctx.dataset.graph, &ctx.patterns[i], budget);
                    capped |= hit;
                }
                let avg_ms = t0.elapsed().as_secs_f64() * 1000.0 / group.len() as f64;
                report(m.name(), &group, capped, avg_ms);
            }
            // SymISO-R on a bounded sample.
            let sample: Vec<usize> = group.iter().copied().take(r_sample).collect();
            let t0 = Instant::now();
            let mut capped = false;
            for &i in &sample {
                let (_, hit) =
                    count_with_budget(&symiso_r, &ctx.dataset.graph, &ctx.patterns[i], budget);
                capped |= hit;
            }
            let avg_ms = t0.elapsed().as_secs_f64() * 1000.0 / sample.len() as f64;
            report(symiso_r.name(), &sample, capped, avg_ms);
        }
    }
    let path = csv.finish().expect("flush");
    println!("\ncsv: {}", path.display());
    println!("(SymISO-R is measured on {r_sample} patterns/size with a {budget}-visit budget.)");
}

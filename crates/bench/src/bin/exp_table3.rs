//! Table III — time costs without dual-stage training.
//!
//! Columns per dataset: mining, matching (all metagraphs, SymISO),
//! training (1000 examples), and online testing time per query — showing
//! that matching dominates the offline phase by orders of magnitude while
//! queries are sub-millisecond.

use mgp_bench::algos::make_examples;
use mgp_bench::context::Which;
use mgp_bench::{parse_args, CsvWriter, ExpContext};
use mgp_eval::repeated_splits;
use mgp_learning::{mgp, train, TrainConfig};
use std::time::Instant;

fn main() {
    let args = parse_args();
    println!(
        "=== Table III: time costs without dual-stage training (scale {:?}) ===",
        args.scale
    );
    println!("Dataset\tMining(s)\tMatching(s)\tTraining(s)\tTesting(s/query)");
    let mut csv = CsvWriter::create(
        "table3",
        &[
            "dataset",
            "mining_s",
            "matching_s",
            "training_s",
            "testing_s_per_query",
        ],
    )
    .expect("csv");

    for which in [Which::LinkedIn, Which::Facebook] {
        let ctx = ExpContext::prepare(which, args.scale, args.seed);
        let class = ctx.dataset.classes()[0];
        let queries = ctx.dataset.labels.queries_of_class(class);
        let split = &repeated_splits(&queries, 0.2, 1, args.seed)[0];
        let examples = make_examples(&ctx, class, &split.train, 1000, args.seed);

        let t0 = Instant::now();
        let model = train(&ctx.index, &examples, &TrainConfig::default());
        let training = t0.elapsed();

        // Online testing: average over the test queries.
        let n_test = split.test.len().max(1);
        let t1 = Instant::now();
        let mut total_results = 0usize;
        for &q in &split.test {
            total_results += mgp::rank(&ctx.index, q, &model.weights, 10).len();
        }
        let per_query = t1.elapsed().as_secs_f64() / n_test as f64;
        assert!(total_results > 0, "online phase returned nothing");

        let mining = ctx.mining_time.as_secs_f64();
        let matching = ctx.total_match_time().as_secs_f64();
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{:.2e}",
            ctx.dataset.name,
            mining,
            matching,
            training.as_secs_f64(),
            per_query
        );
        csv.row(&[
            ctx.dataset.name.clone(),
            format!("{mining:.3}"),
            format!("{matching:.3}"),
            format!("{:.3}", training.as_secs_f64()),
            format!("{per_query:.3e}"),
        ])
        .expect("row");
    }
    let path = csv.finish().expect("flush");
    println!("csv: {}", path.display());
    println!("\n(The paper reports matching >> mining >> training >> testing;");
    println!(" the same ordering should hold above.)");
}

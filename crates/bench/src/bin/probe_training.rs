//! Diagnostic probe (not a paper artefact): inspects the training
//! objective vs ranking quality on the default LinkedIn-like graph.

use mgp_bench::algos::make_examples;
use mgp_bench::context::{ExpContext, Scale, Which};
use mgp_eval::{evaluate_ranker, repeated_splits};
use mgp_learning::baselines::{best_single_metagraph, single_weights, uniform_weights};
use mgp_learning::trainer::log_likelihood;
use mgp_learning::{mgp, train, TrainConfig};

fn main() {
    let ctx = ExpContext::prepare(Which::LinkedIn, Scale::Default, 42);
    let class = ctx.dataset.classes()[0];
    let queries = ctx.dataset.labels.queries_of_class(class);
    let split = &repeated_splits(&queries, 0.2, 1, 42)[0];
    let examples = make_examples(&ctx, class, &split.train, 1000, 42);
    let positives = |q| ctx.dataset.labels.positives_of(q, class);
    let idx = &ctx.index;
    let n = idx.n_metagraphs();

    let eval = |w: &[f64]| {
        let (ndcg, _) = evaluate_ranker(&split.test, 10, positives, |q| mgp::rank(idx, q, w, 10));
        ndcg
    };

    let uni = uniform_weights(n);
    println!(
        "uniform:   LL={:10.2} NDCG={:.4}",
        log_likelihood(idx, &examples, 5.0, &uni),
        eval(&uni)
    );

    let best = best_single_metagraph(idx, &split.train, positives, 10);
    let onehot = single_weights(n, best);
    println!(
        "best(M{best}): LL={:10.2} NDCG={:.4}  ({})",
        log_likelihood(idx, &examples, 5.0, &onehot),
        eval(&onehot),
        ctx.metagraphs[best].brief()
    );

    let model = train(idx, &examples, &TrainConfig::default());
    let mut iw: Vec<(usize, f64)> = model.weights.iter().copied().enumerate().collect();
    iw.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "trained:   LL={:10.2} NDCG={:.4} iters={}",
        model.log_likelihood,
        eval(&model.weights),
        model.iterations
    );
    for &(i, w) in iw.iter().take(6) {
        println!(
            "   M{i:<3} w={w:.3}  instances={:<8} {}",
            ctx.counts[i].n_instances,
            ctx.metagraphs[i].brief()
        );
    }
    // Mixture probes: top-1 learned + floor on everything else.
    let top = iw[0].0;
    for floor in [0.02, 0.1, 0.3] {
        let mut w = vec![floor; n];
        w[top] = 1.0;
        println!(
            "onehot(M{top})+floor {floor}: LL={:10.2} NDCG={:.4}",
            log_likelihood(idx, &examples, 5.0, &w),
            eval(&w)
        );
    }
    // Binary-transform variant of the whole index.
    let bin_idx = mgp_index::VectorIndex::from_counts(&ctx.counts, mgp_index::Transform::Binary);
    let eval_bin = |w: &[f64]| {
        let (ndcg, _) = evaluate_ranker(&split.test, 10, positives, |q| {
            mgp::rank(&bin_idx, q, w, 10)
        });
        ndcg
    };
    let uni_b = uniform_weights(n);
    println!(
        "binary uniform: LL={:10.2} NDCG={:.4}",
        log_likelihood(&bin_idx, &examples, 5.0, &uni_b),
        eval_bin(&uni_b)
    );
    let model_b = train(&bin_idx, &examples, &TrainConfig::default());
    let mut iwb: Vec<(usize, f64)> = model_b.weights.iter().copied().enumerate().collect();
    iwb.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "binary trained: LL={:10.2} NDCG={:.4} iters={} top={:?}",
        model_b.log_likelihood,
        eval_bin(&model_b.weights),
        model_b.iterations,
        iwb.iter()
            .take(4)
            .map(|&(i, w)| format!("M{i}:{w:.2}"))
            .collect::<Vec<_>>()
    );

    // Type legend.
    print!("types: ");
    for (id, name) in ctx.dataset.graph.types().iter() {
        print!("{id}={name} ");
    }
    println!();
}

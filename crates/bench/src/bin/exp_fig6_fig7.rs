//! Fig. 6 (NDCG@10) and Fig. 7 (MAP@10) — accuracy of MGP vs the four
//! baselines, varying the number of training examples |Ω|.
//!
//! Grid: 2 datasets × 2 classes × |Ω| ∈ {10, 100, 1000} × 5 algorithms,
//! averaged over `--splits` random 20/80 splits (paper: 10).

use mgp_bench::context::Which;
use mgp_bench::output::f4;
use mgp_bench::{eval_algo, parse_args, Algo, CsvWriter, ExpContext};
use mgp_eval::repeated_splits;

fn main() {
    let args = parse_args();
    let omegas: &[usize] = &[10, 100, 1000];
    println!(
        "=== Fig. 6 & 7: accuracy vs |Omega| (scale {:?}, {} splits) ===",
        args.scale, args.n_splits
    );
    let mut csv = CsvWriter::create(
        "fig6_fig7",
        &["dataset", "class", "omega", "algo", "ndcg", "map"],
    )
    .expect("csv");

    for which in [Which::LinkedIn, Which::Facebook] {
        let ctx = ExpContext::prepare(which, args.scale, args.seed);
        for class in ctx.dataset.classes() {
            let class_name = ctx.dataset.class_names[class.0 as usize].clone();
            let queries = ctx.dataset.labels.queries_of_class(class);
            let splits = repeated_splits(&queries, 0.2, args.n_splits, args.seed);
            println!(
                "\n--- {} / {} ({} queries) ---",
                ctx.dataset.name,
                class_name,
                queries.len()
            );
            println!("|Omega|\tAlgo\tNDCG@10\tMAP@10");
            for &omega in omegas {
                for algo in Algo::ALL {
                    let mut ndcg_sum = 0.0;
                    let mut map_sum = 0.0;
                    for (si, split) in splits.iter().enumerate() {
                        let (ndcg, map) = eval_algo(
                            &ctx,
                            algo,
                            class,
                            &split.train,
                            &split.test,
                            omega,
                            args.seed + si as u64,
                            10,
                        );
                        ndcg_sum += ndcg;
                        map_sum += map;
                    }
                    let (ndcg, map) = (
                        ndcg_sum / splits.len() as f64,
                        map_sum / splits.len() as f64,
                    );
                    println!("{omega}\t{}\t{}\t{}", algo.name(), f4(ndcg), f4(map));
                    csv.row(&[
                        ctx.dataset.name.clone(),
                        class_name.clone(),
                        omega.to_string(),
                        algo.name().to_owned(),
                        f4(ndcg),
                        f4(map),
                    ])
                    .expect("csv row");
                }
            }
        }
    }
    let path = csv.finish().expect("flush");
    println!("\ncsv: {}", path.display());
}

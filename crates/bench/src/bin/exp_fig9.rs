//! Fig. 9 — correlation of structural and functional similarity.
//!
//! Trains optimal weights on all metagraphs per class, then bins every
//! metagraph pair by structural similarity `SS` (MCS-based) and reports the
//! mean pairwise functional similarity `FS = 1 − |wᵢ − wⱼ|` per bin. The
//! paper's finding — and the foundation of the candidate heuristic — is
//! that FS rises with SS.

// Triangular pair loops over two parallel vectors read clearer with
// indices than with the enumerate/skip chains clippy proposes.
#![allow(clippy::needless_range_loop)]

use mgp_bench::algos::make_examples;
use mgp_bench::context::Which;
use mgp_bench::{parse_args, CsvWriter, ExpContext};
use mgp_eval::repeated_splits;
use mgp_learning::{functional_similarity, train, TrainConfig};
use mgp_metagraph::structural_similarity;

const BINS: [(f64, f64); 5] = [(0.0, 0.2), (0.2, 0.4), (0.4, 0.6), (0.6, 0.8), (0.8, 1.0)];

fn main() {
    let args = parse_args();
    println!(
        "=== Fig. 9: structural vs functional similarity (scale {:?}) ===",
        args.scale
    );
    let mut csv = CsvWriter::create(
        "fig9",
        &[
            "dataset",
            "class",
            "ss_bin_lo",
            "ss_bin_hi",
            "mean_fs",
            "n_pairs",
        ],
    )
    .expect("csv");

    for which in [Which::LinkedIn, Which::Facebook] {
        let ctx = ExpContext::prepare(which, args.scale, args.seed);
        let n = ctx.metagraphs.len();

        // Pairwise SS once per dataset.
        let mut ss = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let s = structural_similarity(&ctx.metagraphs[i], &ctx.metagraphs[j]);
                ss[i][j] = s;
            }
        }

        for class in ctx.dataset.classes() {
            let class_name = ctx.dataset.class_names[class.0 as usize].clone();
            let queries = ctx.dataset.labels.queries_of_class(class);
            let split = &repeated_splits(&queries, 0.2, 1, args.seed)[0];
            let examples = make_examples(&ctx, class, &split.train, 1000, args.seed);
            let model = train(&ctx.index, &examples, &TrainConfig::fast(args.seed));

            println!("\n--- {} / {} ---", ctx.dataset.name, class_name);
            println!("SS bin\t\tmean FS\t#pairs");
            for &(lo, hi) in &BINS {
                let mut sum = 0.0;
                let mut count = 0usize;
                for i in 0..n {
                    for j in (i + 1)..n {
                        let s = ss[i][j];
                        let inside = s >= lo && (s < hi || (hi == 1.0 && s <= 1.0));
                        if inside {
                            sum += functional_similarity(model.weights[i], model.weights[j]);
                            count += 1;
                        }
                    }
                }
                let mean = if count == 0 {
                    f64::NAN
                } else {
                    sum / count as f64
                };
                println!("[{lo:.1},{hi:.1})\t{mean:.3}\t{count}");
                csv.row(&[
                    ctx.dataset.name.clone(),
                    class_name.clone(),
                    lo.to_string(),
                    hi.to_string(),
                    format!("{mean:.4}"),
                    count.to_string(),
                ])
                .expect("row");
            }
        }
    }
    let path = csv.finish().expect("flush");
    println!("\ncsv: {}", path.display());
}

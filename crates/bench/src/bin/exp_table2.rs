//! Table II — description of datasets.
//!
//! Prints, per dataset: #Nodes, #Edges, #Types, #Metagraphs (mined,
//! symmetric, ≥ 2 anchors), and #Queries per class — the same columns the
//! paper reports.

use mgp_bench::context::Which;
use mgp_bench::{parse_args, CsvWriter, ExpContext};
use mgp_graph::GraphStats;

fn main() {
    let args = parse_args();
    println!(
        "=== Table II: description of datasets (scale: {:?}) ===",
        args.scale
    );
    println!("Dataset\t#Nodes\t#Edges\t#Types\t#Metagraphs\t#Queries");

    let mut csv = CsvWriter::create(
        "table2",
        &[
            "dataset",
            "nodes",
            "edges",
            "types",
            "metagraphs",
            "class",
            "queries",
        ],
    )
    .expect("csv");

    for which in [Which::LinkedIn, Which::Facebook] {
        let ctx = ExpContext::prepare(which, args.scale, args.seed);
        let st = GraphStats::compute(&ctx.dataset.graph);
        let queries: Vec<String> = ctx
            .dataset
            .classes()
            .iter()
            .map(|&c| {
                let n = ctx.dataset.labels.queries_of_class(c).len();
                let name = &ctx.dataset.class_names[c.0 as usize];
                format!("{n} ({name})")
            })
            .collect();
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            ctx.dataset.name,
            st.n_nodes,
            st.n_edges,
            st.n_types,
            ctx.metagraphs.len(),
            queries.join(", ")
        );
        for &c in &ctx.dataset.classes() {
            csv.row(&[
                ctx.dataset.name.clone(),
                st.n_nodes.to_string(),
                st.n_edges.to_string(),
                st.n_types.to_string(),
                ctx.metagraphs.len().to_string(),
                ctx.dataset.class_names[c.0 as usize].clone(),
                ctx.dataset.labels.queries_of_class(c).len().to_string(),
            ])
            .expect("csv row");
        }
        let n_paths = mgp_learning::baselines::metapath_indices(&ctx.metagraphs).len();
        println!(
            "  (metapaths: {n_paths} of {} = {:.1}%; matching: {:.2}s; mining: {:.2}s)",
            ctx.metagraphs.len(),
            100.0 * n_paths as f64 / ctx.metagraphs.len().max(1) as f64,
            ctx.total_match_time().as_secs_f64(),
            ctx.mining_time.as_secs_f64(),
        );
    }
    let path = csv.finish().expect("csv flush");
    println!("csv: {}", path.display());
}

//! Ablation: design choices called out in DESIGN.md.
//!
//! 1. **Count transform** (Raw vs Log1p vs Binary) for the metagraph
//!    vectors — the paper notes the vectors "can be further transformed"
//!    (Sect. II-A); this quantifies the choice.
//! 2. **Hard-negative fraction** in training-example sampling (0 = the
//!    naive random-stranger protocol).
//!
//! Reported as NDCG@10 / MAP@10 for learned MGP per dataset/class.

use mgp_bench::context::Which;
use mgp_bench::output::f4;
use mgp_bench::{parse_args, CsvWriter, ExpContext};
use mgp_eval::{evaluate_ranker, repeated_splits};
use mgp_graph::NodeId;
use mgp_index::{Transform, VectorIndex};
use mgp_learning::{mgp, sample_examples_with_pool, train, TrainConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = parse_args();
    println!("=== Ablations (scale {:?}) ===", args.scale);
    let mut csv = CsvWriter::create(
        "ablation",
        &["dataset", "class", "transform", "hard_frac", "ndcg", "map"],
    )
    .expect("csv");

    for which in [Which::LinkedIn, Which::Facebook] {
        let ctx = ExpContext::prepare(which, args.scale, args.seed);
        for class in ctx.dataset.classes() {
            let class_name = ctx.dataset.class_names[class.0 as usize].clone();
            let queries = ctx.dataset.labels.queries_of_class(class);
            let split = &repeated_splits(&queries, 0.2, 1, args.seed)[0];
            let positives = |q| ctx.dataset.labels.positives_of(q, class);
            println!("\n--- {} / {} ---", ctx.dataset.name, class_name);
            println!("transform\thard_frac\tNDCG@10\tMAP@10");

            for transform in [Transform::Raw, Transform::Log1p, Transform::Binary] {
                let index = VectorIndex::from_counts(&ctx.counts, transform);
                for hard_frac in [0.0, 0.9] {
                    let anchors = ctx.anchors();
                    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
                    let examples = sample_examples_with_pool(
                        &split.train,
                        |q| ctx.dataset.labels.positives_of(q, class),
                        |q, v| ctx.dataset.labels.has(q, v, class),
                        &anchors,
                        |q| index.partners(q).iter().map(|&v| NodeId(v)).collect(),
                        hard_frac,
                        1000,
                        &mut rng,
                    );
                    let model = train(&index, &examples, &TrainConfig::fast(args.seed));
                    let (ndcg, map) = evaluate_ranker(&split.test, 10, positives, |q| {
                        mgp::rank(&index, q, &model.weights, 10)
                    });
                    println!("{transform:?}\t{hard_frac}\t{}\t{}", f4(ndcg), f4(map));
                    csv.row(&[
                        ctx.dataset.name.clone(),
                        class_name.clone(),
                        format!("{transform:?}"),
                        hard_frac.to_string(),
                        f4(ndcg),
                        f4(map),
                    ])
                    .expect("row");
                }
            }
        }
    }
    let path = csv.finish().expect("flush");
    println!("\ncsv: {}", path.display());
}

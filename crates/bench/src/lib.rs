//! # mgp-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Sect. V), plus
//! criterion micro-benchmarks. Every binary prints the same rows/series the
//! paper reports and writes CSV to `target/experiments/`.
//!
//! | Binary | Artefact |
//! |--------|----------|
//! | `exp_table2` | Table II — dataset description |
//! | `exp_table3` | Table III — offline/online time costs |
//! | `exp_fig4` | Fig. 4 — sparsity of optimal weights |
//! | `exp_fig6_fig7` | Fig. 6 + 7 — NDCG/MAP vs \|Ω\| for all 5 algorithms |
//! | `exp_fig8` | Fig. 8 — dual-stage accuracy/time vs \|K\| |
//! | `exp_fig9` | Fig. 9 — structural vs functional similarity |
//! | `exp_fig10` | Fig. 10 — CH vs RCH |
//! | `exp_fig11` | Fig. 11 — matching time per algorithm and pattern size |
//!
//! All binaries accept `--scale tiny|default|paper` (default `default`) and
//! `--seed N`. `paper` approaches the magnitudes of Table II and can take
//! hours, exactly like the original offline phase (Table III reports ~10⁴ s
//! of matching); `default` preserves every qualitative shape in minutes.

#![warn(missing_docs)]

pub mod algos;
pub mod context;
pub mod output;

pub use algos::{eval_algo, Algo};
pub use context::{parse_args, ExpArgs, ExpContext, Scale};
pub use output::CsvWriter;

//! Shared experiment setup: dataset generation, mining, matching, indexing.

use mgp_datagen::{
    facebook::FacebookConfig, generate_facebook, generate_linkedin, linkedin::LinkedInConfig,
    ClassId, Dataset,
};
use mgp_graph::NodeId;
use mgp_index::{Transform, VectorIndex};
use mgp_matching::parallel::match_all_timed;
use mgp_matching::{AnchorCounts, PatternInfo, SymIso};
use mgp_metagraph::Metagraph;
use mgp_mining::{mine, MinerConfig};
use std::time::Duration;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast, for smoke runs and CI.
    Tiny,
    /// Minutes; preserves all qualitative shapes. The default.
    Default,
    /// Approaches Table II magnitudes; hours of matching, like the paper.
    Paper,
}

/// Parsed command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of train/test splits (paper: 10).
    pub n_splits: usize,
}

/// Parses `--scale`, `--seed`, `--splits` from `std::env::args`.
pub fn parse_args() -> ExpArgs {
    let mut args = ExpArgs {
        scale: Scale::Default,
        seed: 42,
        n_splits: 3,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = match argv.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("paper") => Scale::Paper,
                    _ => Scale::Default,
                };
            }
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--splits" => {
                i += 1;
                args.n_splits = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(3);
            }
            _ => {}
        }
        i += 1;
    }
    args
}

/// Which dataset an experiment context wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// The LinkedIn-like graph (classes college / coworker).
    LinkedIn,
    /// The Facebook-like graph (classes family / classmate).
    Facebook,
}

/// Everything the accuracy experiments need, prepared once: the dataset,
/// the mined metagraph set, all matched counts (SymISO), and the full
/// vector index.
pub struct ExpContext {
    /// The generated dataset with ground truth.
    pub dataset: Dataset,
    /// Mined metagraphs.
    pub metagraphs: Vec<Metagraph>,
    /// Per-metagraph matcher analyses.
    pub patterns: Vec<PatternInfo>,
    /// Per-metagraph anchor counts.
    pub counts: Vec<AnchorCounts>,
    /// Per-metagraph SymISO matching time.
    pub match_times: Vec<Duration>,
    /// Full index over all metagraphs.
    pub index: VectorIndex,
    /// Mining wall-clock.
    pub mining_time: Duration,
}

impl ExpContext {
    /// Generates, mines, matches and indexes a dataset at a given scale.
    pub fn prepare(which: Which, scale: Scale, seed: u64) -> ExpContext {
        let dataset = match (which, scale) {
            (Which::LinkedIn, Scale::Tiny) => generate_linkedin(&LinkedInConfig::tiny(seed)),
            (Which::LinkedIn, Scale::Default) => generate_linkedin(&LinkedInConfig {
                seed,
                ..LinkedInConfig::default()
            }),
            (Which::LinkedIn, Scale::Paper) => generate_linkedin(&LinkedInConfig {
                seed,
                ..LinkedInConfig::paper_scale()
            }),
            (Which::Facebook, Scale::Tiny) => generate_facebook(&FacebookConfig::tiny(seed)),
            (Which::Facebook, Scale::Default) => generate_facebook(&FacebookConfig {
                seed,
                ..FacebookConfig::default()
            }),
            (Which::Facebook, Scale::Paper) => generate_facebook(&FacebookConfig {
                seed,
                ..FacebookConfig::paper_scale()
            }),
        };
        Self::from_dataset(dataset, scale)
    }

    /// Mines/matches/indexes an existing dataset.
    pub fn from_dataset(dataset: Dataset, scale: Scale) -> ExpContext {
        let min_support = match scale {
            Scale::Tiny => 5,
            Scale::Default => 10,
            Scale::Paper => 20,
        };
        let mut miner = MinerConfig::paper_defaults(dataset.anchor_type, min_support);
        // Keep the pattern catalogue bounded at small scales so the full
        // matching pass (needed by Fig. 4/6/7/9) stays tractable.
        miner.max_patterns = Some(match scale {
            Scale::Tiny => 60,
            Scale::Default => 150,
            Scale::Paper => 1200,
        });
        let t0 = std::time::Instant::now();
        let mined = mine(&dataset.graph, &miner);
        let mining_time = t0.elapsed();
        let metagraphs: Vec<Metagraph> = mined.into_iter().map(|m| m.metagraph).collect();
        let patterns: Vec<PatternInfo> = metagraphs
            .iter()
            .map(|m| PatternInfo::new(m.clone(), dataset.anchor_type))
            .collect();
        let results = match_all_timed(&dataset.graph, &patterns, &SymIso::new(), 0);
        let (counts, match_times): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        // Binary (presence) vectors: hub-heavy star patterns otherwise
        // dominate the likelihood through inflated counts while carrying no
        // extra ranking information — see the transform ablation
        // (`exp_ablation`) and EXPERIMENTS.md.
        let index = VectorIndex::from_counts(&counts, Transform::Binary);
        ExpContext {
            dataset,
            metagraphs,
            patterns,
            counts,
            match_times,
            index,
            mining_time,
        }
    }

    /// All anchor nodes of the dataset.
    pub fn anchors(&self) -> Vec<NodeId> {
        self.dataset
            .graph
            .nodes_of_type(self.dataset.anchor_type)
            .to_vec()
    }

    /// The positive answers of `q` under `class`.
    pub fn positives(&self, q: NodeId, class: ClassId) -> Vec<NodeId> {
        self.dataset.labels.positives_of(q, class)
    }

    /// Total SymISO matching time over all metagraphs.
    pub fn total_match_time(&self) -> Duration {
        self.match_times.iter().sum()
    }
}

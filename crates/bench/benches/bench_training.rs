//! Criterion micro-benchmark behind Table III's training column:
//! gradient-ascent learning over the metagraph vector index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgp_bench::algos::make_examples;
use mgp_bench::context::{ExpContext, Scale, Which};
use mgp_eval::repeated_splits;
use mgp_learning::{train, TrainConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_training(c: &mut Criterion) {
    let ctx = ExpContext::prepare(Which::Facebook, Scale::Tiny, 42);
    let class = ctx.dataset.classes()[0];
    let queries = ctx.dataset.labels.queries_of_class(class);
    let split = &repeated_splits(&queries, 0.2, 1, 42)[0];

    let mut group = c.benchmark_group("table3_training");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [10usize, 100] {
        let examples = make_examples(&ctx, class, &split.train, n, 42);
        let cfg = TrainConfig {
            restarts: 1,
            max_iterations: 100,
            ..TrainConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("train", n), &examples, |b, ex| {
            b.iter(|| black_box(train(&ctx.index, ex, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);

//! Criterion micro-benchmark behind Table III's online column: per-query
//! ranking latency with pre-matched metagraph vectors.

use criterion::{criterion_group, criterion_main, Criterion};
use mgp_bench::algos::make_examples;
use mgp_bench::context::{ExpContext, Scale, Which};
use mgp_eval::repeated_splits;
use mgp_learning::{mgp, train, TrainConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_online_query(c: &mut Criterion) {
    let ctx = ExpContext::prepare(Which::Facebook, Scale::Tiny, 42);
    let class = ctx.dataset.classes()[0];
    let queries = ctx.dataset.labels.queries_of_class(class);
    let split = &repeated_splits(&queries, 0.2, 1, 42)[0];
    let examples = make_examples(&ctx, class, &split.train, 200, 42);
    let model = train(&ctx.index, &examples, &TrainConfig::fast(42));

    let mut group = c.benchmark_group("table3_online");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("rank_top10", |b| {
        let mut qi = 0usize;
        b.iter(|| {
            let q = split.test[qi % split.test.len()];
            qi += 1;
            black_box(mgp::rank(&ctx.index, q, &model.weights, 10))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_online_query);
criterion_main!(benches);

//! Serving-layer benchmark: the seed's sequential per-query online loop
//! (`mgp::rank`, as in `bench_online`) vs `QueryServer::rank_batch` — the
//! batched, sharded, precomputed-dot serving path — on the Facebook/Tiny
//! context.
//!
//! Before timing anything it asserts the two paths return *identical*
//! top-k lists, so the speedup is never bought with a behaviour change.
//! Besides the criterion groups it prints an explicit throughput summary
//! (queries/s and speedup factor) over the same batch and asserts the
//! acceptance bar: batched serving ≥ 2× the sequential loop.

use criterion::{criterion_group, criterion_main, Criterion};
use mgp_bench::algos::make_examples;
use mgp_bench::context::{ExpContext, Scale, Which};
use mgp_eval::repeated_splits;
use mgp_graph::NodeId;
use mgp_learning::{mgp, train, TrainConfig};
use mgp_online::{QueryServer, ServeConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

const BATCH: usize = 2048;
const TOP_K: usize = 10;

struct Setup {
    ctx: ExpContext,
    weights: Vec<f64>,
    server: QueryServer,
    cached_server: QueryServer,
    class: usize,
    cached_class: usize,
    queries: Vec<NodeId>,
}

fn setup() -> Setup {
    let ctx = ExpContext::prepare(Which::Facebook, Scale::Tiny, 42);
    let class = ctx.dataset.classes()[0];
    let queries = ctx.dataset.labels.queries_of_class(class);
    let split = &repeated_splits(&queries, 0.2, 1, 42)[0];
    let examples = make_examples(&ctx, class, &split.train, 200, 42);
    let model = train(&ctx.index, &examples, &TrainConfig::fast(42));

    // Cache off: measures pure ranking throughput — an apples-to-apples
    // comparison with the per-query loop.
    let mut server = QueryServer::new(ServeConfig {
        cache_capacity: 0,
        ..Default::default()
    });
    let class_id = server.add_class("class0", &ctx.index, &model.weights);
    // Cache on: the steady-state hot path for repeated queries.
    let mut cached_server = QueryServer::new(ServeConfig::default());
    let cached_class = cached_server.add_class("class0", &ctx.index, &model.weights);

    // A serving-sized batch cycling over the test queries.
    let batch: Vec<NodeId> = (0..BATCH)
        .map(|i| split.test[i % split.test.len()])
        .collect();

    Setup {
        ctx,
        weights: model.weights,
        server,
        cached_server,
        class: class_id,
        cached_class,
        queries: batch,
    }
}

/// The seed's online loop: one `mgp::rank_with_scores` call per query.
fn sequential_loop(s: &Setup) -> usize {
    let mut total = 0;
    for &q in &s.queries {
        total += mgp::rank_with_scores(&s.ctx.index, q, &s.weights, TOP_K).len();
    }
    total
}

fn assert_identical(s: &Setup) {
    let batch = s.server.rank_batch(s.class, &s.queries, TOP_K);
    for (&q, got) in s.queries.iter().zip(&batch) {
        let want = mgp::rank_with_scores(&s.ctx.index, q, &s.weights, TOP_K);
        assert_eq!(**got, want, "QueryServer diverged from mgp::rank at q={q}");
    }
    let cached = s
        .cached_server
        .rank_batch(s.cached_class, &s.queries, TOP_K);
    for (a, b) in batch.iter().zip(&cached) {
        assert_eq!(**a, **b, "cached server diverged");
    }
}

fn time_queries_per_sec(mut f: impl FnMut() -> usize, n_queries: usize) -> f64 {
    // Warm-up, then average over a fixed wall-time budget.
    black_box(f());
    let budget = Duration::from_millis(750);
    let t0 = Instant::now();
    let mut rounds = 0u32;
    while t0.elapsed() < budget {
        black_box(f());
        rounds += 1;
    }
    (rounds as f64 * n_queries as f64) / t0.elapsed().as_secs_f64()
}

fn bench_serving(c: &mut Criterion) {
    let s = setup();
    assert_identical(&s);

    let mut group = c.benchmark_group("serving");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("sequential_per_query", |b| {
        b.iter(|| black_box(sequential_loop(&s)))
    });
    // Per-query over the precomputed tables, no dedup/cache — isolates the
    // table-precompute win from the batching wins.
    group.bench_function("precomputed_per_query", |b| {
        b.iter(|| black_box(s.server.rank_batch_sequential(s.class, &s.queries, TOP_K)))
    });
    group.bench_function("batched_rank_batch", |b| {
        b.iter(|| black_box(s.server.rank_batch(s.class, &s.queries, TOP_K)))
    });
    group.bench_function("batched_rank_batch_hot_cache", |b| {
        b.iter(|| {
            black_box(
                s.cached_server
                    .rank_batch(s.cached_class, &s.queries, TOP_K),
            )
        })
    });
    group.finish();

    // Explicit acceptance summary: batched throughput vs the seed loop.
    let seq_qps = time_queries_per_sec(|| sequential_loop(&s), s.queries.len());
    let pre_qps = time_queries_per_sec(
        || {
            s.server
                .rank_batch_sequential(s.class, &s.queries, TOP_K)
                .len()
        },
        s.queries.len(),
    );
    let batch_qps = time_queries_per_sec(
        || s.server.rank_batch(s.class, &s.queries, TOP_K).len(),
        s.queries.len(),
    );
    let hot_qps = time_queries_per_sec(
        || {
            s.cached_server
                .rank_batch(s.cached_class, &s.queries, TOP_K)
                .len()
        },
        s.queries.len(),
    );
    println!(
        "--- serving throughput (batch = {} queries, k = {TOP_K}, {} worker(s), {} shard(s)) ---",
        s.queries.len(),
        s.server.workers(),
        s.server.n_shards()
    );
    println!("sequential per-query loop : {seq_qps:>12.0} queries/s");
    println!(
        "precomputed, per-query    : {pre_qps:>12.0} queries/s  ({:.2}x)  [no dedup/cache]",
        pre_qps / seq_qps
    );
    println!(
        "QueryServer::rank_batch   : {batch_qps:>12.0} queries/s  ({:.2}x)  [{} distinct queries]",
        batch_qps / seq_qps,
        {
            let mut qs: Vec<u32> = s.queries.iter().map(|q| q.0).collect();
            qs.sort_unstable();
            qs.dedup();
            qs.len()
        }
    );
    println!(
        "rank_batch, hot cache     : {hot_qps:>12.0} queries/s  ({:.2}x)",
        hot_qps / seq_qps
    );
    let snap = s.cached_server.stats();
    println!(
        "cache: {} hits / {} misses; batch latency p50 {:?} p95 {:?} p99 {:?} max {:?}",
        snap.cache_hits,
        snap.cache_misses,
        snap.latency.p50(),
        snap.latency.p95(),
        snap.latency.p99(),
        snap.latency.max
    );
    assert!(
        batch_qps / seq_qps >= 2.0,
        "acceptance: batched serving must be ≥ 2x the sequential loop (got {:.2}x)",
        batch_qps / seq_qps
    );
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);

//! Criterion micro-benchmark: typed-object-graph substrate operations that
//! dominate matching inner loops.

use criterion::{criterion_group, criterion_main, Criterion};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_graph_ops(c: &mut Criterion) {
    let d = generate_facebook(&FacebookConfig::default());
    let g = &d.graph;
    let user_t = d.anchor_type;
    let users = g.nodes_of_type(user_t);
    let school_t = g.types().id("school").unwrap();

    let mut group = c.benchmark_group("graph");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("neighbors", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let u = users[i % users.len()];
            i += 1;
            black_box(g.neighbors(u).len())
        })
    });
    group.bench_function("neighbors_of_type", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let u = users[i % users.len()];
            i += 1;
            black_box(g.neighbors_of_type(u, school_t).len())
        })
    });
    group.bench_function("has_edge", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let u = users[i % users.len()];
            let v = users[(i * 13 + 7) % users.len()];
            i += 1;
            black_box(g.has_edge(u, v))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);

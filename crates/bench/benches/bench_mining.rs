//! Criterion micro-benchmark behind Table III's mining column: GRAMI-style
//! frequent metagraph mining.

use criterion::{criterion_group, criterion_main, Criterion};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig};
use mgp_mining::{mine, MinerConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_mining(c: &mut Criterion) {
    let d = generate_facebook(&FacebookConfig::tiny(42));
    let mut cfg = MinerConfig::paper_defaults(d.anchor_type, 5);
    cfg.max_patterns = Some(60);

    let mut group = c.benchmark_group("table3_mining");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("mine_facebook_tiny", |b| {
        b.iter(|| black_box(mine(&d.graph, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);

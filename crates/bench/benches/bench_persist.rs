//! Persistence benchmark: warm start from an mmap snapshot
//! (`SearchEngine::open_snapshot` — map the typed sections, verify
//! checksums, replay the journal tail) vs the cold start it replaces —
//! full re-registration: mine, rematch every pattern, retrain, rebuild
//! the serving tables from scratch.
//!
//! Acceptance (asserted, run in CI): on the Facebook-scale dataset the
//! warm start must be **≥ 10× faster** than the cold start, and the
//! warm-started engine + server must answer bit-identically to the live
//! pair that wrote the snapshot — both straight off the sections and
//! after journal-tail replay of post-snapshot churn.

use mgp_core::{PipelineConfig, SearchEngine, TrainingStrategy};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use mgp_graph::{GraphDelta, NodeId};
use mgp_learning::{sample_examples, TrainConfig, TrainingExample};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Warm-start timing repetitions (cheap, so average several).
const WARM_REPS: u32 = 5;
/// Cold-start timing repetitions (expensive — mining + matching).
const COLD_REPS: u32 = 2;
/// Query nodes checked for bit-identical equivalence.
const EQUIV_QUERIES: usize = 60;
/// Post-snapshot churn deltas replayed from the journal tail.
const TAIL_DELTAS: usize = 5;

fn examples(
    d: &mgp_datagen::Dataset,
    class: mgp_datagen::ClassId,
    n: usize,
    seed: u64,
) -> Vec<TrainingExample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let queries = d.labels.queries_of_class(class);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    sample_examples(
        &queries,
        |q| d.labels.positives_of(q, class),
        |q, v| d.labels.has(q, v, class),
        &anchors,
        n,
        &mut rng,
    )
}

/// The cold path a restart pays without a snapshot: mine + match + train
/// + build serving tables, from the graph alone.
fn cold_start(d: &mgp_datagen::Dataset) -> (SearchEngine, mgp_core::QueryServer) {
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    engine.train_class("family", &examples(d, FAMILY, 200, 9));
    engine.train_class("classmate", &examples(d, CLASSMATE, 200, 11));
    let server = engine.serve();
    (engine, server)
}

fn churn_delta(engine: &SearchEngine, salt: usize) -> GraphDelta {
    let g = engine.graph();
    let anchors = g.nodes_of_type(engine.anchor_type());
    let attrs: Vec<NodeId> = g
        .nodes()
        .filter(|&v| g.node_type(v) != engine.anchor_type() && g.degree(v) > 0)
        .collect();
    let mut delta = GraphDelta::for_graph(g);
    let nu = delta.add_node(engine.anchor_type(), format!("bench-user-{salt}"));
    delta.add_edge(nu, attrs[salt % attrs.len()]).unwrap();
    delta
        .add_edge(
            anchors[(salt * 13) % anchors.len()],
            attrs[(salt + 5) % attrs.len()],
        )
        .unwrap();
    delta
}

/// Asserts live and restored answers match bit-for-bit over a spread of
/// queries, both at the engine and at the serving layer.
fn assert_equiv(
    live: (&SearchEngine, &mgp_core::QueryServer),
    restored: (&SearchEngine, &mgp_core::QueryServer),
    context: &str,
) {
    let queries: Vec<NodeId> = live
        .0
        .graph()
        .nodes_of_type(live.0.anchor_type())
        .iter()
        .step_by(3)
        .copied()
        .take(EQUIV_QUERIES)
        .collect();
    for class in ["family", "classmate"] {
        let lcid = live.1.class_id(class).unwrap();
        let rcid = restored.1.class_id(class).unwrap();
        assert_eq!(
            live.1.table_stats(lcid),
            restored.1.table_stats(rcid),
            "{context}: table_stats {class}"
        );
        for &q in &queries {
            assert_eq!(
                live.0.search(class, q, 10),
                restored.0.search(class, q, 10),
                "{context}: search {class} q={q}"
            );
            assert_eq!(
                *live.1.rank(lcid, q, 10),
                *restored.1.rank(rcid, q, 10),
                "{context}: rank {class} q={q}"
            );
        }
    }
}

fn main() {
    let d = generate_facebook(&FacebookConfig::tiny(42));
    let dir = std::env::temp_dir().join(format!("mgp_bench_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.snap");

    // Cold start, timed: this is what every restart costs without a
    // snapshot (and what the snapshot amortises away).
    let mut cold_total = Duration::ZERO;
    let mut built = None;
    for _ in 0..COLD_REPS {
        let t0 = Instant::now();
        built = Some(cold_start(&d));
        cold_total += t0.elapsed();
    }
    let cold_mean = cold_total / COLD_REPS;
    let (mut engine, server) = built.unwrap();
    println!(
        "--- persistence (facebook-scale: {} nodes, {} edges, {} patterns, 2 classes) ---",
        engine.graph().n_nodes(),
        engine.graph().n_edges(),
        engine.metagraphs().len()
    );
    println!("cold start (mine+match+train+serve) : {cold_mean:>12.2?} mean of {COLD_REPS}");

    // Snapshot, then warm start, timed.
    engine.save_snapshot_with(&path, &server).unwrap();
    let snap_bytes = std::fs::metadata(&path).unwrap().len();
    let mut warm_total = Duration::ZERO;
    let mut restored = None;
    for _ in 0..WARM_REPS {
        let t0 = Instant::now();
        restored = Some(SearchEngine::open_snapshot(&path).unwrap());
        warm_total += t0.elapsed();
    }
    let warm_mean = warm_total / WARM_REPS;
    let load = restored.unwrap();
    assert_eq!(load.replayed, 0);
    let restored_server = load.server.expect("snapshot carries postings");
    assert_equiv(
        (&engine, &server),
        (&load.engine, &restored_server),
        "cold sections",
    );
    let speedup = cold_mean.as_secs_f64() / warm_mean.as_secs_f64().max(1e-12);
    println!(
        "warm start (mmap + verify + import) : {warm_mean:>12.2?} mean of {WARM_REPS} \
         ({snap_bytes} snapshot bytes)"
    );
    println!("warm-start speedup                  : {speedup:>11.1}x (bar: >= 10x)");
    assert!(
        speedup >= 10.0,
        "warm start must be >= 10x faster than cold start, got {speedup:.1}x"
    );

    // Journal tail: post-snapshot churn replays on warm start and the
    // result still matches the live pair bit-for-bit.
    for salt in 0..TAIL_DELTAS {
        let delta = churn_delta(&engine, salt);
        engine.ingest_serving(&delta, &server).unwrap();
    }
    let t0 = Instant::now();
    let tail = SearchEngine::open_snapshot(&path).unwrap();
    let tail_dt = t0.elapsed();
    assert_eq!(tail.replayed, TAIL_DELTAS);
    let tail_server = tail.server.expect("postings restored");
    assert_equiv((&engine, &server), (&tail.engine, &tail_server), "tail");
    println!(
        "warm start + {TAIL_DELTAS}-delta journal tail : {tail_dt:>12.2?} \
         (replayed {})",
        tail.replayed
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(mgp_core::journal_path_for(&path)).ok();
    println!("persistence acceptance: PASS");
}

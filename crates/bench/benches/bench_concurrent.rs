//! Mixed read/write serving benchmark: queries keep flowing while deltas
//! land.
//!
//! Before the epoch-swap refactor, `QueryServer::apply_delta` took
//! `&mut self`, so every delta stopped serving dead for its full
//! duration. Now ingest lands shard by shard through copy-on-write
//! snapshot swaps while `rank_batch` keeps executing, so churn should
//! cost readers at most the pointer-swap contention — not a full stop.
//!
//! Acceptance (asserted, run in CI) on the Facebook-scale dataset, with
//! reader threads hammering `rank_batch` (cache off, so every query pays
//! the full compute path):
//!
//! * at least one batch **completes while `QueryServer::apply_delta` is
//!   in flight** — the flag is raised only around the serving-table
//!   patch itself (not the matching/indexing prelude), so serving
//!   demonstrably does not pause for the phase the old `&mut self`
//!   design blocked on;
//! * serving p99 measured under continuous single-edge churn stays
//!   within 3× the read-only p99;
//! * a churn cycle that nets to zero restores the serving tables exactly.

use mgp_core::{PipelineConfig, SearchEngine, TrainingStrategy};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig, FAMILY};
use mgp_graph::{GraphDelta, NodeId};
use mgp_learning::{sample_examples, TrainConfig, TrainingExample};
use mgp_online::{DeltaStats, ServeConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Reader threads hammering `rank_batch` in both phases.
const READERS: usize = 2;
/// Queries per batch.
const BATCH: usize = 256;
/// Batches per reader in the read-only baseline phase.
const BASELINE_BATCHES: usize = 250;
/// Minimum single-edge deltas the churn phase applies.
const MIN_DELTAS: usize = 80;
/// Hard bound on insert-all/delete-all churn cycles: if no batch ever
/// overlaps an in-flight patch within this many, the overlap assertion
/// must *fail* — the bench must terminate with a diagnostic, not hang.
const MAX_CYCLES: usize = 20;
/// Acceptance bar: churn p99 within this factor of read-only p99.
const P99_FACTOR: f64 = 3.0;

fn examples(
    d: &mgp_datagen::Dataset,
    class: mgp_datagen::ClassId,
    n: usize,
    seed: u64,
) -> Vec<TrainingExample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let queries = d.labels.queries_of_class(class);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    sample_examples(
        &queries,
        |q| d.labels.positives_of(q, class),
        |q, v| d.labels.has(q, v, class),
        &anchors,
        n,
        &mut rng,
    )
}

/// Exact percentile over raw batch durations (no histogram bucketing —
/// the 3× acceptance comparison should not inherit 2× bucket error).
fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    assert!(!samples.is_empty(), "no latency samples collected");
    samples.sort_unstable();
    let rank = ((samples.len() as f64 * p).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Runs `READERS` threads, each serving `rank_batch` slices of `users`
/// until it has done `batches` batches (or, with `batches == usize::MAX`,
/// until `stop` flips). Returns the per-batch durations, and counts into
/// `overlap` every batch that completed while `ingesting` was set.
fn drive_readers(
    server: &mgp_online::QueryServer,
    cid: usize,
    users: &[NodeId],
    batches: usize,
    stop: &AtomicBool,
    ingesting: &AtomicBool,
    overlap: &AtomicUsize,
) -> Vec<Duration> {
    let samples: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for r in 0..READERS {
            let samples = &samples;
            s.spawn(move || {
                let mut local: Vec<Duration> = Vec::new();
                let mut i = r; // offset readers so batches differ
                while local.len() < batches && !stop.load(Ordering::Relaxed) {
                    let batch: Vec<NodeId> = (0..BATCH)
                        .map(|j| users[(i * BATCH + j) % users.len()])
                        .collect();
                    let t0 = Instant::now();
                    let results = server.rank_batch(cid, &batch, 10);
                    let dt = t0.elapsed();
                    assert_eq!(results.len(), BATCH);
                    if ingesting.load(Ordering::Relaxed) {
                        overlap.fetch_add(1, Ordering::Relaxed);
                    }
                    local.push(dt);
                    i += 1;
                }
                samples.lock().unwrap().extend(local);
            });
        }
    });
    samples.into_inner().unwrap()
}

/// Read-side lock-cost regression gate (asserted, run in CI). The old
/// shard pin was an `RwLock` read acquisition wrapping an `Arc` clone;
/// this bench used to print how much the lock cost so the "is it worth
/// removing?" decision was data-driven. The lock is now gone — readers
/// pin an epoch through the `arc_swap` shim with one hazard-slot store —
/// so the print has been promoted to the acceptance bar it argued for:
/// an atomic snapshot pin must cost **no more than a raw `Arc` clone**
/// (the floor the `RwLock` comparison measured against). A clone+drop
/// pays two contended-capable RMWs on the shared refcount; a pin+unpin
/// pays two stores to a thread-owned slot, so regressing past the clone
/// means the shim's fast path broke.
fn measure_snapshot_pin_cost() {
    const N: u32 = 2_000_000;
    let payload: Arc<Vec<u64>> = Arc::new(vec![0; 16]);
    let swap = arc_swap::ArcSwap::new(Arc::clone(&payload));

    // Warm both paths (claim the hazard slot, page in the Arc line).
    for _ in 0..1000 {
        std::hint::black_box(Arc::clone(&payload));
        std::hint::black_box(&**swap.load());
    }

    let t0 = Instant::now();
    for _ in 0..N {
        std::hint::black_box(Arc::clone(&payload));
    }
    let raw = t0.elapsed();

    let t1 = Instant::now();
    for _ in 0..N {
        std::hint::black_box(&**swap.load());
    }
    let pinned = t1.elapsed();

    let raw_ns = raw.as_nanos() as f64 / N as f64;
    let pin_ns = pinned.as_nanos() as f64 / N as f64;
    println!(
        "snapshot pin: ArcSwap load {pin_ns:.1} ns vs raw Arc clone {raw_ns:.1} ns \
         ({:.2}x) — acceptance bar: pin \u{2264} clone",
        pin_ns / raw_ns.max(1e-9)
    );
    assert!(
        pin_ns <= raw_ns,
        "lock-free snapshot pin ({pin_ns:.1} ns) regressed past the raw Arc-clone \
         baseline ({raw_ns:.1} ns)"
    );
}

fn main() {
    measure_snapshot_pin_cost();

    let d = generate_facebook(&FacebookConfig::tiny(42));
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    engine.train_class("family", &examples(&d, FAMILY, 200, 9));
    // Cache off: every batch pays the full compute path, so the p99
    // comparison measures ranking under churn, not cache luck.
    let server = engine.serve_shared_with(ServeConfig {
        cache_capacity: 0,
        ..Default::default()
    });
    let cid = server.class_id("family").unwrap();
    println!(
        "--- concurrent serving (facebook-scale: {} nodes, {} edges, {} readers x {}-query batches) ---",
        engine.graph().n_nodes(),
        engine.graph().n_edges(),
        READERS,
        BATCH
    );

    let g = engine.graph().clone();
    let users: Vec<NodeId> = g.nodes_of_type(d.anchor_type).to_vec();
    // Candidate single-edge insertions that can be unwound again: the
    // churn phase cycles insert-all / delete-all so it can run as long as
    // the overlap criterion needs, always netting back to the base graph
    // at the end of a full cycle.
    let attrs: Vec<NodeId> = g
        .nodes()
        .filter(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 0)
        .collect();
    let mut fresh_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    'outer: for &u in &users {
        for &a in &attrs {
            if !g.has_edge(u, a) {
                fresh_pairs.push((u, a));
                if fresh_pairs.len() >= 20 {
                    break 'outer;
                }
            }
        }
    }
    let tables_before = server.table_stats(cid);

    let stop = AtomicBool::new(false);
    let ingesting = AtomicBool::new(false);
    let overlap = AtomicUsize::new(0);

    // Phase 1: read-only baseline.
    let mut readonly = drive_readers(
        &server,
        cid,
        &users,
        BASELINE_BATCHES,
        &stop,
        &ingesting,
        &overlap,
    );
    let readonly_p99 = percentile(&mut readonly, 0.99);
    println!(
        "read-only   : p99 {readonly_p99:>10.2?} over {} batches",
        readonly.len()
    );

    // Phase 2: same readers, now racing a writer that streams single-edge
    // deltas through the whole ingest chain. Full insert/delete cycles
    // net to zero, so the loop can extend until enough overlap was
    // witnessed without drifting the graph.
    let mut churn_samples: Vec<Duration> = Vec::new();
    let mut swap_totals = DeltaStats::default();
    let mut deltas = 0usize;
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            drive_readers(
                &server,
                cid,
                &users,
                usize::MAX,
                &stop,
                &ingesting,
                &overlap,
            )
        });
        let mut cycles = 0usize;
        while (deltas < MIN_DELTAS || overlap.load(Ordering::Relaxed) == 0) && cycles < MAX_CYCLES {
            cycles += 1;
            for remove in [false, true] {
                for &(u, a) in &fresh_pairs {
                    let mut delta = GraphDelta::for_graph(engine.graph());
                    if remove {
                        delta.remove_edge(u, a).unwrap();
                    } else {
                        delta.add_edge(u, a).unwrap();
                    }
                    // Offline chain first (graph splice → delta matching
                    // → index patch), unflagged; then the serving-table
                    // patch with the flag up, so `overlap` counts only
                    // batches that completed while QueryServer::
                    // apply_delta itself was in flight — the phase the
                    // old `&mut self` design stopped serving for.
                    let report = engine.ingest(&delta).unwrap();
                    for (name, touch) in &report.per_class {
                        let Some(c) = server.class_id(name) else {
                            continue;
                        };
                        let index = &engine.model(name).unwrap().index;
                        ingesting.store(true, Ordering::Relaxed);
                        let stats = server.apply_delta(c, index, touch);
                        ingesting.store(false, Ordering::Relaxed);
                        swap_totals += stats;
                    }
                    deltas += 1;
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        churn_samples = handle.join().expect("reader panicked");
    });
    let overlapped = overlap.load(Ordering::Relaxed);
    let churn_p99 = percentile(&mut churn_samples, 0.99);
    println!(
        "under churn : p99 {churn_p99:>10.2?} over {} batches, {deltas} deltas applied",
        churn_samples.len()
    );
    println!("overlap     : {overlapped} batches completed during an in-flight apply_delta");
    println!("delta work  : {swap_totals}");

    // Acceptance 1: serving provably continued while the serving-table
    // patch itself was running.
    assert!(
        overlapped > 0,
        "no batch completed during an in-flight QueryServer::apply_delta \
         across {deltas} deltas — serving paused for writes"
    );

    // Acceptance 2: churn costs readers at most a small factor.
    let factor = churn_p99.as_secs_f64() / readonly_p99.as_secs_f64().max(1e-9);
    println!("p99 ratio   : {factor:.2}x (acceptance bar: {P99_FACTOR}x)");
    assert!(
        factor <= P99_FACTOR,
        "serving p99 under churn regressed {factor:.2}x vs read-only (bar {P99_FACTOR}x)"
    );

    // Acceptance 3: the churn netted to zero, and the epoch-swapped
    // tables restored exactly — no leaked state from concurrent ingest.
    let tables_after = server.table_stats(cid);
    assert_eq!(
        tables_after, tables_before,
        "net-zero churn must restore serving tables exactly"
    );
    println!("tables      : restored exactly ({tables_after})");
}

//! Scenario-suite benchmark: the full deterministic workload catalogue
//! (zipfian steady reads, diurnal churn, hub deletion storms,
//! cache-busting uniform scans, mixed-tenant skew, and a class
//! registered mid-traffic) replayed against one live engine + front-end
//! pair, with per-scenario floors asserted so CI catches a serving
//! regression in the *shape of traffic* that exposes it — not just in
//! the aggregate mean.
//!
//! Every trace comes from `mgp_scenario::TraceGenerator` at seed 42, so
//! the workload is byte-identical run to run (pinned by the golden
//! fingerprints in the scenario crate's determinism tests) and a QPS or
//! tail-latency diff between two CI runs is attributable to the code,
//! not the dice.
//!
//! Acceptance (asserted, run in CI):
//!
//! * the suite runs ≥ 5 named scenarios and every one is *clean* — no
//!   typed query errors, no rejected mutations;
//! * zipfian steady reads sustain ≥ 1 000 QPS through the front-end
//!   (conservative absolute floor for a loaded CI container);
//! * diurnal churn's p99 stays within 3× the steady-read p99 (with a
//!   20 ms absolute grace so microsecond-scale baselines don't turn
//!   scheduler noise into failures) — concurrent deltas must not
//!   starve the read path;
//! * the adversarial cache-buster completes every query without a shed
//!   storm — admission control may push back, but open-loop retries
//!   must drain the whole trace;
//! * the deletion storm's hub deltas land through the fused patch path
//!   (2 deltas per storm, fused shard visits ≤ the per-class sum);
//! * register-mid-traffic grows the server by exactly one class while
//!   queries are in flight, and traffic on the new class succeeds;
//! * steady reads hit the server's result cache (zipfian duplicates
//!   must not all miss).

use mgp_core::scenario::{
    run_trace, DriverConfig, GeneratorConfig, LiveTarget, SuiteReport, TraceGenerator,
};
use mgp_core::{FrontendConfig, PipelineConfig, SearchEngine, ServeConfig, TrainingStrategy};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use mgp_datagen::{ClassId, Dataset};
use mgp_graph::NodeId;
use mgp_learning::{sample_examples, TrainConfig, TrainingExample};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Steady-read sustained throughput floor (QPS).
const STEADY_QPS_FLOOR: f64 = 1_000.0;
/// Deletion-storm hub degree. Sized per the density caveat on
/// `GeneratorConfig::hub_degree`: the Facebook schema is dense (anchors
/// share many attribute co-neighbours), so the hub sits near the
/// graph's p99 anchor degree rather than at the sparse-world default of
/// 256. The wcoj matcher handles the storm in one shared extension
/// frontier, but the *instance* delta a hub produces still grows
/// combinatorially with co-neighbour density, and the validate/commit
/// phases pay for every instance.
const STORM_HUB_DEGREE: usize = 64;
/// Churn p99 may be at most this multiple of the steady-read p99 …
const CHURN_P99_FACTOR: u32 = 3;
/// … or this absolute grace, whichever is larger.
const CHURN_P99_GRACE: Duration = Duration::from_millis(20);

fn examples(d: &Dataset, class: ClassId, n: usize, seed: u64) -> Vec<TrainingExample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let queries = d.labels.queries_of_class(class);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    sample_examples(
        &queries,
        |q| d.labels.positives_of(q, class),
        |q, v| d.labels.has(q, v, class),
        &anchors,
        n,
        &mut rng,
    )
}

fn main() {
    let d = generate_facebook(&FacebookConfig::default());
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    engine.train_class("family", &examples(&d, FAMILY, 200, 9));
    engine.train_class("classmate", &examples(&d, CLASSMATE, 200, 11));

    let frontend = engine.serve_frontend_with(
        ServeConfig {
            workers: 2,
            shards: 4,
            cache_capacity: 4_096,
        },
        FrontendConfig {
            workers: 2,
            ..FrontendConfig::default()
        },
    );

    let gen_cfg = GeneratorConfig {
        seed: 42,
        queries: 2_000,
        n_classes: 2,
        hub_degree: STORM_HUB_DEGREE,
        ..GeneratorConfig::default()
    };
    let storms = gen_cfg.storms;
    let mut generator = TraceGenerator::new(engine.graph(), engine.anchor_type(), gen_cfg);
    let traces = generator.generate_suite();
    println!(
        "--- scenario suite ({} nodes, {} edges, {} scenarios x {} queries, seed 42) ---",
        engine.graph().n_nodes(),
        engine.graph().n_edges(),
        traces.len(),
        traces[0].n_queries(),
    );

    let driver_cfg = DriverConfig {
        workers: 4,
        outstanding: 32,
    };
    let mut report = SuiteReport::default();
    for trace in &traces {
        let mut target = LiveTarget::new(&mut engine, frontend.server().clone());
        let row = run_trace(trace, &mut target, &frontend, &driver_cfg);
        println!("{row}");
        std::io::Write::flush(&mut std::io::stdout()).ok();
        report.scenarios.push(row);
    }

    // --- acceptance ---------------------------------------------------

    assert!(
        report.scenarios.len() >= 5,
        "suite must cover ≥ 5 named scenarios (got {})",
        report.scenarios.len()
    );
    for (trace, s) in traces.iter().zip(&report.scenarios) {
        assert!(
            s.clean(),
            "{}: {} query errors, mutation failures: {:?}",
            s.scenario,
            s.errors,
            s.mutation_failures
        );
        assert_eq!(
            s.completed,
            trace.n_queries() as u64,
            "{}: every generated query must be answered",
            s.scenario
        );
    }

    let steady = report.get("steady-read").expect("steady-read ran");
    assert!(
        steady.qps() >= STEADY_QPS_FLOOR,
        "acceptance: steady-read sustained {:.0} qps, floor {STEADY_QPS_FLOOR}",
        steady.qps()
    );
    assert!(
        steady.cache_hits > 0,
        "acceptance: zipfian steady reads must hit the result cache"
    );

    let churn = report.get("diurnal-churn").expect("diurnal-churn ran");
    let p99_bar = (steady.latency.p99 * CHURN_P99_FACTOR).max(CHURN_P99_GRACE);
    assert!(
        churn.latency.p99 <= p99_bar,
        "acceptance: churn p99 {:?} exceeds {CHURN_P99_FACTOR}x steady p99 {:?} (bar {:?})",
        churn.latency.p99,
        steady.latency.p99,
        p99_bar
    );
    assert!(churn.deltas >= 2, "diurnal churn must actually churn");

    let buster = report.get("cache-buster").expect("cache-buster ran");
    assert!(
        buster.shed_events < buster.completed,
        "acceptance: cache-buster drowned in admission sheds ({} sheds / {} queries)",
        buster.shed_events,
        buster.completed
    );

    let storm = report.get("deletion-storm").expect("deletion-storm ran");
    // The wcoj matcher's work counters for the storm deltas, so
    // perf-trajectory runs record propose/intersect effort alongside
    // QPS (a regression in matcher discipline shows up here before it
    // moves the latency floors).
    println!("deletion-storm match work: {}", storm.match_work);
    assert_eq!(
        storm.deltas,
        2 * storms,
        "each storm is one hub-build delta and one hub-drop delta"
    );
    assert!(
        storm.match_work.instances > 0 && storm.match_work.proposals > 0,
        "storm deltas must exercise the wcoj delta matcher (got {})",
        storm.match_work
    );
    assert!(
        storm.fused_shard_visits > 0 && storm.fused_shard_visits <= storm.sequential_shard_visits,
        "storm deltas must land through the fused patch path ({} fused / {} sequential)",
        storm.fused_shard_visits,
        storm.sequential_shard_visits
    );

    let register = report.get("register-mid-traffic").expect("register ran");
    assert_eq!(
        register.registers, 1,
        "exactly one class registered mid-traffic"
    );

    println!(
        "acceptance: all floors held (steady {:.0} qps ≥ {STEADY_QPS_FLOOR}, churn p99 {:?} ≤ {:?})",
        steady.qps(),
        churn.latency.p99,
        p99_bar
    );
    let fstats = frontend.shutdown();
    println!("front-end totals: {fstats}");
}

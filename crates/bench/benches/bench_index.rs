//! Criterion micro-benchmark: metagraph vector index construction and
//! lookup (the indexing step of the offline phase, Fig. 3).

use criterion::{criterion_group, criterion_main, Criterion};
use mgp_bench::context::{ExpContext, Scale, Which};
use mgp_graph::NodeId;
use mgp_index::{Transform, VectorIndex};
use std::hint::black_box;
use std::time::Duration;

fn bench_index(c: &mut Criterion) {
    let ctx = ExpContext::prepare(Which::Facebook, Scale::Tiny, 42);
    let mut group = c.benchmark_group("index");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("from_counts", |b| {
        b.iter(|| black_box(VectorIndex::from_counts(&ctx.counts, Transform::Log1p)))
    });

    let w = vec![0.5; ctx.index.n_metagraphs()];
    let anchors = ctx.anchors();
    group.bench_function("dot_node", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = anchors[i % anchors.len()];
            i += 1;
            black_box(ctx.index.dot_node(x, &w))
        })
    });
    group.bench_function("pair_vec_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = anchors[i % anchors.len()];
            let y = anchors[(i * 7 + 1) % anchors.len()];
            i += 1;
            black_box(ctx.index.pair_vec(x, NodeId(y.0)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);

//! Multi-class fusion benchmark: one matching pass, one shard touch, one
//! posting walk for every query class.
//!
//! Before the fusion refactor the pipeline treated classes as silos: a
//! graph event was delta-matched, index-patched and serving-patched once
//! per class, and a query wanting several classes' rankings repeated the
//! snapshot pin / cache round-trip / posting walk per class. This bench
//! measures both fused paths against their sequential per-class
//! equivalents on the Facebook-scale dataset, with three trained classes.
//!
//! Acceptance (asserted, run in CI):
//!
//! * a single-edge **fused ingest** serving all 3 classes is ≥ 1.5×
//!   faster than 3 sequential per-class ingests (separate engines and
//!   servers, each matching/patching only its own class — the silo
//!   architecture this PR removed);
//! * **`rank_multi`** over the 3 classes is ≥ 1.3× faster than 3
//!   separate `rank` calls on the same server in the steady warm-traffic
//!   state (hot queries served from the shared cache — the regime the
//!   LRU is designed for; the cold first-touch numbers, dominated by the
//!   same posting sorts on both paths, are printed for reference);
//! * both fused paths answer bit-identically to the per-class paths.

use mgp_core::{PipelineConfig, SearchEngine, TrainingStrategy};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use mgp_graph::{GraphDelta, NodeId};
use mgp_learning::{sample_examples, TrainConfig, TrainingExample};
use mgp_online::{DeltaStats, QueryServer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// The three served classes: two real label sets plus a differently
/// trained variant of the first (class identity is a weight vector — a
/// third distinct model is all the fusion paths care about).
const CLASSES: [&str; 3] = ["family", "classmate", "kin"];

/// Ingests to discard as warm-up.
const WARMUP: usize = 4;
/// Single-edge churn events timed per side.
const EVENTS: usize = 24;
/// Measured rounds over the query set in the steady-state (cache-hot)
/// rank comparison. Warm calls are ~100 ns each, so the round count is
/// what makes the measured window long enough (milliseconds) for the
/// asserted ratio not to ride on scheduler noise.
const RANK_ROUNDS: usize = 200;
/// Acceptance bars.
const INGEST_BAR: f64 = 1.5;
const RANK_BAR: f64 = 1.3;
/// Noise floor for the cache-off sweep section: the fused layout must
/// never be *slower* than per-class walks (the dominant superset sort
/// is identical in both, so the measurable win is bounded — the 1.3x
/// acceptance bar is asserted on warm traffic, where it is large).
const SWEEP_FLOOR: f64 = 0.9;

fn examples(
    d: &mgp_datagen::Dataset,
    class: mgp_datagen::ClassId,
    n: usize,
    seed: u64,
) -> Vec<TrainingExample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let queries = d.labels.queries_of_class(class);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    sample_examples(
        &queries,
        |q| d.labels.positives_of(q, class),
        |q, v| d.labels.has(q, v, class),
        &anchors,
        n,
        &mut rng,
    )
}

fn class_examples(d: &mgp_datagen::Dataset, name: &str) -> Vec<TrainingExample> {
    match name {
        "family" => examples(d, FAMILY, 200, 9),
        "classmate" => examples(d, CLASSMATE, 200, 11),
        "kin" => examples(d, FAMILY, 150, 31),
        other => panic!("unknown bench class {other}"),
    }
}

fn pipeline_cfg(d: &mgp_datagen::Dataset) -> PipelineConfig {
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    cfg
}

fn main() {
    let d = generate_facebook(&FacebookConfig::tiny(42));

    // Fused side: one engine serving all three classes.
    let mut fused = SearchEngine::build(d.graph.clone(), pipeline_cfg(&d));
    for name in CLASSES {
        fused.train_class(name, &class_examples(&d, name));
    }
    let fused_server = fused.serve();
    let cids: Vec<usize> = CLASSES
        .iter()
        .map(|n| fused_server.class_id(n).unwrap())
        .collect();

    // Sequential side: three per-class silos — each engine matches,
    // indexes and serves exactly one class, so every graph event costs
    // it a full delta-match of its own (the pre-fusion architecture).
    let mut silos: Vec<(SearchEngine, QueryServer)> = CLASSES
        .iter()
        .map(|name| {
            let mut e = SearchEngine::build(d.graph.clone(), pipeline_cfg(&d));
            e.train_class(name, &class_examples(&d, name));
            let s = e.serve();
            (e, s)
        })
        .collect();

    println!(
        "--- multi-class fusion (facebook-scale: {} nodes, {} edges, {} classes x {} patterns) ---",
        fused.graph().n_nodes(),
        fused.graph().n_edges(),
        CLASSES.len(),
        fused.metagraphs().len()
    );

    // Candidate single-edge insertions that do not exist yet; the second
    // half of the events removes them again, netting the graphs back.
    let g = fused.graph().clone();
    let users: Vec<NodeId> = g.nodes_of_type(d.anchor_type).to_vec();
    let attrs: Vec<NodeId> = g
        .nodes()
        .filter(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 0)
        .collect();
    let mut fresh_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    'outer: for &u in &users {
        for &a in &attrs {
            if !g.has_edge(u, a) {
                fresh_pairs.push((u, a));
                if fresh_pairs.len() >= EVENTS / 2 {
                    break 'outer;
                }
            }
        }
    }

    // --- Phase A: fused ingest vs 3 sequential per-class ingests ------
    let mut fused_total = Duration::ZERO;
    let mut seq_total = Duration::ZERO;
    let mut timed = 0u32;
    let mut fused_visits = 0usize;
    let mut sequential_visits = 0usize;
    let mut fused_work = DeltaStats::default();
    let mut event_no = 0usize;
    for remove in [false, true] {
        for &(u, a) in &fresh_pairs {
            let build = |g: &mgp_graph::Graph| {
                let mut delta = GraphDelta::for_graph(g);
                if remove {
                    delta.remove_edge(u, a).unwrap();
                } else {
                    delta.add_edge(u, a).unwrap();
                }
                delta
            };
            let delta = build(fused.graph());
            let t0 = Instant::now();
            let report = fused.ingest_serving(&delta, &fused_server).unwrap();
            let dt_fused = t0.elapsed();

            let mut dt_seq = Duration::ZERO;
            for (silo, server) in silos.iter_mut() {
                let delta = build(silo.graph());
                let t1 = Instant::now();
                silo.ingest_serving(&delta, server).unwrap();
                dt_seq += t1.elapsed();
            }

            if event_no >= WARMUP {
                fused_total += dt_fused;
                seq_total += dt_seq;
                timed += 1;
                fused_visits += report.fused_shard_visits;
                sequential_visits += report.sequential_shard_visits();
                for &(_, stats) in &report.serving {
                    fused_work += stats;
                }
            }
            event_no += 1;
        }
    }
    let fused_mean = fused_total / timed.max(1);
    let seq_mean = seq_total / timed.max(1);
    let ingest_speedup = seq_mean.as_secs_f64() / fused_mean.as_secs_f64().max(1e-12);
    println!(
        "fused ingest (3 classes)  : {fused_mean:>12.2?} mean over {timed} events \
         ({fused_visits} fused shard visits vs {sequential_visits} per-class)"
    );
    println!("3 per-class ingests       : {seq_mean:>12.2?} mean over {timed} events");
    println!("fused patch work          : {fused_work}");
    println!("ingest speedup            : {ingest_speedup:>12.1}x (acceptance bar: {INGEST_BAR}x)");
    assert!(
        fused_visits <= sequential_visits,
        "fused shard visits must never exceed the per-class product"
    );

    // Equivalence: the fused server answers every class identically to
    // its silo after the whole churn round-trip.
    for (round_q, &u) in users.iter().take(40).enumerate() {
        let multi = fused_server.rank_multi(&cids, u, 10);
        for ((name, (_, server)), (j, &cid)) in
            CLASSES.iter().zip(&silos).zip(cids.iter().enumerate())
        {
            let silo_cid = server.class_id(name).unwrap();
            let want = server.rank(silo_cid, u, 10);
            assert_eq!(
                *multi[j], *want,
                "fused rank_multi diverged from silo: class {name} q {u} (#{round_q})"
            );
            assert_eq!(*fused_server.rank(cid, u, 10), *want);
        }
    }
    println!("equivalence               : fused rankings == per-class silo rankings");
    assert!(
        ingest_speedup >= INGEST_BAR,
        "acceptance: fused 3-class ingest must beat 3 sequential per-class \
         ingests by ≥ {INGEST_BAR}x (got {ingest_speedup:.1}x)"
    );

    // --- Phase B: rank_multi vs 3 rank calls --------------------------
    // The serving regime the cache is designed for: hot queries repeat,
    // so steady-state traffic is cache-hit-dominated (same regime as
    // bench_serving's hot-cache comparison). Cold misses pay the same
    // posting sorts on both paths (printed for reference, unasserted);
    // the asserted bar compares the steady warm path, after one
    // unmeasured warm-up pass of each flavour has filled the (shared —
    // same `(class, q, k)` keys) cache and the allocator.
    let queries: Vec<NodeId> = users.clone();

    // Cold reference: first touch of every (query, class) pair. One
    // unmeasured throwaway pass first, so neither flavour pays the
    // process's first-touch allocator/page-fault costs for the other.
    fused_server.clear_cache();
    for &q in &queries {
        std::hint::black_box(fused_server.rank_multi(&cids, q, 10));
        for &cid in &cids {
            std::hint::black_box(fused_server.rank(cid, q, 10));
        }
    }
    fused_server.clear_cache();
    let t0 = Instant::now();
    for &q in &queries {
        std::hint::black_box(fused_server.rank_multi(&cids, q, 10));
    }
    let cold_multi = t0.elapsed();
    fused_server.clear_cache();
    let t1 = Instant::now();
    for &q in &queries {
        for &cid in &cids {
            std::hint::black_box(fused_server.rank(cid, q, 10));
        }
    }
    let cold_seq = t1.elapsed();
    let n_cold = queries.len() as u32;
    println!(
        "cold (reference only)     : rank_multi {:>9.2?}/q vs 3 rank calls {:>9.2?}/q \
         — both dominated by the same posting sorts",
        cold_multi / n_cold,
        cold_seq / n_cold
    );

    // Warm-up pass of each flavour, unmeasured (cache is already filled
    // by the cold pass; this warms branch predictors and the allocator
    // for both paths symmetrically).
    for &q in &queries {
        std::hint::black_box(fused_server.rank_multi(&cids, q, 10));
        for &cid in &cids {
            std::hint::black_box(fused_server.rank(cid, q, 10));
        }
    }

    let t2 = Instant::now();
    for _ in 0..RANK_ROUNDS {
        for &q in &queries {
            std::hint::black_box(fused_server.rank_multi(&cids, q, 10));
        }
    }
    let t_multi = t2.elapsed();

    let t3 = Instant::now();
    for _ in 0..RANK_ROUNDS {
        for &q in &queries {
            for &cid in &cids {
                std::hint::black_box(fused_server.rank(cid, q, 10));
            }
        }
    }
    let t_seq = t3.elapsed();

    let n_queries = (queries.len() * RANK_ROUNDS) as u32;
    let rank_speedup = t_seq.as_secs_f64() / t_multi.as_secs_f64().max(1e-12);
    println!(
        "rank_multi (3 classes)    : {:>12.2?} per query over {} warm queries",
        t_multi / n_queries,
        n_queries
    );
    println!(
        "3 rank calls              : {:>12.2?} per query",
        t_seq / n_queries
    );
    println!("rank speedup              : {rank_speedup:>12.1}x (acceptance bar: {RANK_BAR}x)");
    for &q in queries.iter().take(20) {
        let multi = fused_server.rank_multi(&cids, q, 10);
        for (j, &cid) in cids.iter().enumerate() {
            assert_eq!(
                *multi[j],
                *fused_server.rank(cid, q, 10),
                "q {q} class {cid}"
            );
        }
    }
    println!("equivalence               : rank_multi == per-class rank, entry for entry");
    assert!(
        rank_speedup >= RANK_BAR,
        "acceptance: rank_multi over 3 classes must beat 3 rank calls by \
         ≥ {RANK_BAR}x (got {rank_speedup:.1}x)"
    );

    // --- Phase C: fused SoA sweep vs per-class walks (compute path) ---
    // The cache is off, so every call pays the scoring kernel — this is
    // the section that measures the fused posting layout itself. A
    // 3-class `rank_multi` pins one epoch and sweeps the anchor's single
    // SoA block three times (one sorted candidate array, one score
    // column per class — the block stays hot in cache across columns,
    // one scratch for all three); the per-class-walk baseline pays a
    // pin, a scratch, and a cold block walk per class, the way the old
    // per-class posting-list layout forced every caller to. Warm
    // traffic: one unmeasured pass of each flavour first.
    //
    // Both flavours end in the *identical* top-k superset sort, which
    // dominates the per-query cost on this dataset — so the fusion win
    // here is bounded to the shared pin/lookup/scratch overhead, and
    // the 1.3x warm-traffic acceptance bar lives in the cached phase
    // above. This section gates the layout against *regressing*: the
    // shared-block sweep must never lose to three separate walks.
    let sweep_server = fused.serve_shared_with(mgp_online::ServeConfig {
        cache_capacity: 0,
        ..Default::default()
    });
    for &q in &queries {
        std::hint::black_box(sweep_server.rank_multi(&cids, q, 10));
        for &cid in &cids {
            std::hint::black_box(sweep_server.rank(cid, q, 10));
        }
    }
    let t4 = Instant::now();
    for _ in 0..RANK_ROUNDS {
        for &q in &queries {
            std::hint::black_box(sweep_server.rank_multi(&cids, q, 10));
        }
    }
    let t_sweep = t4.elapsed();
    let t5 = Instant::now();
    for _ in 0..RANK_ROUNDS {
        for &q in &queries {
            for &cid in &cids {
                std::hint::black_box(sweep_server.rank(cid, q, 10));
            }
        }
    }
    let t_walks = t5.elapsed();
    let sweep_speedup = t_walks.as_secs_f64() / t_sweep.as_secs_f64().max(1e-12);
    println!(
        "fused sweep (cache off)   : {:>12.2?} per query vs {:>9.2?} for 3 per-class walks",
        t_sweep / n_queries,
        t_walks / n_queries
    );
    println!(
        "sweep speedup             : {sweep_speedup:>12.1}x (regression gate: {SWEEP_FLOOR}x)"
    );
    for &q in queries.iter().take(20) {
        let multi = sweep_server.rank_multi(&cids, q, 10);
        for (j, &cid) in cids.iter().enumerate() {
            assert_eq!(
                *multi[j],
                *fused_server.rank(cid, q, 10),
                "q {q} class {cid}"
            );
        }
    }
    println!("equivalence               : fused sweep == cached per-class rank, entry for entry");
    assert!(
        sweep_speedup >= SWEEP_FLOOR,
        "regression: the fused-SoA sweep must not lose to 3 per-class walks \
         (got {sweep_speedup:.2}x, floor {SWEEP_FLOOR}x)"
    );
}

//! Criterion micro-benchmark behind Fig. 11: per-matcher metagraph
//! matching time on the Facebook-like graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgp_bench::context::{ExpContext, Scale, Which};
use mgp_matching::{count_embeddings, Matcher, QuickSi, SymIso, TurboLite, Vf2};
use std::hint::black_box;
use std::time::Duration;

fn bench_matchers(c: &mut Criterion) {
    let ctx = ExpContext::prepare(Which::Facebook, Scale::Tiny, 42);
    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(SymIso::new()),
        Box::new(SymIso::random_order(42)),
        Box::new(TurboLite),
        Box::new(Vf2),
        Box::new(QuickSi),
    ];
    let mut group = c.benchmark_group("fig11_matching");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for size in 3..=5usize {
        // One representative pattern per size: the one with most instances.
        let best = (0..ctx.patterns.len())
            .filter(|&i| ctx.patterns[i].n_nodes() == size)
            .max_by_key(|&i| ctx.counts[i].n_instances);
        let Some(i) = best else { continue };
        for m in &matchers {
            group.bench_with_input(
                BenchmarkId::new(m.name(), format!("{size}nodes")),
                &i,
                |b, &i| {
                    b.iter(|| {
                        black_box(count_embeddings(
                            m.as_ref(),
                            &ctx.dataset.graph,
                            &ctx.patterns[i],
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);

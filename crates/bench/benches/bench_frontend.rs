//! Front-end micro-batching benchmark: duplicate-heavy zipfian traffic
//! through the async serving front-end, with churn landing concurrently
//! through the same epoch-swapped server.
//!
//! Open-loop callers (each keeps a bounded number of requests in flight,
//! as a real RPC fan-in would) drive one `Frontend` per arm over an
//! LRU-disabled server, so any win is carried by **window coalescing**
//! alone — duplicate `(class, q, k)` requests inside a micro-batch
//! window execute once and fan the shared `Arc` ranking back to every
//! waiter — not by the result cache:
//!
//! * the **coalescing arm** batches and deduplicates each window;
//! * the **baseline arm** is the same front-end with coalescing off —
//!   every request is ranked individually, the pre-front-end cost model.
//!
//! Acceptance (asserted, run in CI):
//!
//! * coalesced sustained QPS ≥ 2× the no-coalescing baseline under the
//!   same zipfian open-loop traffic with concurrent single-edge churn;
//! * at that higher throughput the coalesced p99 holds the baseline's
//!   p99 SLO (≤ baseline p99 × 1.25 noise guard) — more throughput at
//!   no worse tail, not throughput bought with latency;
//! * both arms answer quiesced spot-checks bit-identically to direct
//!   `QueryServer::rank` calls;
//! * forced memory pressure (a pinned epoch + retained postings over a
//!   1-byte high-water mark) makes admission shed with a typed
//!   `Overloaded { pressured: true }` rejection, and releasing the pin
//!   restores service with answers identical to direct calls.

use mgp_core::{PipelineConfig, SearchEngine, TrainingStrategy};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use mgp_graph::{GraphDelta, NodeId};
use mgp_learning::{sample_examples, TrainConfig, TrainingExample};
use mgp_online::{Frontend, FrontendConfig, FrontendError, ServeConfig, Ticket};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Caller threads per arm.
const CALLERS: usize = 8;
/// Measured requests per caller.
const PER_CALLER: usize = 4_000;
/// Warm-up requests per caller (unmeasured, closed-loop).
const WARMUP: usize = 100;
/// In-flight requests each caller keeps pipelined (open-loop fan-in).
const OUTSTANDING: usize = 64;
/// Zipf exponent and hot-set size: the duplicate-heavy regime the
/// front-end exists for.
const ZIPF_S: f64 = 1.4;
const HOT_SET: usize = 16;
/// Acceptance bars.
const QPS_BAR: f64 = 2.0;
const P99_SLACK: f64 = 1.25;

/// Minimal xorshift64* — deterministic per-caller traffic without
/// threading a rand `Rng` through every worker.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative zipfian distribution over ranks `1..=n`: rank r carries
/// weight `1 / r^s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf: Vec<f64> = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 1..=n {
        acc += 1.0 / (r as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

fn sample(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

fn examples(
    d: &mgp_datagen::Dataset,
    class: mgp_datagen::ClassId,
    n: usize,
    seed: u64,
) -> Vec<TrainingExample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let queries = d.labels.queries_of_class(class);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    sample_examples(
        &queries,
        |q| d.labels.positives_of(q, class),
        |q, v| d.labels.has(q, v, class),
        &anchors,
        n,
        &mut rng,
    )
}

fn submit_retrying(fe: &Frontend, cid: usize, q: NodeId, k: usize) -> Ticket {
    loop {
        match fe.submit(cid, q, k) {
            Ok(t) => return t,
            Err(FrontendError::Overloaded { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected submit rejection: {e}"),
        }
    }
}

/// Edges not present in the graph yet — the churn thread inserts and
/// removes them in alternation, so the graph nets back every two passes.
fn fresh_pairs(
    engine: &SearchEngine,
    anchor: mgp_graph::TypeId,
    n: usize,
) -> Vec<(NodeId, NodeId)> {
    let g = engine.graph();
    let users: Vec<NodeId> = g.nodes_of_type(anchor).to_vec();
    let attrs: Vec<NodeId> = g
        .nodes()
        .filter(|&v| g.node_type(v) != anchor && g.degree(v) > 0)
        .collect();
    let mut pairs = Vec::new();
    'outer: for &u in &users {
        for &a in &attrs {
            if !g.has_edge(u, a) {
                pairs.push((u, a));
                if pairs.len() >= n {
                    break 'outer;
                }
            }
        }
    }
    pairs
}

struct ArmResult {
    qps: f64,
    p99: Duration,
    ingests: usize,
    stats: mgp_online::FrontendStats,
}

/// Runs one traffic arm: `CALLERS` open-loop zipfian callers against a
/// fresh front-end over `engine` (moved in, returned out through the
/// churn thread), while a churn thread streams single-edge deltas
/// through `ingest_serving`.
fn run_arm(
    mut engine: SearchEngine,
    anchor: mgp_graph::TypeId,
    coalesce: bool,
) -> (SearchEngine, ArmResult) {
    let frontend = engine.serve_frontend_with(
        ServeConfig {
            workers: 2,
            shards: 4,
            // LRU off: any duplicate win below is the coalescer's.
            cache_capacity: 0,
        },
        FrontendConfig {
            workers: 2,
            coalesce,
            ..FrontendConfig::default()
        },
    );
    let users: Vec<NodeId> = engine.graph().nodes_of_type(anchor).to_vec();
    let hot: Vec<NodeId> = users.iter().copied().take(HOT_SET).collect();
    let cdf = zipf_cdf(hot.len(), ZIPF_S);
    let churn_pairs = fresh_pairs(&engine, anchor, 16);
    let stop = AtomicBool::new(false);

    let (engine, latencies, elapsed, ingests) = std::thread::scope(|s| {
        let fe = &frontend;
        let churn = s.spawn(|| {
            let mut ingests = 0usize;
            'churn: loop {
                for remove in [false, true] {
                    for &(u, a) in &churn_pairs {
                        if stop.load(Ordering::Relaxed) {
                            break 'churn;
                        }
                        let mut delta = GraphDelta::for_graph(engine.graph());
                        if remove {
                            delta.remove_edge(u, a).unwrap();
                        } else {
                            delta.add_edge(u, a).unwrap();
                        }
                        engine.ingest_serving(&delta, fe.server()).unwrap();
                        ingests += 1;
                    }
                }
            }
            (engine, ingests)
        });

        let callers: Vec<_> = (0..CALLERS)
            .map(|c| {
                let cdf = &cdf;
                let hot = &hot;
                s.spawn(move || {
                    let mut rng = XorShift(0x9E37_79B9 + c as u64 * 0x61C8_8647);
                    // Unmeasured closed-loop warm-up: first touches sort
                    // shard postings in both arms.
                    for _ in 0..WARMUP {
                        let q = hot[sample(cdf, rng.next_f64())];
                        submit_retrying(fe, 0, q, 10).wait().unwrap();
                    }
                    // Measured open-loop phase: keep OUTSTANDING requests
                    // in flight, record each submit→answer latency.
                    let mut lat = Vec::with_capacity(PER_CALLER);
                    let mut inflight: VecDeque<(Instant, Ticket)> =
                        VecDeque::with_capacity(OUTSTANDING);
                    for _ in 0..PER_CALLER {
                        let q = hot[sample(cdf, rng.next_f64())];
                        inflight.push_back((Instant::now(), submit_retrying(fe, 0, q, 10)));
                        if inflight.len() >= OUTSTANDING {
                            let (t0, t) = inflight.pop_front().unwrap();
                            t.wait().unwrap();
                            lat.push(t0.elapsed());
                        }
                    }
                    for (t0, t) in inflight {
                        t.wait().unwrap();
                        lat.push(t0.elapsed());
                    }
                    lat
                })
            })
            .collect();

        let t0 = Instant::now();
        let mut latencies: Vec<Duration> = Vec::with_capacity(CALLERS * PER_CALLER);
        for c in callers {
            latencies.extend(c.join().unwrap());
        }
        let elapsed = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        let (engine, ingests) = churn.join().unwrap();
        (engine, latencies, elapsed, ingests)
    });

    // Quiesced spot-check: the front-end answers exactly like the server
    // it wraps (the full equivalence property lives in the test suite).
    for (i, &q) in hot.iter().enumerate().take(8) {
        let got = submit_retrying(&frontend, i % 2, q, 10).wait().unwrap();
        assert_eq!(
            *got,
            *frontend.server().rank(i % 2, q, 10),
            "arm coalesce={coalesce} diverged from direct rank at q={q}"
        );
    }

    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let p99 = sorted[(sorted.len() - 1) * 99 / 100];
    let qps = latencies.len() as f64 / elapsed.as_secs_f64();
    let stats = frontend.shutdown();
    (
        engine,
        ArmResult {
            qps,
            p99,
            ingests,
            stats,
        },
    )
}

fn main() {
    // Denser attribute pools than the CI default: larger cohorts mean
    // longer posting walks per rank, so the benchmark measures the
    // coalescer against realistic per-query work rather than
    // channel/synchronization overhead.
    let d = generate_facebook(&FacebookConfig {
        n_locations: 15,
        n_hometowns: 15,
        n_schools: 10,
        n_majors: 5,
        n_employers: 20,
        n_work_locations: 8,
        n_work_projects: 15,
        ..FacebookConfig::default()
    });
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    engine.train_class("family", &examples(&d, FAMILY, 200, 9));
    engine.train_class("classmate", &examples(&d, CLASSMATE, 200, 11));

    println!(
        "--- front-end micro-batching ({} nodes, {} edges, {CALLERS} callers x {PER_CALLER} reqs, \
         zipf s={ZIPF_S} over {HOT_SET} hot queries, concurrent churn) ---",
        engine.graph().n_nodes(),
        engine.graph().n_edges(),
    );

    let (engine, base) = run_arm(engine, d.anchor_type, false);
    let (mut engine, coal) = run_arm(engine, d.anchor_type, true);

    println!(
        "baseline (no coalescing) : {:>9.0} qps, p99 {:>10.2?}, {} churn ingests",
        base.qps, base.p99, base.ingests
    );
    println!("  {}", base.stats);
    println!(
        "coalescing               : {:>9.0} qps, p99 {:>10.2?}, {} churn ingests",
        coal.qps, coal.p99, coal.ingests
    );
    println!("  {}", coal.stats);

    let speedup = coal.qps / base.qps.max(1e-9);
    println!(
        "coalescing speedup       : {speedup:>9.1}x qps (bar: {QPS_BAR}x), \
         coalesce ratio {:.1} reqs/execution",
        coal.stats.coalesce_ratio
    );
    assert!(
        coal.stats.coalesce_ratio > 1.0,
        "duplicate-heavy traffic must coalesce (got ratio {:.2})",
        coal.stats.coalesce_ratio
    );
    assert!(
        speedup >= QPS_BAR,
        "acceptance: coalesced QPS must be ≥ {QPS_BAR}x the no-coalescing \
         baseline (got {speedup:.2}x)"
    );
    assert!(
        coal.p99 <= base.p99.mul_f64(P99_SLACK),
        "acceptance: coalesced p99 ({:?}) must hold the baseline p99 SLO \
         ({:?} x {P99_SLACK})",
        coal.p99,
        base.p99
    );

    // --- Forced-pressure shedding ------------------------------------
    // A pinned epoch (slow reader) plus churn retains postings; with a
    // 1-byte high-water mark the gauge trips immediately and the
    // tightened depth-0 queue sheds every request with a typed,
    // pressure-attributed rejection. Releasing the pin restores service.
    let fe = engine.serve_frontend_with(
        ServeConfig {
            workers: 1,
            shards: 2,
            cache_capacity: 0,
        },
        FrontendConfig {
            workers: 1,
            high_water_bytes: 1,
            pressure_queue_depth: 0,
            ..FrontendConfig::default()
        },
    );
    let q0 = engine.graph().nodes_of_type(d.anchor_type)[0];
    let pin = fe.server().pin_epoch(q0);
    let (u, a) = fresh_pairs(&engine, d.anchor_type, 1)[0];
    let mut delta = GraphDelta::for_graph(engine.graph());
    delta.add_edge(u, a).unwrap();
    engine.ingest_serving(&delta, fe.server()).unwrap();
    assert!(
        fe.refresh_pressure(),
        "a pinned epoch over a 1-byte high-water mark must read as pressure"
    );
    let mut pressure_sheds = 0u64;
    for _ in 0..64 {
        match fe.submit(0, q0, 10) {
            Err(FrontendError::Overloaded {
                pressured: true, ..
            }) => pressure_sheds += 1,
            other => panic!("expected pressure shed, got {other:?}"),
        }
    }
    drop(pin);
    assert!(!fe.refresh_pressure(), "releasing the pin clears pressure");
    let recovered = submit_retrying(&fe, 0, q0, 10).wait().unwrap();
    assert_eq!(*recovered, *fe.server().rank(0, q0, 10));
    let shed_stats = fe.shutdown();
    assert_eq!(shed_stats.shed_pressure, pressure_sheds);
    println!(
        "forced pressure          : {pressure_sheds} typed sheds at depth 0, \
         service restored after pin release"
    );
    println!("acceptance               : all bars passed");
}

//! Incremental-update benchmark: the delta pipeline (graph delta →
//! instance delta → index delta → posting-list patch, via
//! `SearchEngine::ingest_serving`) vs the naive alternative it replaces —
//! full re-registration (rematch every model pattern, rebuild the vector
//! index, rebuild the class's score tables, flush the cache).
//!
//! Acceptance (asserted, run in CI): on the Facebook-scale dataset a
//! single-edge **insert** delta and a single-edge **delete** delta must
//! each apply ≥ 5× faster than full re-registration, and the patched
//! server must answer bit-identically to one rebuilt from scratch on the
//! updated graph after either direction of churn. The delete phase
//! removes exactly the edges the insert phase added, so it also soaks
//! the round-trip: the final graph is the original one.
//!
//! A **wide-ingest** section then replays many-edge deltas against two
//! 16-shard servers — one through the parallel phase-5 shard patching,
//! one through the sequential replay baseline — asserting bit-identical
//! stats and rankings always, and a ≥ 1.5× parallel speedup whenever
//! the rayon pool actually has ≥ 2 workers (on a single-core runner the
//! bar is reported but not enforced: there is no parallelism to buy the
//! speedup with).

use mgp_core::{PipelineConfig, QueryServer, SearchEngine, TrainingStrategy};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig, FAMILY};
use mgp_graph::{GraphDelta, NodeId};
use mgp_index::{Transform, VectorIndex};
use mgp_learning::{sample_examples, TrainConfig, TrainingExample};
use mgp_matching::parallel::match_all;
use mgp_matching::{AnchorCounts, SymIso};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Ingests to discard as warm-up (pool spin-up, allocator).
const WARMUP: usize = 4;
/// Full re-registration timing repetitions.
const FULL_REPS: u32 = 3;
/// Query nodes checked for bit-identical equivalence after each phase.
const EQUIV_QUERIES: usize = 60;

fn examples(
    d: &mgp_datagen::Dataset,
    class: mgp_datagen::ClassId,
    n: usize,
    seed: u64,
) -> Vec<TrainingExample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let queries = d.labels.queries_of_class(class);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    sample_examples(
        &queries,
        |q| d.labels.positives_of(q, class),
        |q, v| d.labels.has(q, v, class),
        &anchors,
        n,
        &mut rng,
    )
}

/// Full re-registration cost on the engine's current graph: rematch every
/// pattern the model uses, rebuild the restricted index, re-register the
/// class (which also flushes the server cache). This is exactly what the
/// serving layer had to do per update before the delta pipeline.
fn full_reregistration(engine: &SearchEngine, coords: &[usize], weights: &[f64]) -> VectorIndex {
    let pats: Vec<_> = coords
        .iter()
        .map(|&i| engine.patterns()[i].clone())
        .collect();
    let counts: Vec<AnchorCounts> = match_all(engine.graph(), &pats, &SymIso::new(), 0);
    let idx = VectorIndex::from_counts(&counts, Transform::Log1p);
    let mut rebuilt = QueryServer::new(mgp_online::ServeConfig::default());
    rebuilt.add_class("family", &idx, weights);
    idx
}

/// One churn direction, measured and asserted: applies one single-edge
/// delta per `(u, a)` pair (built by `build_delta`, reported instances
/// read by `instances_of`), averages the ingest cost past the warm-up,
/// times `FULL_REPS` full re-registrations on the resulting graph, prints
/// the comparison, and asserts the ≥ 5× acceptance bar plus bit-identical
/// equivalence of the patched server against the from-scratch rebuild.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    label: &str,
    engine: &mut SearchEngine,
    server: &QueryServer,
    cid: usize,
    coords: &[usize],
    weights: &[f64],
    users: &[NodeId],
    pairs: &[(NodeId, NodeId)],
    build_delta: impl Fn(&mut GraphDelta, NodeId, NodeId),
    instances_of: impl Fn(&mgp_core::IngestReport) -> u64,
) {
    let mut delta_total = Duration::ZERO;
    let mut timed = 0u32;
    let mut instances = 0u64;
    let mut patch_work = mgp_online::DeltaStats::default();
    let mut fused_visits = 0usize;
    for (i, &(u, a)) in pairs.iter().enumerate() {
        let mut delta = GraphDelta::for_graph(engine.graph());
        build_delta(&mut delta, u, a);
        let t0 = Instant::now();
        let report = engine.ingest_serving(&delta, server).unwrap();
        let dt = t0.elapsed();
        if i >= WARMUP {
            delta_total += dt;
            timed += 1;
            instances += instances_of(&report);
            fused_visits += report.fused_shard_visits;
            for &(_, stats) in &report.serving {
                patch_work += stats;
            }
        }
    }
    let delta_mean = delta_total / timed.max(1);

    // Timed full re-registrations on the post-churn graph.
    let mut full_total = Duration::ZERO;
    let mut rebuilt_idx = None;
    for _ in 0..FULL_REPS {
        let t0 = Instant::now();
        rebuilt_idx = Some(full_reregistration(engine, coords, weights));
        full_total += t0.elapsed();
    }
    let full_mean = full_total / FULL_REPS;
    let speedup = full_mean.as_secs_f64() / delta_mean.as_secs_f64().max(1e-12);

    println!(
        "delta apply ({label:>10}) : {delta_mean:>12.2?} mean over {timed} ingests \
         ({instances} instances changed total)"
    );
    println!("serving patch work        : {patch_work} ({fused_visits} fused shard visits)");
    println!("full re-registration      : {full_mean:>12.2?} mean over {FULL_REPS} rebuilds");
    println!("{label:<10} speedup        : {speedup:>12.1}x (acceptance bar: 5x)");

    // Equivalence: the delta-patched server answers bit-identically to a
    // ranker over the from-scratch rebuilt index.
    let rebuilt_idx = rebuilt_idx.expect("at least one rebuild");
    for &q in users.iter().take(EQUIV_QUERIES) {
        let want = mgp_learning::mgp::rank_with_scores(&rebuilt_idx, q, weights, 10);
        assert_eq!(
            *server.rank(cid, q, 10),
            want,
            "delta-patched server diverged from full rebuild at q={q} ({label})"
        );
    }
    println!("equivalence               : {label}-churned rankings == full-rebuild rankings");

    assert!(
        speedup >= 5.0,
        "acceptance: single-edge {label} must apply ≥ 5x faster than full \
         re-registration (got {speedup:.1}x)"
    );
}

fn main() {
    let d = generate_facebook(&FacebookConfig::tiny(42));
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    engine.train_class("family", &examples(&d, FAMILY, 200, 9));
    let (coords, weights) = {
        let m = engine.model("family").unwrap();
        (m.coords.clone(), m.weights.clone())
    };
    let server = engine.serve();
    let cid = server.class_id("family").unwrap();
    println!(
        "--- incremental updates (facebook-scale: {} nodes, {} edges, {} patterns) ---",
        engine.graph().n_nodes(),
        engine.graph().n_edges(),
        coords.len()
    );

    // Candidate single-edge insertions: (user, attribute) pairs that do
    // not exist yet, so every timed ingest does real work — and can be
    // removed again one by one in the delete phase.
    let g = engine.graph().clone();
    let users: Vec<NodeId> = g.nodes_of_type(d.anchor_type).to_vec();
    let attrs: Vec<NodeId> = g
        .nodes()
        .filter(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 0)
        .collect();
    let mut fresh_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    'outer: for &u in &users {
        for &a in &attrs {
            if !g.has_edge(u, a) {
                fresh_pairs.push((u, a));
                if fresh_pairs.len() >= 40 {
                    break 'outer;
                }
            }
        }
    }
    let n_edges_base = engine.graph().n_edges();

    run_phase(
        "insert",
        &mut engine,
        &server,
        cid,
        &coords,
        &weights,
        &users,
        &fresh_pairs,
        |delta, u, a| delta.add_edge(u, a).unwrap(),
        |report| report.new_instances,
    );

    run_phase(
        "delete",
        &mut engine,
        &server,
        cid,
        &coords,
        &weights,
        &users,
        &fresh_pairs,
        |delta, u, a| delta.remove_edge(u, a).unwrap(),
        |report| report.doomed_instances,
    );

    // The delete phase unwound the insert phase exactly.
    assert_eq!(
        engine.graph().n_edges(),
        n_edges_base,
        "insert + delete phases must round-trip to the original edge count"
    );
    println!("round-trip                : graph restored to {n_edges_base} edges");

    wide_ingest_section(&mut engine, &users, &fresh_pairs);
}

/// Wide-ingest comparison: one delta touching anchors across a 16-shard
/// server, applied through the parallel phase-5 fan-out on one server
/// and [`QueryServer::apply_delta_fused_sequential`] on its twin. The
/// two replays must be bit-identical (stats and rankings — asserted
/// unconditionally); the ≥ 1.5× speedup bar is asserted only when the
/// rayon pool has ≥ 2 workers to parallelise across.
fn wide_ingest_section(engine: &mut SearchEngine, users: &[NodeId], pairs: &[(NodeId, NodeId)]) {
    const WIDE_SHARDS: usize = 16;
    const WIDE_CYCLES: usize = 6;
    const WIDE_WARMUP: usize = 2;
    const WIDE_BAR: f64 = 1.5;

    let wide_cfg = || mgp_online::ServeConfig {
        shards: WIDE_SHARDS,
        cache_capacity: 0,
        ..Default::default()
    };
    let par = engine.serve_shared_with(wide_cfg());
    let seq = engine.serve_shared_with(wide_cfg());
    let cid = par.class_id("family").unwrap();
    let wide_pairs = &pairs[..pairs.len().min(32)];
    println!(
        "--- wide ingest ({WIDE_SHARDS} shards, {}-edge deltas, {} rayon workers) ---",
        wide_pairs.len(),
        par.workers()
    );

    let mut par_total = Duration::ZERO;
    let mut seq_total = Duration::ZERO;
    let mut timed = 0u32;
    let mut visits = 0usize;
    for cycle in 0..WIDE_CYCLES {
        // Forward then backward: each cycle nets the graph to zero, so
        // the loop can repeat for stable timings without drift.
        for remove in [false, true] {
            let mut delta = GraphDelta::for_graph(engine.graph());
            for &(u, a) in wide_pairs {
                if remove {
                    delta.remove_edge(u, a).unwrap();
                } else {
                    delta.add_edge(u, a).unwrap();
                }
            }
            let report = engine.ingest(&delta).unwrap();
            for (name, touch) in &report.per_class {
                let index = &engine.model(name).unwrap().index;
                let update = [mgp_online::ClassDelta {
                    class_id: cid,
                    index,
                    touch,
                }];
                let t0 = Instant::now();
                let fp = par.apply_delta_fused(&update);
                let dt_par = t0.elapsed();
                let t1 = Instant::now();
                let fs = seq.apply_delta_fused_sequential(&update);
                let dt_seq = t1.elapsed();
                assert_eq!(
                    fp.per_class, fs.per_class,
                    "parallel and sequential replay must report identical stats"
                );
                assert_eq!(fp.fused_shard_visits, fs.fused_shard_visits);
                if cycle >= WIDE_WARMUP {
                    par_total += dt_par;
                    seq_total += dt_seq;
                    timed += 1;
                    visits += fp.fused_shard_visits;
                }
            }
        }
    }
    let par_mean = par_total / timed.max(1);
    let seq_mean = seq_total / timed.max(1);
    let speedup = seq_mean.as_secs_f64() / par_mean.as_secs_f64().max(1e-12);
    println!(
        "parallel patching         : {par_mean:>12.2?} mean over {timed} wide deltas \
         ({visits} shard visits)"
    );
    println!("sequential replay         : {seq_mean:>12.2?} mean");
    println!("wide-ingest speedup       : {speedup:>12.1}x (acceptance bar: {WIDE_BAR}x with ≥ 2 workers)");

    // Equivalence is unconditional: the two replay modes must be
    // indistinguishable to readers.
    for &q in users.iter().take(EQUIV_QUERIES) {
        assert_eq!(
            *par.rank(cid, q, 10),
            *seq.rank(cid, q, 10),
            "parallel and sequential replay diverged at q={q}"
        );
    }
    println!("equivalence               : parallel rankings == sequential rankings");

    if par.workers() >= 2 {
        assert!(
            speedup >= WIDE_BAR,
            "acceptance: parallel shard patching must beat sequential replay by \
             ≥ {WIDE_BAR}x on a 16-shard wide delta (got {speedup:.1}x)"
        );
    } else {
        println!(
            "wide-ingest bar           : not enforced — 1 rayon worker, no parallelism available"
        );
    }
}

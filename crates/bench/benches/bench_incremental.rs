//! Incremental-update benchmark: the delta pipeline (graph delta →
//! instance delta → index delta → posting-list patch, via
//! `SearchEngine::ingest_serving`) vs the naive alternative it replaces —
//! full re-registration (rematch every model pattern, rebuild the vector
//! index, rebuild the class's score tables, flush the cache).
//!
//! Acceptance (asserted, run in CI): on the Facebook-scale dataset a
//! single-edge **insert** delta and a single-edge **delete** delta must
//! each apply ≥ 5× faster than full re-registration, and the patched
//! server must answer bit-identically to one rebuilt from scratch on the
//! updated graph after either direction of churn. The delete phase
//! removes exactly the edges the insert phase added, so it also soaks
//! the round-trip: the final graph is the original one.
//!
//! A **wide-ingest** section then replays many-edge deltas against two
//! 16-shard servers — one through the parallel phase-5 shard patching,
//! one through the sequential replay baseline — asserting bit-identical
//! stats and rankings always, and a ≥ 1.5× parallel speedup whenever
//! the rayon pool actually has ≥ 2 workers (on a single-core runner the
//! bar is reported but not enforced: there is no parallelism to buy the
//! speedup with).
//!
//! A **hub-storm** section pits the wcoj propose/intersect delta matcher
//! against the seeded-backtracking oracle on the worst case that
//! motivated it: a 1000-edge hub built in one delta and dropped in one
//! delta. Both matchers see identical inputs; the section asserts their
//! `CountDelta`s are bit-identical, that wcoj lands ≥ 3× faster on both
//! storm directions, and that single-edge deltas — the common case —
//! show no regression.

use mgp_core::{PipelineConfig, QueryServer, SearchEngine, TrainingStrategy};
use mgp_datagen::facebook::{generate_facebook, FacebookConfig, FAMILY};
use mgp_graph::{Graph, GraphBuilder, GraphDelta, NodeId};
use mgp_index::{Transform, VectorIndex};
use mgp_learning::{sample_examples, TrainConfig, TrainingExample};
use mgp_matching::parallel::match_all;
use mgp_matching::{
    delta_count_changes, wcoj_count_changes, AnchorCounts, ExtensionPlan, PatternInfo, SymIso,
};
use mgp_metagraph::Metagraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Ingests to discard as warm-up (pool spin-up, allocator).
const WARMUP: usize = 4;
/// Full re-registration timing repetitions.
const FULL_REPS: u32 = 3;
/// Query nodes checked for bit-identical equivalence after each phase.
const EQUIV_QUERIES: usize = 60;

fn examples(
    d: &mgp_datagen::Dataset,
    class: mgp_datagen::ClassId,
    n: usize,
    seed: u64,
) -> Vec<TrainingExample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let queries = d.labels.queries_of_class(class);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    sample_examples(
        &queries,
        |q| d.labels.positives_of(q, class),
        |q, v| d.labels.has(q, v, class),
        &anchors,
        n,
        &mut rng,
    )
}

/// Full re-registration cost on the engine's current graph: rematch every
/// pattern the model uses, rebuild the restricted index, re-register the
/// class (which also flushes the server cache). This is exactly what the
/// serving layer had to do per update before the delta pipeline.
fn full_reregistration(engine: &SearchEngine, coords: &[usize], weights: &[f64]) -> VectorIndex {
    let pats: Vec<_> = coords
        .iter()
        .map(|&i| engine.patterns()[i].clone())
        .collect();
    let counts: Vec<AnchorCounts> = match_all(engine.graph(), &pats, &SymIso::new(), 0);
    let idx = VectorIndex::from_counts(&counts, Transform::Log1p);
    let mut rebuilt = QueryServer::new(mgp_online::ServeConfig::default());
    rebuilt.add_class("family", &idx, weights);
    idx
}

/// One churn direction, measured and asserted: applies one single-edge
/// delta per `(u, a)` pair (built by `build_delta`, reported instances
/// read by `instances_of`), averages the ingest cost past the warm-up,
/// times `FULL_REPS` full re-registrations on the resulting graph, prints
/// the comparison, and asserts the ≥ 5× acceptance bar plus bit-identical
/// equivalence of the patched server against the from-scratch rebuild.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    label: &str,
    engine: &mut SearchEngine,
    server: &QueryServer,
    cid: usize,
    coords: &[usize],
    weights: &[f64],
    users: &[NodeId],
    pairs: &[(NodeId, NodeId)],
    build_delta: impl Fn(&mut GraphDelta, NodeId, NodeId),
    instances_of: impl Fn(&mgp_core::IngestReport) -> u64,
) {
    let mut delta_total = Duration::ZERO;
    let mut timed = 0u32;
    let mut instances = 0u64;
    let mut patch_work = mgp_online::DeltaStats::default();
    let mut fused_visits = 0usize;
    for (i, &(u, a)) in pairs.iter().enumerate() {
        let mut delta = GraphDelta::for_graph(engine.graph());
        build_delta(&mut delta, u, a);
        let t0 = Instant::now();
        let report = engine.ingest_serving(&delta, server).unwrap();
        let dt = t0.elapsed();
        if i >= WARMUP {
            delta_total += dt;
            timed += 1;
            instances += instances_of(&report);
            fused_visits += report.fused_shard_visits;
            for &(_, stats) in &report.serving {
                patch_work += stats;
            }
        }
    }
    let delta_mean = delta_total / timed.max(1);

    // Timed full re-registrations on the post-churn graph.
    let mut full_total = Duration::ZERO;
    let mut rebuilt_idx = None;
    for _ in 0..FULL_REPS {
        let t0 = Instant::now();
        rebuilt_idx = Some(full_reregistration(engine, coords, weights));
        full_total += t0.elapsed();
    }
    let full_mean = full_total / FULL_REPS;
    let speedup = full_mean.as_secs_f64() / delta_mean.as_secs_f64().max(1e-12);

    println!(
        "delta apply ({label:>10}) : {delta_mean:>12.2?} mean over {timed} ingests \
         ({instances} instances changed total)"
    );
    println!("serving patch work        : {patch_work} ({fused_visits} fused shard visits)");
    println!("full re-registration      : {full_mean:>12.2?} mean over {FULL_REPS} rebuilds");
    println!("{label:<10} speedup        : {speedup:>12.1}x (acceptance bar: 5x)");

    // Equivalence: the delta-patched server answers bit-identically to a
    // ranker over the from-scratch rebuilt index.
    let rebuilt_idx = rebuilt_idx.expect("at least one rebuild");
    for &q in users.iter().take(EQUIV_QUERIES) {
        let want = mgp_learning::mgp::rank_with_scores(&rebuilt_idx, q, weights, 10);
        assert_eq!(
            *server.rank(cid, q, 10),
            want,
            "delta-patched server diverged from full rebuild at q={q} ({label})"
        );
    }
    println!("equivalence               : {label}-churned rankings == full-rebuild rankings");

    assert!(
        speedup >= 5.0,
        "acceptance: single-edge {label} must apply ≥ 5x faster than full \
         re-registration (got {speedup:.1}x)"
    );
}

fn main() {
    let d = generate_facebook(&FacebookConfig::tiny(42));
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    engine.train_class("family", &examples(&d, FAMILY, 200, 9));
    let (coords, weights) = {
        let m = engine.model("family").unwrap();
        (m.coords.clone(), m.weights.clone())
    };
    let server = engine.serve();
    let cid = server.class_id("family").unwrap();
    println!(
        "--- incremental updates (facebook-scale: {} nodes, {} edges, {} patterns) ---",
        engine.graph().n_nodes(),
        engine.graph().n_edges(),
        coords.len()
    );

    // Candidate single-edge insertions: (user, attribute) pairs that do
    // not exist yet, so every timed ingest does real work — and can be
    // removed again one by one in the delete phase.
    let g = engine.graph().clone();
    let users: Vec<NodeId> = g.nodes_of_type(d.anchor_type).to_vec();
    let attrs: Vec<NodeId> = g
        .nodes()
        .filter(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 0)
        .collect();
    let mut fresh_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    'outer: for &u in &users {
        for &a in &attrs {
            if !g.has_edge(u, a) {
                fresh_pairs.push((u, a));
                if fresh_pairs.len() >= 40 {
                    break 'outer;
                }
            }
        }
    }
    let n_edges_base = engine.graph().n_edges();

    run_phase(
        "insert",
        &mut engine,
        &server,
        cid,
        &coords,
        &weights,
        &users,
        &fresh_pairs,
        |delta, u, a| delta.add_edge(u, a).unwrap(),
        |report| report.new_instances,
    );

    run_phase(
        "delete",
        &mut engine,
        &server,
        cid,
        &coords,
        &weights,
        &users,
        &fresh_pairs,
        |delta, u, a| delta.remove_edge(u, a).unwrap(),
        |report| report.doomed_instances,
    );

    // The delete phase unwound the insert phase exactly.
    assert_eq!(
        engine.graph().n_edges(),
        n_edges_base,
        "insert + delete phases must round-trip to the original edge count"
    );
    println!("round-trip                : graph restored to {n_edges_base} edges");

    wide_ingest_section(&mut engine, &users, &fresh_pairs);
    hub_storm_section();
}

/// Wide-ingest comparison: one delta touching anchors across a 16-shard
/// server, applied through the parallel phase-5 fan-out on one server
/// and [`QueryServer::apply_delta_fused_sequential`] on its twin. The
/// two replays must be bit-identical (stats and rankings — asserted
/// unconditionally); the ≥ 1.5× speedup bar is asserted only when the
/// rayon pool has ≥ 2 workers to parallelise across.
fn wide_ingest_section(engine: &mut SearchEngine, users: &[NodeId], pairs: &[(NodeId, NodeId)]) {
    const WIDE_SHARDS: usize = 16;
    const WIDE_CYCLES: usize = 6;
    const WIDE_WARMUP: usize = 2;
    const WIDE_BAR: f64 = 1.5;

    let wide_cfg = || mgp_online::ServeConfig {
        shards: WIDE_SHARDS,
        cache_capacity: 0,
        ..Default::default()
    };
    let par = engine.serve_shared_with(wide_cfg());
    let seq = engine.serve_shared_with(wide_cfg());
    let cid = par.class_id("family").unwrap();
    let wide_pairs = &pairs[..pairs.len().min(32)];
    println!(
        "--- wide ingest ({WIDE_SHARDS} shards, {}-edge deltas, {} rayon workers) ---",
        wide_pairs.len(),
        par.workers()
    );

    let mut par_total = Duration::ZERO;
    let mut seq_total = Duration::ZERO;
    let mut timed = 0u32;
    let mut visits = 0usize;
    for cycle in 0..WIDE_CYCLES {
        // Forward then backward: each cycle nets the graph to zero, so
        // the loop can repeat for stable timings without drift.
        for remove in [false, true] {
            let mut delta = GraphDelta::for_graph(engine.graph());
            for &(u, a) in wide_pairs {
                if remove {
                    delta.remove_edge(u, a).unwrap();
                } else {
                    delta.add_edge(u, a).unwrap();
                }
            }
            let report = engine.ingest(&delta).unwrap();
            for (name, touch) in &report.per_class {
                let index = &engine.model(name).unwrap().index;
                let update = [mgp_online::ClassDelta {
                    class_id: cid,
                    index,
                    touch,
                }];
                let t0 = Instant::now();
                let fp = par.apply_delta_fused(&update);
                let dt_par = t0.elapsed();
                let t1 = Instant::now();
                let fs = seq.apply_delta_fused_sequential(&update);
                let dt_seq = t1.elapsed();
                assert_eq!(
                    fp.per_class, fs.per_class,
                    "parallel and sequential replay must report identical stats"
                );
                assert_eq!(fp.fused_shard_visits, fs.fused_shard_visits);
                if cycle >= WIDE_WARMUP {
                    par_total += dt_par;
                    seq_total += dt_seq;
                    timed += 1;
                    visits += fp.fused_shard_visits;
                }
            }
        }
    }
    let par_mean = par_total / timed.max(1);
    let seq_mean = seq_total / timed.max(1);
    let speedup = seq_mean.as_secs_f64() / par_mean.as_secs_f64().max(1e-12);
    println!(
        "parallel patching         : {par_mean:>12.2?} mean over {timed} wide deltas \
         ({visits} shard visits)"
    );
    println!("sequential replay         : {seq_mean:>12.2?} mean");
    println!("wide-ingest speedup       : {speedup:>12.1}x (acceptance bar: {WIDE_BAR}x with ≥ 2 workers)");

    // Equivalence is unconditional: the two replay modes must be
    // indistinguishable to readers.
    for &q in users.iter().take(EQUIV_QUERIES) {
        assert_eq!(
            *par.rank(cid, q, 10),
            *seq.rank(cid, q, 10),
            "parallel and sequential replay diverged at q={q}"
        );
    }
    println!("equivalence               : parallel rankings == sequential rankings");

    if par.workers() >= 2 {
        assert!(
            speedup >= WIDE_BAR,
            "acceptance: parallel shard patching must beat sequential replay by \
             ≥ {WIDE_BAR}x on a 16-shard wide delta (got {speedup:.1}x)"
        );
    } else {
        println!(
            "wide-ingest bar           : not enforced — 1 rayon worker, no parallelism available"
        );
    }
}

/// Edges the storm hub attaches (and the drop delta removes at once).
const HUB_DEGREE: usize = 1_000;
/// wcoj must beat the seeded matcher by at least this factor on a storm.
const STORM_BAR: f64 = 3.0;
/// Single-edge deltas timed in the no-regression pass.
const SINGLE_DELTAS: usize = 200;
/// wcoj's single-edge total may exceed the seeded total by at most this
/// factor (plus an absolute grace absorbing scheduler noise on the
/// microsecond-scale baseline).
const SINGLE_MARGIN: f64 = 1.25;
const SINGLE_GRACE: Duration = Duration::from_millis(20);

/// Times `delta_count_changes` (the seeded oracle) and
/// `wcoj_count_changes` on identical inputs across the whole pattern
/// catalogue, asserting the `CountDelta`s are bit-identical. Returns
/// (seeded time, wcoj time).
#[allow(clippy::type_complexity)]
fn race_matchers(
    label: &str,
    g_pre: &Graph,
    g_post: &Graph,
    catalogue: &[(PatternInfo, ExtensionPlan)],
    removed_edges: &[(NodeId, NodeId)],
    new_edges: &[(NodeId, NodeId)],
    new_nodes: &[NodeId],
) -> (Duration, Duration) {
    let t0 = Instant::now();
    let seeded: Vec<_> = catalogue
        .iter()
        .map(|(p, _)| delta_count_changes(g_pre, g_post, p, removed_edges, new_edges, new_nodes))
        .collect();
    let dt_seeded = t0.elapsed();

    let t1 = Instant::now();
    let wcoj: Vec<_> = catalogue
        .iter()
        .map(|(p, plan)| {
            wcoj_count_changes(g_pre, g_post, p, plan, removed_edges, new_edges, new_nodes)
        })
        .collect();
    let dt_wcoj = t1.elapsed();

    for ((s, (w, _)), (p, _)) in seeded.iter().zip(&wcoj).zip(catalogue) {
        assert_eq!(
            s.changes.per_node,
            w.changes.per_node,
            "{label}: wcoj per-node delta diverged from the seeded oracle on {}",
            p.metagraph.brief()
        );
        assert_eq!(
            s.changes.per_pair,
            w.changes.per_pair,
            "{label}: wcoj per-pair delta diverged from the seeded oracle on {}",
            p.metagraph.brief()
        );
        assert_eq!(s.new_instances, w.new_instances, "{label}: new instances");
        assert_eq!(
            s.doomed_instances, w.doomed_instances,
            "{label}: doomed instances"
        );
    }
    (dt_seeded, dt_wcoj)
}

/// The storm world: users each wired to one school and one major, with
/// pools sized so base degrees stay small — the hub is the only dense
/// structure, exactly the shape that made per-edge seeded backtracking
/// quadratic in hub degree.
fn hub_storm_section() {
    const N_USERS: usize = 1_200;
    const N_SCHOOLS: usize = 60;
    const N_MAJORS: usize = 400;

    let mut b = GraphBuilder::new();
    let user = b.add_type("user");
    let school = b.add_type("school");
    let major = b.add_type("major");
    let users: Vec<NodeId> = (0..N_USERS)
        .map(|i| b.add_node(user, format!("u{i}")))
        .collect();
    let schools: Vec<NodeId> = (0..N_SCHOOLS)
        .map(|i| b.add_node(school, format!("s{i}")))
        .collect();
    let majors: Vec<NodeId> = (0..N_MAJORS)
        .map(|i| b.add_node(major, format!("m{i}")))
        .collect();
    for (i, &u) in users.iter().enumerate() {
        b.add_edge(u, schools[i % N_SCHOOLS]).unwrap();
        b.add_edge(u, majors[i % N_MAJORS]).unwrap();
    }
    let g = b.build();

    let (u, s, m) = (user, school, major);
    let metas = [
        Metagraph::from_edges(&[u, s, u], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[u, m, u], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[u, u, s, m], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap(),
    ];
    let catalogue: Vec<(PatternInfo, ExtensionPlan)> = metas
        .iter()
        .map(|meta| {
            let p = PatternInfo::new(meta.clone(), user);
            let plan = ExtensionPlan::compile(&p, &g);
            (p, plan)
        })
        .collect();
    println!(
        "--- hub storm ({} nodes, {} edges, {}-edge hub, {} patterns) ---",
        g.n_nodes(),
        g.n_edges(),
        HUB_DEGREE,
        catalogue.len()
    );

    // Storm build: one delta attaches a brand-new school hub to
    // HUB_DEGREE users.
    let mut build = GraphDelta::for_graph(&g);
    let hub = build.add_node(school, "storm-hub");
    for &v in users.iter().take(HUB_DEGREE) {
        build.add_edge(hub, v).unwrap();
    }
    let ext = g.apply_delta(&build).unwrap();
    let (seeded_build, wcoj_build) = race_matchers(
        "hub-build",
        &g,
        &ext.graph,
        &catalogue,
        &[],
        &ext.new_edges,
        &ext.new_nodes,
    );
    let build_speedup = seeded_build.as_secs_f64() / wcoj_build.as_secs_f64().max(1e-12);
    println!(
        "hub build ({HUB_DEGREE} edges)    : seeded {seeded_build:>10.2?}  wcoj {wcoj_build:>10.2?}  \
         ({build_speedup:.1}x, bar {STORM_BAR}x)"
    );

    // Storm drop: the whole hub removed in one delta, matched over the
    // pre-delete graph.
    let g_with_hub = ext.graph;
    let mut drop = GraphDelta::for_graph(&g_with_hub);
    drop.remove_node(hub).unwrap();
    let ext = g_with_hub.apply_delta(&drop).unwrap();
    assert_eq!(ext.removed_edges.len(), HUB_DEGREE, "drop removes the hub");
    let (seeded_drop, wcoj_drop) = race_matchers(
        "hub-drop",
        &g_with_hub,
        &ext.graph,
        &catalogue,
        &ext.removed_edges,
        &[],
        &[],
    );
    let drop_speedup = seeded_drop.as_secs_f64() / wcoj_drop.as_secs_f64().max(1e-12);
    println!(
        "hub drop ({HUB_DEGREE} edges)     : seeded {seeded_drop:>10.2?}  wcoj {wcoj_drop:>10.2?}  \
         ({drop_speedup:.1}x, bar {STORM_BAR}x)"
    );

    // No-regression pass: single-edge deltas, the common case the wcoj
    // rewrite must not tax. Fresh (user, school) edges so every delta
    // does real matching work; alternating insert/remove nets to zero.
    let mut g_cur = ext.graph;
    let mut seeded_single = Duration::ZERO;
    let mut wcoj_single = Duration::ZERO;
    for i in 0..SINGLE_DELTAS {
        let v = users[(i * 7) % N_USERS];
        let t = schools[(i * 11 + 1) % N_SCHOOLS];
        if g_cur.has_edge(v, t) {
            continue;
        }
        for remove in [false, true] {
            let mut d = GraphDelta::for_graph(&g_cur);
            if remove {
                d.remove_edge(v, t).unwrap();
            } else {
                d.add_edge(v, t).unwrap();
            }
            let ext = g_cur.apply_delta(&d).unwrap();
            let (ds, dw) = race_matchers(
                "single-edge",
                &g_cur,
                &ext.graph,
                &catalogue,
                &ext.removed_edges,
                &ext.new_edges,
                &ext.new_nodes,
            );
            seeded_single += ds;
            wcoj_single += dw;
            g_cur = ext.graph;
        }
    }
    println!(
        "single-edge totals        : seeded {seeded_single:>10.2?}  wcoj {wcoj_single:>10.2?} \
         over {SINGLE_DELTAS} insert+remove rounds"
    );
    println!("equivalence               : wcoj CountDeltas == seeded oracle on every delta");

    assert!(
        build_speedup >= STORM_BAR,
        "acceptance: wcoj must beat seeded backtracking ≥ {STORM_BAR}x on the \
         {HUB_DEGREE}-edge hub build (got {build_speedup:.1}x)"
    );
    assert!(
        drop_speedup >= STORM_BAR,
        "acceptance: wcoj must beat seeded backtracking ≥ {STORM_BAR}x on the \
         {HUB_DEGREE}-edge hub drop (got {drop_speedup:.1}x)"
    );
    let single_bar = seeded_single.mul_f64(SINGLE_MARGIN) + SINGLE_GRACE;
    assert!(
        wcoj_single <= single_bar,
        "acceptance: wcoj must not regress single-edge deltas \
         (wcoj {wcoj_single:?} vs seeded {seeded_single:?}, bar {single_bar:?})"
    );
}

//! Offline shim for the `bytes` crate surface used by `mgp_graph::binary`:
//! [`Bytes`] / [`BytesMut`] with the little-endian [`Buf`] / [`BufMut`]
//! accessors. Backed by a plain `Vec<u8>` plus a cursor — no refcounted
//! zero-copy slicing, which the codec does not need.

use std::ops::Deref;

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Bytes not yet consumed.
    fn rest(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// An owned copy of a sub-range of the unread bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from(&self.rest()[range])
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.rest().len()
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.rest().is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.rest()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.rest()
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// Read access with a cursor (little-endian getters).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Advances the cursor.
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Copies `dst.len()` bytes out, advancing. Panics if underfull.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end");
        self.pos += n;
    }
    fn chunk(&self) -> &[u8] {
        self.rest()
    }
}

/// Write access (little-endian putters).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(0x0123456789ABCDEF);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 2 + 4 + 8 + 4);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 0x0123456789ABCDEF);
        let tail = r.copy_to_bytes(4);
        assert_eq!(&tail[..], b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_sees_unread_suffix() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        b.advance(1);
        assert_eq!(&b[..], &[2, 3, 4]);
        let mut dst = [0u8; 2];
        b.copy_to_slice(&mut dst);
        assert_eq!(dst, [2, 3]);
        assert_eq!(b.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.get_u32_le();
    }
}

//! Offline shim providing [`ChaCha8Rng`] over the vendored `rand` traits.
//!
//! A real ChaCha stream cipher core with 8 rounds, keyed from a 32-byte
//! seed. Deterministic per seed (which is all the workspace relies on);
//! the exact stream differs from upstream `rand_chacha` — no golden values
//! in this repo depend on upstream streams.

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut work = state;
        for _ in 0..4 {
            // Two rounds per iteration (column + diagonal) → 8 rounds.
            quarter(&mut work, 0, 4, 8, 12);
            quarter(&mut work, 1, 5, 9, 13);
            quarter(&mut work, 2, 6, 10, 14);
            quarter(&mut work, 3, 7, 11, 15);
            quarter(&mut work, 0, 5, 10, 15);
            quarter(&mut work, 1, 6, 11, 12);
            quarter(&mut work, 2, 7, 8, 13);
            quarter(&mut work, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = work[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16, // force refill on first use
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((0.48..0.52).contains(&mean), "mean={mean}");
        // All 64 bit positions toggle.
        let mut or = 0u64;
        let mut and = u64::MAX;
        for _ in 0..1000 {
            let v = rng.next_u64();
            or |= v;
            and &= v;
        }
        assert_eq!(or, u64::MAX);
        assert_eq!(and, 0);
    }
}

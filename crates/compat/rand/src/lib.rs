//! Offline shim for the parts of `rand` 0.9 this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! traits the workspace codes against — [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`seq::SliceRandom`], [`seq::IndexedRandom`] — with the
//! rand 0.9 method names (`random`, `random_range`, `random_bool`).
//!
//! Statistical quality notes: integer ranges use a modulo reduction (the
//! bias is ≤ width/2⁶⁴ — irrelevant for test/datagen workloads), floats use
//! the standard 53-bit mantissa construction. Determinism is per-seed, as
//! the workspace expects; the exact streams differ from upstream rand,
//! which nothing in this repo depends on.

use std::ops::{Range, RangeInclusive};

/// Core random-number source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A deterministic RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::random`].
pub trait Random: Sized {
    /// Draws a uniformly distributed value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Uniform in [0, 1) with 53 bits of precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable within bounds. The blanket
/// `impl SampleRange<T> for Range<T>` below is generic over this trait —
/// matching real rand's shape so integer-literal inference propagates from
/// surrounding expressions into the range (e.g. `rng.random_range(0..n)`
/// infers `usize` when the result is used as an index).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_in<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_incl<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128;
                let r = (rng.next_u64() as u128) % width;
                (start as i128 + r as i128) as $t
            }
            fn sample_incl<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % width;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample empty range");
                let u = <$t as Random>::random_from(rng);
                start + u * (end - start)
            }
            fn sample_incl<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Random>::random_from(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_incl(*self.start(), *self.end(), rng)
    }
}

/// User-facing random-value methods (rand 0.9 names).
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// A value uniformly distributed over `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related randomness (shuffle / choose).
pub mod seq {
    use super::RngCore;

    /// In-place random shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// Element type.
        type Output;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{IndexedRandom, SliceRandom};
    use super::*;

    struct Xorshift(u64);
    impl RngCore for Xorshift {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Xorshift(42);
        for _ in 0..1000 {
            let a: usize = rng.random_range(3..8);
            assert!((3..8).contains(&a));
            let b: u64 = rng.random_range(0..=5);
            assert!(b <= 5);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let i: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = Xorshift(7);
        let n = 10_000;
        let heads = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let frac = heads as f64 / n as f64;
        assert!((0.25..0.35).contains(&frac), "frac={frac}");
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = Xorshift(9);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "shuffle of 50 elements left them in place");
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Derive macros for the vendored mini-serde (`crates/compat/serde`).
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the mini-serde data model (`serde::Value`) without `syn`/`quote`: the
//! item is parsed directly from the `proc_macro` token stream and the impl
//! is emitted as a source string.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields, honouring `#[serde(skip)]` and
//!   `#[serde(default)]` on fields and `#[serde(transparent)]` on the
//!   container;
//! * tuple structs (1-field newtypes serialise as their inner value, like
//!   real serde; larger ones as arrays);
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generic items are intentionally unsupported and fail with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum Payload {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    body: Body,
}

/// Scans one `[...]` attribute group; returns the idents inside a
/// `serde(...)` list (empty for non-serde attributes).
fn serde_attr_idents(group: &proc_macro::Group) -> Vec<String> {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Vec::new(),
    }
    let mut out = Vec::new();
    if let Some(TokenTree::Group(inner)) = tokens.next() {
        for tt in inner.stream() {
            if let TokenTree::Ident(id) = tt {
                out.push(id.to_string());
            }
        }
    }
    out
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes a run of `#[...]` attributes, returning all idents found in
/// `serde(...)` lists among them.
fn take_attrs(it: &mut TokenIter) -> Vec<String> {
    let mut flags = Vec::new();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // Inner attributes (`#![..]`) cannot appear here; the next
                // token is the bracket group.
                if let Some(TokenTree::Group(g)) = it.next() {
                    flags.extend(serde_attr_idents(&g));
                }
            }
            _ => return flags,
        }
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn take_vis(it: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

/// Consumes tokens of a type (or expression) until a top-level `,`,
/// tracking `<`/`>` nesting. The comma itself is consumed.
fn skip_until_comma(it: &mut TokenIter) {
    let mut depth = 0i64;
    while let Some(tt) = it.peek() {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && depth == 0 {
                    it.next();
                    return;
                }
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    depth -= 1;
                }
                it.next();
            }
            _ => {
                it.next();
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut it: TokenIter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let flags = take_attrs(&mut it);
        take_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive: expected `:` after field `{name}`"),
        }
        skip_until_comma(&mut it);
        fields.push(Field {
            name,
            skip: flags.iter().any(|f| f == "skip"),
            default: flags.iter().any(|f| f == "default"),
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it: TokenIter = stream.into_iter().peekable();
    let mut n = 0usize;
    loop {
        take_attrs(&mut it);
        take_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        skip_until_comma(&mut it);
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it: TokenIter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        let payload = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Payload::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())
                    .into_iter()
                    .map(|f| f.name)
                    .collect();
                it.next();
                Payload::Named(names)
            }
            _ => Payload::Unit,
        };
        // Explicit discriminant and/or trailing comma.
        skip_until_comma(&mut it);
        variants.push(Variant { name, payload });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it: TokenIter = input.into_iter().peekable();
    let container_flags = take_attrs(&mut it);
    take_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    if kind != "struct" && kind != "enum" {
        panic!("serde_derive: expected struct or enum, got `{kind}`");
    }
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic items are not supported (item `{name}`)");
        }
    }
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Body::Named(parse_named_fields(g.stream()))
            } else {
                Body::Enum(parse_variants(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Body::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
        other => panic!("serde_derive: unexpected item body {other:?}"),
    };
    Item {
        name,
        transparent: container_flags.iter().any(|f| f == "transparent"),
        body,
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            if item.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.skip)
                    .expect("transparent struct needs a field");
                format!("::serde::Serialize::serialize(&self.{})", f.name)
            } else {
                let mut s = String::from(
                    "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    s.push_str(&format!(
                        "__fields.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&self.{n})));\n",
                        n = f.name
                    ));
                }
                s.push_str("::serde::Value::Object(__fields)");
                s
            }
        }
        Body::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.payload {
                    Payload::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Payload::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__a0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::serialize(__a0))]),\n"
                    )),
                    Payload::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Payload::Named(fields) => {
                        let binds = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            if item.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.skip)
                    .expect("transparent struct needs a field");
                format!(
                    "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::deserialize(__v)? }})",
                    f.name
                )
            } else {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!(
                            "{}: ::std::default::Default::default(),\n",
                            f.name
                        ));
                    } else if f.default {
                        inits.push_str(&format!(
                            "{n}: ::serde::helpers::field_or_default(__v, \"{n}\")?,\n",
                            n = f.name
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{n}: ::serde::helpers::field(__v, \"{n}\")?,\n",
                            n = f.name
                        ));
                    }
                }
                format!("::std::result::Result::Ok({name} {{\n{inits}}})")
            }
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::helpers::elem(__v, {i})?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.payload {
                    Payload::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Payload::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__val)?)),\n"
                    )),
                    Payload::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::helpers::elem(__val, {i})?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({})),\n",
                            items.join(", ")
                        ));
                    }
                    Payload::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::helpers::field(__val, \"{f}\")?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__k, __val) = &__o[0];\n\
                 match __k.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::new(\"expected enum representation for {name}\".to_string())),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}

/// Derives `serde::Serialize` (mini-serde data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (mini-serde data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

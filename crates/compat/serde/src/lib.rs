//! Offline mini-serde: the subset of serde this workspace relies on.
//!
//! The build environment cannot reach crates.io, so instead of the real
//! serde this shim provides a *much* simpler data model: values serialise
//! into a JSON-shaped [`Value`] tree and deserialise back out of one. The
//! derive macros live in the sibling `serde_derive` shim and target exactly
//! this model; `serde_json` (also shimmed) renders [`Value`] to/from JSON
//! text.
//!
//! Differences from real serde that matter here:
//!
//! * maps serialise as arrays of `[key, value]` pairs regardless of key
//!   type (round-trips fine; not wire-compatible with serde_json's
//!   string-keyed objects);
//! * no zero-copy deserialisation, no lifetimes, no visitors;
//! * unsupported shapes fail at compile time inside the derive.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};
use std::time::Duration;

/// The serialisation data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (used for negative values).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Key-value record (insertion-ordered).
    Object(Vec<(String, Value)>),
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can serialise itself into the mini-serde data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// A value that can reconstruct itself from the mini-serde data model.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`] tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => return Err(Error::new(format!("expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(u).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u).map_err(|_| Error::new("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(Error::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(i).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Int(i) => Ok(i as $t),
                    ref other => Err(Error::new(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => Ok(($(helpers::elem::<$t>(v, $n).map_err(|_| Error::new(format!("bad tuple element {} in {items:?}", $n)))?,)+)),
                    other => Err(Error::new(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )+};
}
impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// Maps serialise as arrays of `[key, value]` pairs — key types need not be
/// strings, unlike real serde_json.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => {
                let mut map = HashMap::with_capacity_and_hasher(items.len(), S::default());
                for item in items {
                    let (k, val): (K, V) = Deserialize::deserialize(item)?;
                    map.insert(k, val);
                }
                Ok(map)
            }
            other => Err(Error::new(format!("expected map array, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => {
                let mut map = BTreeMap::new();
                for item in items {
                    let (k, val): (K, V) = Deserialize::deserialize(item)?;
                    map.insert(k, val);
                }
                Ok(map)
            }
            other => Err(Error::new(format!("expected map array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        Ok(items.into_iter().collect())
    }
}

/// `Duration` uses real serde's `{secs, nanos}` shape.
impl Serialize for Duration {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}
impl Deserialize for Duration {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let secs: u64 = helpers::field(v, "secs")?;
        let nanos: u32 = helpers::field(v, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Lookup helpers used by the generated derive code.
pub mod helpers {
    use super::{Deserialize, Error, Value};

    /// Reads a named field out of an object value.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, val)) => {
                    T::deserialize(val).map_err(|e| Error::new(format!("field `{name}`: {e}")))
                }
                None => Err(Error::new(format!("missing field `{name}`"))),
            },
            other => Err(Error::new(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Like [`field`], but falls back to `Default` when the field is absent.
    pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, val)) => T::deserialize(val),
                None => Ok(T::default()),
            },
            other => Err(Error::new(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Reads a positional element out of an array value.
    pub fn elem<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
        match v {
            Value::Array(items) => match items.get(i) {
                Some(val) => T::deserialize(val),
                None => Err(Error::new(format!("missing array element {i}"))),
            },
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

//! Offline shim for the slice of rayon this workspace uses: scoped
//! fork-join parallelism (`scope`/`spawn`, `join`) and
//! `current_num_threads`, backed by a **persistent thread pool**.
//!
//! Earlier versions spawned fresh OS threads per `scope` call, which put
//! thread-creation latency on the serving hot path (`QueryServer::
//! rank_batch` opens a scope per batch). The pool here is created lazily
//! on first use, sized to the available parallelism, and shared by every
//! scope for the life of the process. There is still no work *stealing*
//! between per-task queues (tasks go through one shared injector), but
//! call sites batch work into per-worker chunks, so the queue sees a
//! handful of tasks per scope, not one per item.
//!
//! Scoped borrowing works like `std::thread::scope`: `scope` does not
//! return before every spawned task has finished, which is what makes the
//! internal lifetime erasure of borrowing closures sound. While waiting,
//! the scoping thread *helps* drain the shared queue, so scopes opened
//! from inside pool workers (nesting) cannot deadlock the pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Number of worker threads a parallel section will use by default.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A pool task: a scope-spawned closure whose borrows have been erased to
/// `'static` (sound because the owning `scope` joins before returning).
type Task = Box<dyn FnOnce() + Send + 'static>;

/// The shared injector queue all scopes push into and all workers (and
/// helping scope threads) pop from.
struct Injector {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
}

impl Injector {
    fn push(&self, task: Task) {
        self.queue
            .lock()
            .expect("injector poisoned")
            .push_back(task);
        self.available.notify_one();
    }

    fn try_pop(&self) -> Option<Task> {
        self.queue.lock().expect("injector poisoned").pop_front()
    }
}

/// The process-wide pool, created on first use. Workers are detached and
/// live for the rest of the process — that is the point.
fn injector() -> &'static Injector {
    static POOL: OnceLock<&'static Injector> = OnceLock::new();
    POOL.get_or_init(|| {
        let inj: &'static Injector = Box::leak(Box::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..current_num_threads() {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || loop {
                    let task = {
                        let mut q = inj.queue.lock().expect("injector poisoned");
                        loop {
                            if let Some(t) = q.pop_front() {
                                break t;
                            }
                            q = inj.available.wait(q).expect("injector poisoned");
                        }
                    };
                    // Panics are caught inside the task wrapper; workers
                    // never unwind and never exit.
                    task();
                })
                .expect("failed to spawn pool worker");
        }
        inj
    })
}

/// Join-state shared between a scope and its spawned tasks.
#[derive(Default)]
struct ScopeSync {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

/// A scope handle for spawning borrowing tasks.
pub struct Scope<'scope, 'env: 'scope> {
    sync: &'scope Arc<ScopeSync>,
    /// Invariance over `'scope`/`'env`, mirroring `std::thread::Scope`.
    _marker: std::marker::PhantomData<&'scope mut &'env ()>,
}

/// Argument passed to spawned closures (rayon passes the scope for nested
/// spawns; this shim supports none and call sites use `|_|`).
pub struct NestedScope(());

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task onto the shared pool.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&NestedScope) + Send + 'scope,
    {
        *self.sync.pending.lock().expect("scope poisoned") += 1;
        let sync = Arc::clone(self.sync);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(|| f(&NestedScope(())))).is_err() {
                sync.panicked.store(true, Ordering::Relaxed);
            }
            let mut pending = sync.pending.lock().expect("scope poisoned");
            *pending -= 1;
            if *pending == 0 {
                sync.done.notify_all();
            }
        });
        // SAFETY: `scope` does not return before `pending` reaches zero,
        // i.e. before this closure (and everything it borrows from
        // `'scope`/`'env`) has finished executing — the same argument that
        // makes `std::thread::scope` sound. Erasing the lifetime is
        // therefore safe; it never dangles.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        injector().push(task);
    }
}

/// Runs `f` with a scope in which tasks borrowing local data can be
/// spawned; all tasks join before `scope` returns. Tasks run on the
/// persistent pool; the calling thread helps drain the queue while it
/// waits. Panics in tasks are surfaced as a panic here after all tasks
/// complete.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let sync = Arc::new(ScopeSync::default());
    let result = {
        let handle = Scope {
            sync: &sync,
            _marker: std::marker::PhantomData,
        };
        catch_unwind(AssertUnwindSafe(|| f(&handle)))
    };
    // Join phase: execute queued work (ours or anyone's) while our
    // counter drains. Helping keeps nested scopes on pool workers
    // deadlock-free and gets small scopes done without a context switch.
    loop {
        if *sync.pending.lock().expect("scope poisoned") == 0 {
            break;
        }
        if let Some(task) = injector().try_pop() {
            task();
            continue;
        }
        let pending = sync.pending.lock().expect("scope poisoned");
        if *pending == 0 {
            break;
        }
        // Bounded wait: re-check the queue occasionally in case every
        // worker is itself blocked joining a scope.
        let _ = sync
            .done
            .wait_timeout(pending, Duration::from_millis(1))
            .expect("scope poisoned");
    }
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(r) => {
            if sync.panicked.load(Ordering::Relaxed) {
                panic!("rayon shim: a spawned scope task panicked");
            }
            r
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
/// `b` is offloaded to the pool while `a` runs on the calling thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    scope(|s| {
        let rb_slot = &mut rb;
        s.spawn(move |_| *rb_slot = Some(b()));
        ra = Some(a());
    });
    (
        ra.expect("join: first closure ran"),
        rb.expect("join: second closure ran"),
    )
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn scope_joins_all_tasks() {
        let sum = AtomicU64::new(0);
        let items: Vec<u64> = (0..100).collect();
        super::scope(|s| {
            for chunk in items.chunks(25) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn pool_threads_are_reused_across_scopes() {
        // std::thread::ThreadId is never reused within a process, so if
        // every scope spawned fresh threads this set would keep growing.
        // With the persistent pool it is bounded by pool size + callers.
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..20 {
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        ids.lock().unwrap().insert(std::thread::current().id());
                        std::thread::yield_now();
                    });
                }
            });
        }
        let distinct = ids.lock().unwrap().len();
        // Bound: pool workers + this thread + a slack for *other* tests in
        // this binary, whose scope help-loops share the injector and may
        // legitimately execute a few of our tasks on their threads. A
        // spawn-per-task regression would produce ~80 distinct ids.
        let bound = super::current_num_threads() + 1 + 6;
        assert!(
            distinct <= bound,
            "{distinct} distinct worker threads for 20 scopes (bound {bound}) — pool not reused"
        );
    }

    #[test]
    fn scopes_can_nest_through_tasks() {
        // A scope opened from inside a pool task must complete (the
        // waiting thread helps drain the queue, so this cannot deadlock
        // even with every worker occupied).
        let total = AtomicU64::new(0);
        super::scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|_| {
                    super::scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|_| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    #[should_panic(expected = "spawned scope task panicked")]
    fn task_panic_propagates_after_join() {
        let finished = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|_| panic!("boom"));
            s.spawn(|_| {
                finished.fetch_add(1, Ordering::Relaxed);
            });
        });
    }

    #[test]
    fn many_sequential_scopes_stay_correct() {
        for round in 0..50u64 {
            let sum = AtomicU64::new(0);
            let sum_ref = &sum;
            super::scope(|s| {
                for i in 0..8 {
                    s.spawn(move |_| {
                        sum_ref.fetch_add(round + i, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 8 * round + 28);
        }
    }
}

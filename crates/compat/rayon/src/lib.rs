//! Offline shim for the slice of rayon this workspace uses: scoped
//! fork-join parallelism (`scope`/`spawn`, `join`) and
//! `current_num_threads`, implemented over `std::thread::scope`.
//!
//! Unlike real rayon there is no persistent work-stealing pool — each
//! `scope` call spawns OS threads. Callers therefore batch work into
//! per-worker chunks (one `spawn` per worker, not per item), which is also
//! the access pattern that keeps per-worker scratch state trivially owned.

/// Number of worker threads a parallel section will use by default.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A scope handle for spawning borrowing tasks.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Argument passed to spawned closures (rayon passes the scope for nested
/// spawns; this shim supports none and call sites use `|_|`).
pub struct NestedScope(());

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on its own scoped thread.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&NestedScope) + Send + 'scope,
    {
        self.inner.spawn(move || f(&NestedScope(())));
    }
}

/// Runs `f` with a scope in which tasks borrowing local data can be
/// spawned; all tasks join before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let sum = AtomicU64::new(0);
        let items: Vec<u64> = (0..100).collect();
        super::scope(|s| {
            for chunk in items.chunks(25) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}

//! Offline shim for `crossbeam::scope`, backed by `std::thread::scope`.
//!
//! API-compatible with the one call pattern this workspace uses:
//!
//! ```
//! let sum = std::sync::atomic::AtomicU64::new(0);
//! crossbeam::scope(|scope| {
//!     let sum = &sum;
//!     for i in 0..4u64 {
//!         scope.spawn(move |_| sum.fetch_add(i, std::sync::atomic::Ordering::Relaxed));
//!     }
//! })
//! .unwrap();
//! ```
//!
//! Behavioural difference: if a spawned thread panics, `std::thread::scope`
//! resurfaces the panic when the scope exits instead of returning `Err` —
//! callers that `.expect()` the result observe a panic either way.
//!
//! Also ships the [`channel`] subset of `crossbeam-channel` (cloneable
//! mpmc `bounded`/`unbounded` channels with blocking, timed and
//! non-blocking operations) over `std::sync::{Mutex, Condvar}` — the
//! serving front-end's request queue and per-request oneshots run on it.

pub mod channel;

/// A scope handle for spawning threads that may borrow from the stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// The argument passed to spawned closures (crossbeam passes a nested scope
/// here; this shim supports no nested spawning, and every call site ignores
/// the argument).
pub struct NestedScope(());

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&NestedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&NestedScope(())))
    }
}

/// Creates a scope in which borrowed-data threads can be spawned; joins all
/// of them before returning.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            "done"
        })
        .unwrap();
        assert_eq!(result, "done");
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }
}

//! Offline shim for the `crossbeam-channel` subset the workspace uses:
//! cloneable multi-producer multi-consumer channels with `bounded` /
//! `unbounded` constructors, blocking `send` / `recv`, non-blocking
//! `try_send` / `try_recv`, timed `recv_timeout`, and `len` / `is_empty`
//! gauges. Backed by one `Mutex<VecDeque>` + two `Condvar`s per channel
//! (no lock-free ring — throughput is plenty for micro-batched serving,
//! and the API matches upstream so the real crate can be swapped in by
//! editing only the workspace dependency spec).
//!
//! Disconnect semantics follow upstream: receivers drain buffered
//! messages *before* reporting disconnection; `send` on a channel with
//! no receivers returns the message in the error.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Sending on a channel whose receivers are all gone; carries the
/// unsent message back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Why [`Sender::try_send`] could not enqueue; carries the message back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Receiving on a channel that is empty with every sender gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Why [`Receiver::try_recv`] returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders may still produce).
    Empty,
    /// Empty and every sender is gone — nothing will ever arrive.
    Disconnected,
}

/// Why [`Receiver::recv_timeout`] returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no message.
    Timeout,
    /// Empty and every sender is gone — nothing will ever arrive.
    Disconnected,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Capacity for bounded channels; `None` = unbounded.
    cap: Option<usize>,
    /// Signalled when a message arrives or the last sender leaves.
    recv_cv: Condvar,
    /// Signalled when capacity frees up or the last receiver leaves.
    send_cv: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half; clone freely across producer threads.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; clone freely across consumer threads (each
/// message is delivered to exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a channel buffering at most `cap` messages; `send` blocks and
/// `try_send` returns [`TrySendError::Full`] at capacity. `cap == 0` is
/// clamped to 1 (upstream's rendezvous semantics need paired blocking,
/// which no call site in this workspace uses).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        recv_cv: Condvar::new(),
        send_cv: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`, blocking while a bounded channel is at capacity.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.chan.cap {
                Some(cap) if st.items.len() >= cap => {
                    st = self
                        .chan
                        .send_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        st.items.push_back(msg);
        drop(st);
        self.chan.recv_cv.notify_one();
        Ok(())
    }

    /// Enqueues `msg` without blocking; a bounded channel at capacity
    /// returns it in [`TrySendError::Full`].
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.chan.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.chan.cap {
            if st.items.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.items.push_back(msg);
        drop(st);
        self.chan.recv_cv.notify_one();
        Ok(())
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.chan.lock().items.len()
    }

    /// Whether no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking until one arrives; returns
    /// [`RecvError`] only once the channel is empty *and* every sender
    /// is gone (buffered messages are always drained first).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.lock();
        loop {
            if let Some(msg) = st.items.pop_front() {
                drop(st);
                self.chan.send_cv.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .recv_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`Receiver::recv`] with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.lock();
        loop {
            if let Some(msg) = st.items.pop_front() {
                drop(st);
                self.chan.send_cv.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .recv_cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.lock();
        if let Some(msg) = st.items.pop_front() {
            drop(st);
            self.chan.send_cv.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Drains up to `max` immediately-available messages into `out`
    /// under **one** lock acquisition — the batch-consumer fast path
    /// (real crossbeam offers the same via `try_iter`, which locks per
    /// item in this shim). Returns the number appended: `Ok(0)` means
    /// the channel is empty but still connected;
    /// [`TryRecvError::Disconnected`] means empty *and* every sender is
    /// gone.
    pub fn try_recv_many(&self, out: &mut Vec<T>, max: usize) -> Result<usize, TryRecvError> {
        let mut st = self.chan.lock();
        let n = max.min(st.items.len());
        out.extend(st.items.drain(..n));
        if n == 0 && st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        drop(st);
        if n > 0 {
            self.chan.send_cv.notify_all();
        }
        Ok(n)
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.chan.lock().items.len()
    }

    /// Whether no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender {{ .. }}")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver {{ .. }}")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Blocked receivers must wake to observe the disconnect.
            self.chan.recv_cv.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Blocked senders must wake to observe the disconnect.
            self.chan.send_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.is_empty() && tx.is_empty());
    }

    #[test]
    fn drained_before_disconnected() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Ok(8));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_no_receiver_returns_message() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
        assert!(matches!(tx.try_send(6), Err(TrySendError::Disconnected(6))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        });
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded(64);
        let total: usize = std::thread::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut n = 0usize;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            for w in 0..2 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        tx.send(w * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            drop(rx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 100);
    }

    #[test]
    fn try_recv_many_drains_in_order_then_reports_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let mut out = vec![99];
        assert_eq!(rx.try_recv_many(&mut out, 3), Ok(3));
        assert_eq!(out, vec![99, 0, 1, 2]);
        // Capped by what is buffered, appended after existing contents.
        assert_eq!(rx.try_recv_many(&mut out, 10), Ok(2));
        assert_eq!(out, vec![99, 0, 1, 2, 3, 4]);
        // Empty but connected: Ok(0).
        assert_eq!(rx.try_recv_many(&mut out, 10), Ok(0));
        // Buffered messages still drain after the last sender is gone;
        // only then does the call report the disconnect.
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv_many(&mut out, 10), Ok(1));
        assert_eq!(
            rx.try_recv_many(&mut out, 10),
            Err(TryRecvError::Disconnected)
        );
    }
}

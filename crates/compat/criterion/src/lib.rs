//! Offline shim for the criterion API surface this workspace's benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size` / `measurement_time`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Measurement is simpler than real criterion (no outlier analysis or
//! HTML reports): each benchmark runs a warm-up, sizes its inner batch so a
//! sample takes ≥ ~200µs, collects up to `sample_size` samples within
//! `measurement_time`, and prints mean / median / p95 ns per iteration.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 50,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Identifier of a single benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            stats: None,
        };
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing statistics for one benchmark, in nanoseconds per iteration.
struct Stats {
    mean_ns: f64,
    median_ns: f64,
    p95_ns: f64,
    samples: usize,
    iters: u64,
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times `f`, recording per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for samples of ≥ ~200µs so timer
        // overhead stays below ~0.1%.
        black_box(f());
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_micros(200).as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as u64;

        let budget = self.measurement_time;
        let started = Instant::now();
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        while samples_ns.len() < self.sample_size && started.elapsed() < budget {
            let s0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = s0.elapsed();
            total_iters += batch;
            samples_ns.push(dt.as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = samples_ns.len().max(1);
        let mean = samples_ns.iter().sum::<f64>() / n as f64;
        let median = samples_ns[n / 2];
        let p95 = samples_ns[(n * 95 / 100).min(n - 1)];
        self.stats = Some(Stats {
            mean_ns: mean,
            median_ns: median,
            p95_ns: p95,
            samples: n,
            iters: total_iters,
        });
    }

    fn report(&self, group: &str, id: &str) {
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match &self.stats {
            Some(s) => println!(
                "{full}: mean {:>12} median {:>12} p95 {:>12}  ({} samples, {} iters)",
                fmt_ns(s.mean_ns),
                fmt_ns(s.median_ns),
                fmt_ns(s.p95_ns),
                s.samples,
                s.iters
            ),
            None => println!("{full}: no measurement (Bencher::iter never called)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut ran = false;
        group.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("matcher", "5nodes");
        assert_eq!(id.id, "matcher/5nodes");
    }
}

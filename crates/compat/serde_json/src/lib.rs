//! JSON rendering/parsing for the vendored mini-serde (`crates/compat/serde`).
//!
//! Provides the two entry points the workspace uses — [`to_string`] and
//! [`from_str`] — over the mini-serde [`Value`] data model. The encoding is
//! self-consistent (everything `to_string` emits, `from_str` reads back),
//! but deliberately simpler than real serde_json: maps are arrays of
//! `[key, value]` pairs.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialises a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Deserialises a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::deserialize(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip formatting; may print "1" for
                // 1.0, which parses back as an integer — the mini-serde
                // numeric Deserialize impls accept either.
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("lone surrogate"));
                                }
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or_else(|| Error::new("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::new("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if s.is_empty() {
            return Err(Error::new(format!("unexpected character at byte {start}")));
        }
        if is_float {
            s.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{s}`")))
        } else if let Some(stripped) = s.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|u| Value::Int(-(u as i64)))
                .map_err(|_| Error::new(format!("invalid number `{s}`")))
        } else {
            s.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{s}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        let x: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(x, 1.5);
        // Whole floats print as integers but read back fine.
        let y: f64 = from_str(&to_string(&3.0f64).unwrap()).unwrap();
        assert_eq!(y, 3.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn roundtrip_strings() {
        for s in ["hello", "quote\"backslash\\", "tab\tnl\nünïcödé 🦀"] {
            let json = to_string(s).unwrap();
            let back: String = from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        let back: Vec<(u32, f64)> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::HashMap::new();
        m.insert(7u64, vec![1u32, 2, 3]);
        let back: std::collections::HashMap<u64, Vec<u32>> =
            from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_are_errors() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("42 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
    }

    #[test]
    fn float_roundtrip_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-300, std::f64::consts::PI] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }
}

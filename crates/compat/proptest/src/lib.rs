//! Offline shim for the proptest API surface this workspace's property
//! tests use: the `proptest!` macro, range / tuple / `any::<T>()` /
//! `prop::collection::vec` strategies, `prop_map` / `prop_flat_map`
//! combinators, `ProptestConfig::with_cases`, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest: cases are generated from a fixed-seed
//! deterministic RNG (same inputs every run) and failures panic immediately
//! with the case number — there is no shrinking. For the graph-sized inputs
//! these tests use, unshrunk counterexamples are already readable.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + ((rng.next_u64() as u128) % width) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Length specifications accepted by [`vec`](fn@vec).
        pub trait SizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }
        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }
        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + (rng.next_u64() as usize) % (self.end - self.start)
            }
        }
        impl SizeRange for RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start() <= self.end(), "empty size range");
                self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
            }
        }

        /// Strategy generating `Vec`s of `element` values.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of values drawn from `element` with length in `len`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// The common imports for property tests.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition fails.
///
/// The shim cannot resample, so rejected cases simply return early; with
/// the generous case counts used here enough cases survive.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            // Property bodies are closures returning Result (see the
            // `proptest!` expansion); a rejected case just passes.
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests: each `fn` runs `cases` times with arguments
/// drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg); $($rest)* }
    };
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // Seed derived from the test name for cross-test variety,
                // stable across runs.
                let __seed: u64 = stringify!($name)
                    .bytes()
                    .fold(0xcbf29ce484222325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100000001b3)
                    });
                let mut __rng = $crate::TestRng::new(__seed);
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    // Bodies may `return Ok(())` early, like real proptest.
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    if let Err(__panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        __run().expect("property returned Err");
                    })) {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (no shrinking)",
                            stringify!($name), __case + 1, __config.cases
                        );
                        std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_cover_their_domains() {
        let mut rng = crate::TestRng::new(1);
        let s = prop::collection::vec((0usize..40, 0usize..40), 5..40);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..40).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 40 && b < 40);
            }
        }
        let m = (1usize..=6).prop_flat_map(|n| {
            prop::collection::vec(any::<bool>(), n).prop_map(move |bits| (n, bits))
        });
        for _ in 0..100 {
            let (n, bits) = m.generate(&mut rng);
            assert!((1..=6).contains(&n));
            assert_eq!(bits.len(), n);
        }
        let f = 0.01f64..1.0;
        for _ in 0..100 {
            let x = f.generate(&mut rng);
            assert!((0.01..1.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_arguments(
            n in 3usize..8,
            xs in prop::collection::vec(0u32..10, 2..5),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..8).contains(&n));
            prop_assert!((2..5).contains(&xs.len()));
            prop_assert_eq!(flag as u32 * 2 % 2, 0);
            prop_assert_ne!(n, 100);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assume!(x != 0);
            prop_assert!(x < 1000 && x > 0);
        }
    }
}

//! Offline shim for `parking_lot`'s lock API, backed by `std::sync`.
//!
//! Matches the parking_lot surface the workspace uses: infallible `lock()` /
//! `read()` / `write()` (poisoning is swallowed — a poisoned std lock yields
//! its inner data, mirroring parking_lot's no-poisoning semantics) and
//! `into_inner()` without `Result`.

/// A mutex with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.lock().len(), 3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}

//! Offline shim for the `arc-swap` crate: an atomic `Arc<T>` cell whose
//! readers pin the current value with plain atomic stores instead of a
//! lock or a reference-count bump.
//!
//! API subset implemented (see `crates/compat/README.md` for ground
//! rules): [`ArcSwap::new`], [`ArcSwap::from_pointee`], [`ArcSwap::load`],
//! [`ArcSwap::load_full`], [`ArcSwap::store`], [`ArcSwap::swap`], plus a
//! shim-specific [`ArcSwap::collect`] that forces deferred reclamation
//! (upstream reclaims opportunistically; tests want determinism).
//!
//! # How it works
//!
//! The cell owns one strong reference to the current value through a raw
//! [`AtomicPtr`]. Readers *pin* before dereferencing it:
//!
//! * each reader thread claims one of `N_SLOTS` cache-padded hazard
//!   slots (CAS once per thread, released on thread exit) and bumps its
//!   pin count with a **plain `SeqCst` store** — the slot has a single
//!   writer, so no read-modify-write is needed. Threads beyond
//!   `N_SLOTS` share an overflow slot updated with `fetch_add`.
//! * a writer [`swap`](ArcSwap::swap)s the pointer and retires the old
//!   `Arc` into a graveyard. The graveyard drains only when a scan of
//!   every slot (all `SeqCst` loads) reads zero.
//!
//! The store/load orderings form the classic store-buffer pattern: a
//! reader does `store slot; load ptr` and the writer does `swap ptr;
//! load slots`, all `SeqCst`. If the writer's scan observes a zero slot,
//! any in-flight reader's pin store is later in the sequential-consistency
//! order, so that reader's pointer load sees the *new* value — it can
//! never hold the retired one. Seeing a non-zero slot merely delays
//! reclamation, which is conservative and therefore safe.
//!
//! # Deviations from upstream
//!
//! * [`Guard`] derefs to `T` directly (upstream derefs to `Arc<T>`).
//! * Guards are `!Send`: the unpin store must come from the thread that
//!   claimed the slot.
//! * Reclamation is fully deferred — a retired value is dropped on a
//!   later `swap`/`store`/`collect` call once all slots are quiescent,
//!   never inline in `Guard::drop`. Pair long-lived snapshots with
//!   [`load_full`](ArcSwap::load_full) so guards stay transient.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of exclusive hazard slots; threads beyond this share the
/// overflow slot (correct, just slower).
const N_SLOTS: usize = 64;

/// One hazard slot, padded to its own cache line so reader pins never
/// false-share with a neighbour's.
#[repr(align(128))]
struct Slot {
    /// Number of live guards pinned through this slot.
    pins: AtomicUsize,
    /// Whether a thread currently owns this slot exclusively.
    claimed: AtomicBool,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            pins: AtomicUsize::new(0),
            claimed: AtomicBool::new(false),
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)] // used only as an array initialiser
const SLOT_INIT: Slot = Slot::new();
static SLOTS: [Slot; N_SLOTS] = [SLOT_INIT; N_SLOTS];
/// Shared fallback for threads that found every slot claimed; updated
/// with read-modify-writes since it has many writers.
static OVERFLOW: Slot = Slot::new();

/// The slot a thread pins through: an exclusive index into [`SLOTS`] or
/// `None` for the overflow slot. Releases the claim on thread exit.
struct ThreadSlot {
    idx: Option<usize>,
}

impl ThreadSlot {
    fn claim() -> Self {
        for (i, slot) in SLOTS.iter().enumerate() {
            if slot
                .claimed
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return ThreadSlot { idx: Some(i) };
            }
        }
        ThreadSlot { idx: None }
    }
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        if let Some(i) = self.idx {
            debug_assert_eq!(SLOTS[i].pins.load(Ordering::SeqCst), 0);
            SLOTS[i].claimed.store(false, Ordering::Release);
        }
    }
}

thread_local! {
    static THREAD_SLOT: ThreadSlot = ThreadSlot::claim();
}

/// Pin the calling thread's slot. Returns the slot plus whether it is
/// exclusively owned (plain stores) or the shared overflow (RMW).
fn pin_slot() -> (&'static Slot, bool) {
    let idx = THREAD_SLOT.with(|t| t.idx);
    match idx {
        Some(i) => {
            let slot = &SLOTS[i];
            // Single-writer slot: a plain store with a SeqCst fence is
            // all the pin needs (no `lock`-prefixed RMW on the hot path).
            let pins = slot.pins.load(Ordering::Relaxed);
            slot.pins.store(pins + 1, Ordering::SeqCst);
            (slot, true)
        }
        None => {
            OVERFLOW.pins.fetch_add(1, Ordering::SeqCst);
            (&OVERFLOW, false)
        }
    }
}

fn unpin_slot(slot: &'static Slot, exclusive: bool) {
    if exclusive {
        let pins = slot.pins.load(Ordering::Relaxed);
        debug_assert!(pins > 0);
        slot.pins.store(pins - 1, Ordering::Release);
    } else {
        slot.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

/// True when no guard anywhere is pinned: every slot (and the overflow)
/// reads zero. Conservative — a pin on an unrelated `ArcSwap` also
/// returns false — but that only delays reclamation.
fn all_quiescent() -> bool {
    SLOTS.iter().all(|s| s.pins.load(Ordering::SeqCst) == 0)
        && OVERFLOW.pins.load(Ordering::SeqCst) == 0
}

/// An atomic cell holding an `Arc<T>`, readable with one pinned atomic
/// load and writable with a pointer swap plus deferred reclamation.
pub struct ArcSwap<T> {
    /// Owns exactly one strong reference to the current value.
    ptr: AtomicPtr<T>,
    /// Retired values waiting for every reader slot to quiesce.
    graveyard: Mutex<Vec<Arc<T>>>,
}

// The cell hands out &T across threads, so T must be Sync; moving the
// cell moves an owned Arc, so T must also be Send.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Wrap an existing `Arc` in a swap cell.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// Convenience: allocate the `Arc` too.
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Pin the current value. The fast path: one fenced store, one
    /// atomic load, and a plain store when the guard drops — no
    /// reference-count traffic. Keep guards short-lived; a live guard
    /// anywhere blocks reclamation of *every* retired value.
    pub fn load(&self) -> Guard<'_, T> {
        let (slot, exclusive) = pin_slot();
        // SeqCst load ordered after the pin store (store-buffer pattern
        // with the writer's swap/scan — see module docs).
        let ptr = self.ptr.load(Ordering::SeqCst);
        // Safety: the pin (ordered before this load) guarantees the
        // writer cannot reclaim `ptr` while the guard lives: either it
        // is still current (owned by `self.ptr`) or it sits in the
        // graveyard, which only drains when all slots read zero.
        Guard {
            value: unsafe { &*ptr },
            slot,
            exclusive,
            _not_send: PhantomData,
        }
    }

    /// Pin and take a full strong reference, then release the pin.
    /// Costs one refcount bump on top of [`load`](Self::load); use it
    /// for snapshots that outlive the current call frame.
    pub fn load_full(&self) -> Arc<T> {
        let guard = self.load();
        let ptr: *const T = guard.value;
        // Safety: `ptr` came from Arc::into_raw and is alive while the
        // guard is held, so bumping its strong count is sound.
        let arc = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        drop(guard);
        arc
    }

    /// Replace the current value, returning the previous one. The
    /// returned `Arc` is safe to drop immediately: the graveyard holds
    /// its own strong reference until every reader slot quiesces.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let new_ptr = Arc::into_raw(new) as *mut T;
        let old_ptr = self.ptr.swap(new_ptr, Ordering::SeqCst);
        // Safety: `old_ptr` carries the strong reference the cell owned.
        let old = unsafe { Arc::from_raw(old_ptr) };
        let mut graveyard = self.graveyard.lock().expect("arc_swap graveyard poisoned");
        // Guards may still dereference the old value, so park a clone in
        // the graveyard; the caller's copy is then unconditionally safe.
        graveyard.push(Arc::clone(&old));
        // Opportunistic drain while we hold the lock anyway.
        if all_quiescent() {
            graveyard.clear();
        }
        old
    }

    /// Replace the current value, discarding the previous one (it still
    /// lingers in the graveyard until readers quiesce).
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Force a reclamation attempt: drop all retired values if no guard
    /// is pinned anywhere. Returns how many values remain retired.
    pub fn collect(&self) -> usize {
        let mut graveyard = self.graveyard.lock().expect("arc_swap graveyard poisoned");
        if all_quiescent() {
            graveyard.clear();
        }
        graveyard.len()
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // Exclusive access: no guards can outlive &self borrows.
        let ptr = *self.ptr.get_mut();
        // Safety: the cell still owns the strong reference it took in
        // `new`/`swap` for the current value.
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&*self.load()).finish()
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        Self::from_pointee(T::default())
    }
}

/// A pinned borrow of the cell's current value. Dropping it releases
/// the pin; it must drop on the thread that created it (`!Send`).
pub struct Guard<'a, T> {
    value: &'a T,
    slot: &'static Slot,
    exclusive: bool,
    _not_send: PhantomData<*const ()>,
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        unpin_slot(self.slot, self.exclusive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    #[test]
    fn load_sees_initial_value() {
        let cell = ArcSwap::from_pointee(41_u64);
        assert_eq!(*cell.load(), 41);
        assert_eq!(*cell.load_full(), 41);
    }

    #[test]
    fn swap_returns_old_and_installs_new() {
        let cell = ArcSwap::from_pointee(1_u64);
        let old = cell.swap(Arc::new(2));
        assert_eq!(*old, 1);
        assert_eq!(*cell.load(), 2);
        cell.store(Arc::new(3));
        assert_eq!(*cell.load_full(), 3);
    }

    #[test]
    fn guard_keeps_retired_value_alive_until_collect() {
        struct Canary<'a>(&'a AtomicU64);
        impl Drop for Canary<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let drops = AtomicU64::new(0);
        let cell = ArcSwap::from_pointee(Canary(&drops));
        let guard = cell.load();
        let old = cell.swap(Arc::new(Canary(&drops)));
        drop(old); // caller's copy: must NOT free the value...
        assert_eq!(drops.load(Ordering::SeqCst), 0); // ...the guard pins it
        assert!(cell.collect() > 0, "pinned value must stay retired");
        drop(guard);
        assert_eq!(cell.collect(), 0, "quiescent graveyard must drain");
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn load_full_survives_swap_and_collect() {
        let cell = ArcSwap::from_pointee(vec![7_u64; 8]);
        let snap = cell.load_full();
        cell.store(Arc::new(vec![8; 8]));
        assert_eq!(cell.collect(), 0, "no guards pinned: graveyard drains");
        assert_eq!(snap[0], 7, "full Arc outlives reclamation");
        assert_eq!(cell.load()[0], 8);
    }

    #[test]
    fn nested_guards_on_one_thread_unpin_in_any_order() {
        let cell = ArcSwap::from_pointee(5_u64);
        let a = cell.load();
        let b = cell.load();
        cell.store(Arc::new(6));
        drop(a);
        assert_eq!(*b, 5);
        drop(b);
        assert_eq!(cell.collect(), 0);
    }

    #[test]
    fn concurrent_readers_never_see_torn_or_freed_values() {
        // Writers swap between two self-consistent payloads while
        // readers continuously pin and validate; any use-after-free or
        // torn read would trip the consistency check (or crash).
        let cell = Arc::new(ArcSwap::from_pointee(vec![1_u64; 64]));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut reads = 0_u64;
                // `loop` rather than `while !stop`: on a single-core box
                // the writer can finish before a reader is scheduled, so
                // guarantee at least one validated read per thread.
                loop {
                    let g = cell.load();
                    let first = g[0];
                    assert!(g.iter().all(|&x| x == first), "torn payload");
                    reads += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                reads
            }));
        }
        for i in 0..2000_u64 {
            cell.store(Arc::new(vec![i % 7 + 1; 64]));
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            assert!(h.join().expect("reader panicked") > 0);
        }
        drop(cell);
    }

    #[test]
    fn many_threads_fall_back_to_overflow_slot_correctly() {
        // More pinning threads than dedicated slots would require >64
        // live threads; instead exercise the overflow path directly by
        // spawning short-lived threads that each pin once (slot churn
        // also covers claim/release on thread exit).
        let cell = Arc::new(ArcSwap::from_pointee(9_u64));
        let handles: Vec<_> = (0..32)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || *cell.load())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("pin thread panicked"), 9);
        }
    }
}
